#!/usr/bin/env python
"""Generate the static documentation site for this repository.

The container and CI images carry no Sphinx/MkDocs, so the site is
built from what the repo's own dependency set already provides:

* **API reference** — ``inspect``/``pkgutil`` walk every ``repro``
  module and render each public module, class, function, method and
  property with its signature and docstring.  Sphinx-style roles inside
  docstrings (``:class:`~repro.dram.stats.PhaseStats```,
  ``:func:`...```, ``:mod:`...```) are resolved against the generated
  pages and turned into hyperlinks — an unresolvable role is a build
  warning.
* **Hand-written pages** — reStructuredText sources under
  ``docs/source/`` are rendered with docutils in strict mode (any
  docutils warning is a build warning).
* **Link check** — every internal ``href`` of the generated site and
  every relative link of the repository ``README.md`` must resolve, or
  the build warns.

The build is **warnings-as-errors**: any warning makes the process exit
non-zero, which is what the CI ``docs`` job (and
``tests/test_docs.py``) asserts.  Build locally with::

    PYTHONPATH=src python docs/build_docs.py --out docs/_build

and open ``docs/_build/index.html``.
"""

from __future__ import annotations

import argparse
import ast
import builtins
import html
import importlib
import inspect
import io
import pkgutil
import re
import sys
import typing
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
SOURCE_DIR = Path(__file__).resolve().parent / "source"
TEMPLATE_DIR = Path(__file__).resolve().parent / "templates"

#: Modules that must not be imported during discovery (``__main__``
#: parses ``sys.argv`` at import time).
SKIP_MODULES = ("repro.__main__",)

#: The hand-written reST pages, in navigation order.
PAGES = (
    ("index", "Overview"),
    ("architecture", "Architecture"),
    ("kernel", "Scheduling kernel"),
    ("policy", "Scheduling-policy zoo"),
    ("reproduction", "Reproduction guide"),
    ("campaign", "Campaign estimators"),
    ("analysis", "Static analysis"),
    ("store", "Result store & serving"),
)

ROLE_RE = re.compile(
    r":(mod|class|func|meth|attr|data|exc|obj):`([^`]+)`")
LITERAL_RE = re.compile(r"``([^`]+)``")
HREF_RE = re.compile(r'href="([^"]+)"')
ANCHOR_RE = re.compile(r'id="([^"]+)"')
MD_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Top-level names whose roles refer to external libraries or the
#: standard library: rendered as plain code, never a warning.
EXTERNAL_PREFIXES = ("numpy", "np", "concurrent", "json", "csv", "os",
                     "math", "pickle", "multiprocessing")


@dataclass
class MemberDoc:
    """One documented class member (method, property, classmethod)."""

    name: str
    kind: str  # "method" | "property" | "classmethod" | "staticmethod"
    signature: str
    doc: Optional[str]


@dataclass
class ClassDoc:
    """One documented public class."""

    name: str
    bases: str
    signature: str
    doc: Optional[str]
    members: List[MemberDoc] = field(default_factory=list)


@dataclass
class FunctionDoc:
    """One documented public module-level function."""

    name: str
    signature: str
    doc: Optional[str]


@dataclass
class DataDoc:
    """One public module-level data attribute (constant, alias)."""

    name: str
    value: str
    oid: int = 0  # id() of the live object, for re-export aliasing


@dataclass
class ModuleDoc:
    """One documented module of the package."""

    name: str
    doc: Optional[str]
    classes: List[ClassDoc] = field(default_factory=list)
    functions: List[FunctionDoc] = field(default_factory=list)
    data: List[DataDoc] = field(default_factory=list)
    #: Public data names *imported* from another module: indexed as
    #: aliases of the defining page, never rendered here.
    data_aliases: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def package(self) -> str:
        """Top-level package the module belongs to (grouping key)."""
        parts = self.name.split(".")
        return ".".join(parts[:2]) if len(parts) > 1 else parts[0]


def discover_modules() -> List[str]:
    """Import and list every ``repro`` module (except ``__main__``)."""
    import repro

    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name not in SKIP_MODULES:
            names.append(info.name)
    return sorted(names)


def _signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _member_docs(cls) -> List[MemberDoc]:
    members = []
    for name, raw in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(raw, property):
            doc = raw.fget.__doc__ if raw.fget else None
            members.append(MemberDoc(name=name, kind="property",
                                     signature="", doc=doc))
        elif isinstance(raw, (classmethod, staticmethod)):
            func = raw.__func__
            kind = "classmethod" if isinstance(raw, classmethod) else "staticmethod"
            members.append(MemberDoc(name=name, kind=kind,
                                     signature=_signature_of(func),
                                     doc=func.__doc__))
        elif inspect.isfunction(raw):
            members.append(MemberDoc(name=name, kind="method",
                                     signature=_signature_of(raw),
                                     doc=raw.__doc__))
    return members


def _toplevel_assignments(module) -> set:
    """Names assigned at a module's top level (its *defined* data).

    Classes and functions carry ``__module__``, but constants do not —
    the module source is the only reliable attribution, so data is
    rendered on the page of the module whose AST assigns it and merely
    alias-indexed everywhere it is imported.
    """
    try:
        tree = ast.parse(inspect.getsource(module))
    except (OSError, TypeError, SyntaxError):
        return set()
    names = set()
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
    return names


def build_api_model(module_names: List[str]) -> List[ModuleDoc]:
    """Introspect every module into a renderable document model."""
    typing_objects = {id(value) for value in vars(typing).values()}
    model = []
    for name in module_names:
        module = importlib.import_module(name)
        defined = _toplevel_assignments(module)
        doc = ModuleDoc(name=name, doc=module.__doc__)
        for obj_name, obj in vars(module).items():
            if obj_name.startswith("_"):
                continue
            if inspect.ismodule(obj) or id(obj) in typing_objects:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if getattr(obj, "__module__", None) != name:
                    continue  # re-export: documented where it is defined
                if inspect.isclass(obj):
                    bases = ", ".join(
                        base.__name__ for base in obj.__bases__
                        if base is not object)
                    doc.classes.append(
                        ClassDoc(name=obj_name, bases=bases,
                                 signature=_signature_of(obj),
                                 doc=obj.__doc__,
                                 members=_member_docs(obj)))
                else:
                    doc.functions.append(
                        FunctionDoc(name=obj_name,
                                    signature=_signature_of(obj),
                                    doc=obj.__doc__))
            else:
                # Constants, presets and type aliases: :data: role
                # targets.  Their value repr doubles as documentation.
                # Rendered only where the module source assigns them;
                # imports of another module's constant become index
                # aliases so roles naming either module still resolve.
                if obj_name not in defined:
                    doc.data_aliases.append((obj_name, id(obj)))
                    continue
                value = repr(obj)
                if len(value) > 160:
                    value = value[:157] + "..."
                doc.data.append(DataDoc(name=obj_name, value=value,
                                        oid=id(obj)))
        model.append(doc)
    return model


def build_anchor_index(model: List[ModuleDoc]) -> Dict[str, Tuple[str, str]]:
    """Map every documented dotted name to its ``(page, anchor)``."""
    index: Dict[str, Tuple[str, str]] = {}
    for module in model:
        page = f"api/{module.name}.html"
        index[module.name] = (page, "")
        for cls in module.classes:
            index[f"{module.name}.{cls.name}"] = (page, cls.name)
            for member in cls.members:
                index[f"{module.name}.{cls.name}.{member.name}"] = (
                    page, f"{cls.name}.{member.name}")
        for function in module.functions:
            index[f"{module.name}.{function.name}"] = (page, function.name)
        for data in module.data:
            index[f"{module.name}.{data.name}"] = (page, data.name)
    # Re-exported constants resolve to the page that defines them.
    by_oid = {data.oid: index[f"{module.name}.{data.name}"]
              for module in model for data in module.data}
    for module in model:
        for alias_name, oid in module.data_aliases:
            if oid in by_oid:
                index.setdefault(f"{module.name}.{alias_name}", by_oid[oid])
    return index


class Builder:
    """Renders the site and accumulates build warnings."""

    def __init__(self, out_dir: Path):
        self.out = out_dir
        self.warnings: List[str] = []

    def warn(self, message: str) -> None:
        """Record one build warning (any warning fails the build)."""
        self.warnings.append(message)

    # -- docstring rendering -------------------------------------------

    def resolve_role(self, target: str, owners: Tuple[str, ...],
                     index: Dict[str, Tuple[str, str]],
                     context: str) -> Optional[Tuple[str, str]]:
        """Resolve a role target to ``(page, anchor)``, else warn.

        Targets may be written relative to the defining module or class
        (Sphinx semantics), so resolution tries the literal name, every
        owner-qualified name, and finally a unique dotted-suffix match.
        Builtins and external-library names resolve to plain text.
        """
        candidates = (target,) + tuple(f"{owner}.{target}"
                                       for owner in owners)
        for candidate in candidates:
            if candidate in index:
                return index[candidate]
        if target in vars(builtins) or \
                target.split(".")[0] in EXTERNAL_PREFIXES:
            return None  # plain text, not a warning
        suffix = "." + target
        matches = [key for key in index if key.endswith(suffix)]
        if len(matches) == 1:
            return index[matches[0]]
        self.warn(f"{context}: unresolvable cross-reference {target!r}")
        return None

    def render_docstring(self, text: Optional[str], owners: Tuple[str, ...],
                         index: Dict[str, Tuple[str, str]], context: str,
                         depth: int, required: bool = True) -> str:
        """Render one docstring to HTML with linkified cross-references.

        Args:
            text: the raw docstring (``None`` warns when ``required``).
            owners: dotted scopes the docstring was defined in, from the
                innermost (e.g. ``("repro.dram.engine.SchedulingEngine",
                "repro.dram.engine")``); role targets resolve relative
                to them.
            index: anchor index of the generated API pages.
            context: human-readable location for warning messages.
            depth: directory depth of the page being rendered (0 = site
                root), used to relativize links.
            required: whether a missing docstring is a build warning.
        """
        if not text:
            if required:
                self.warn(f"{context}: missing docstring")
            return ""
        prefix = "../" * depth
        escaped = html.escape(inspect.cleandoc(text))

        def replace_role(match: re.Match) -> str:
            target = re.sub(r"\s+", "", match.group(2))
            display = target.lstrip("~").split(".")[-1] if target.startswith("~") \
                else target.lstrip("~")
            resolved = self.resolve_role(target.lstrip("~"), owners, index,
                                         context)
            if resolved is None:
                return f"<code>{display}</code>"
            page, anchor = resolved
            link = prefix + page + (f"#{anchor}" if anchor else "")
            return f'<a href="{link}"><code>{display}</code></a>'

        escaped = ROLE_RE.sub(replace_role, escaped)
        escaped = LITERAL_RE.sub(r"<code>\1</code>", escaped)
        return f'<pre class="docstring">{escaped}</pre>'

    # -- page templating ------------------------------------------------

    def render_page(self, template, *, title: str, content: str,
                    depth: int, active: str) -> str:
        """Instantiate the shared page template."""
        prefix = "../" * depth
        nav = [(label, prefix + f"{name}.html", name == active)
               for name, label in PAGES]
        nav.append(("API reference", prefix + "api/index.html",
                    active == "api"))
        return template.render(title=title, content=content, nav=nav)

    def write(self, relative: str, text: str) -> None:
        """Write one generated page below the output directory."""
        path = self.out / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)

    # -- API pages -------------------------------------------------------

    def render_module_page(self, module: ModuleDoc,
                           index: Dict[str, Tuple[str, str]]) -> str:
        """Render one module's API reference body."""
        parts = [f"<h1><code>{module.name}</code></h1>"]
        parts.append(self.render_docstring(
            module.doc, (module.name,), index, f"module {module.name}", 1))
        for cls in module.classes:
            context = f"{module.name}.{cls.name}"
            owners = (context, module.name)
            heading = f"class {cls.name}"
            if cls.bases:
                heading += f"({cls.bases})"
            parts.append(f'<h2 id="{cls.name}"><code>{html.escape(heading)}'
                         f"</code></h2>")
            parts.append(f'<p class="signature"><code>{cls.name}'
                         f"{html.escape(cls.signature)}</code></p>")
            parts.append(self.render_docstring(cls.doc, owners, index,
                                               f"class {context}", 1))
            for member in cls.members:
                anchor = f"{cls.name}.{member.name}"
                label = member.name + (member.signature if member.kind != "property"
                                       else "")
                parts.append(
                    f'<h3 id="{anchor}"><code>{html.escape(label)}</code>'
                    f' <span class="kind">{member.kind}</span></h3>')
                parts.append(self.render_docstring(
                    member.doc, owners, index,
                    f"member {context}.{member.name}", 1))
        for function in module.functions:
            parts.append(
                f'<h2 id="{function.name}"><code>{function.name}'
                f"{html.escape(function.signature)}</code></h2>")
            parts.append(self.render_docstring(
                function.doc, (module.name,), index,
                f"function {module.name}.{function.name}", 1))
        if module.data:
            parts.append("<h2>Module data</h2>")
            for data in module.data:
                parts.append(
                    f'<h3 id="{data.name}"><code>{data.name}</code>'
                    f' <span class="kind">data</span></h3>')
                parts.append(f"<pre>{html.escape(data.value)}</pre>")
        return "\n".join(parts)

    def render_api_index(self, model: List[ModuleDoc]) -> str:
        """Render the API landing page: modules grouped per package."""
        groups: Dict[str, List[ModuleDoc]] = {}
        for module in model:
            groups.setdefault(module.package, []).append(module)
        parts = ["<h1>API reference</h1>",
                 "<p>Every public module of the <code>repro</code> package, "
                 "grouped per sub-package. Cross-references inside docstrings "
                 "are hyperlinks.</p>"]
        for package in sorted(groups):
            parts.append(f"<h2><code>{package}</code></h2>")
            parts.append("<ul>")
            for module in groups[package]:
                first_line = ""
                if module.doc:
                    first_line = html.escape(
                        inspect.cleandoc(module.doc).splitlines()[0])
                parts.append(
                    f'<li><a href="{module.name}.html">'
                    f"<code>{module.name}</code></a> — {first_line}</li>")
            parts.append("</ul>")
        return "\n".join(parts)

    # -- reST pages ------------------------------------------------------

    def render_rst(self, path: Path) -> str:
        """Render one reST source page with docutils, strictly."""
        try:
            from docutils import utils
            from docutils.core import publish_parts
        except ImportError:
            self.warn(f"{path.name}: docutils unavailable, page skipped")
            return f"<p>(docutils unavailable — {path.name} not rendered)</p>"
        stream = io.StringIO()
        try:
            parts = publish_parts(
                source=path.read_text(),
                source_path=str(path),
                writer_name="html",
                settings_overrides={
                    "report_level": 2,   # record warnings and up
                    "halt_level": 2,     # ... and abort the page on them
                    "warning_stream": stream,
                    "embed_stylesheet": False,
                },
            )
        except utils.SystemMessage as error:
            self.warn(f"{path.name}: {error}")
            return ""
        reported = stream.getvalue().strip()
        if reported:
            self.warn(f"{path.name}: {reported}")
        return parts["html_body"]

    # -- link checking ---------------------------------------------------

    def check_links(self) -> None:
        """Verify every internal link of the generated site resolves.

        Anchors are keyed by resolved path — link targets are
        ``resolve()``d below, so the keys must be too or the anchor
        check silently never fires under a relative ``--out``.
        """
        anchors: Dict[Path, set] = {}
        pages = sorted(self.out.rglob("*.html"))
        for page in pages:
            anchors[page.resolve()] = set(ANCHOR_RE.findall(page.read_text()))
        for page in pages:
            text = page.read_text()
            for href in HREF_RE.findall(text):
                if href.startswith(("http://", "https://", "mailto:")):
                    continue
                target, _, fragment = href.partition("#")
                target_path = (page.parent / target).resolve() if target \
                    else page.resolve()
                if target and not target_path.exists():
                    self.warn(f"{page.relative_to(self.out)}: broken link "
                              f"{href!r}")
                    continue
                if fragment and target_path in anchors and \
                        fragment not in anchors[target_path]:
                    self.warn(f"{page.relative_to(self.out)}: broken anchor "
                              f"{href!r}")

    def check_readme(self) -> None:
        """Verify the repository README's relative links resolve."""
        readme = REPO / "README.md"
        for target in MD_LINK_RE.findall(readme.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.partition("#")[0]
            if path and not (REPO / path).exists():
                self.warn(f"README.md: broken link {target!r}")


def build(out_dir: Path) -> List[str]:
    """Build the whole site; returns the list of warnings."""
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))
    try:
        from jinja2 import Environment, FileSystemLoader
    except ImportError:
        print("error: jinja2 is required to build the docs", file=sys.stderr)
        return ["jinja2 unavailable"]

    environment = Environment(loader=FileSystemLoader(str(TEMPLATE_DIR)),
                              autoescape=False)
    template = environment.get_template("page.html.j2")
    builder = Builder(out_dir)

    model = build_api_model(discover_modules())
    index = build_anchor_index(model)

    for module in model:
        body = builder.render_module_page(module, index)
        builder.write(f"api/{module.name}.html", builder.render_page(
            template, title=module.name, content=body, depth=1, active="api"))
    builder.write("api/index.html", builder.render_page(
        template, title="API reference",
        content=builder.render_api_index(model), depth=1, active="api"))

    for name, label in PAGES:
        source = SOURCE_DIR / f"{name}.rst"
        if not source.exists():
            builder.warn(f"missing page source {source.name}")
            continue
        builder.write(f"{name}.html", builder.render_page(
            template, title=label, content=builder.render_rst(source),
            depth=0, active=name))

    builder.check_links()
    builder.check_readme()
    return builder.warnings


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; exits non-zero when the build warned."""
    parser = argparse.ArgumentParser(
        description="Build the static documentation site "
                    "(warnings are errors).")
    parser.add_argument("--out", default=str(Path(__file__).parent / "_build"),
                        metavar="DIR", help="output directory "
                        "(default docs/_build)")
    args = parser.parse_args(argv)
    warnings = build(Path(args.out))
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if warnings:
        print(f"docs build failed with {len(warnings)} warning(s)",
              file=sys.stderr)
        return 1
    print(f"docs built into {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
