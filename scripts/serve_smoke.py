"""End-to-end smoke test of ``repro serve`` (the CI ``serve-smoke`` job).

Boots a real ``repro serve`` subprocess on an ephemeral port, submits a
campaign grid over HTTP (the bare default 162-cell grid unless a spec
is given), polls the job to completion, fetches the served table, and
diffs it against the stdout of ``repro campaign`` over the same store —
the two must be byte-identical, proving the server, the job engine and
the CLI share one execution path.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py            # default grid
    PYTHONPATH=src python scripts/serve_smoke.py \
        --spec '{"triangle_n": [15], "seeds": 2, "frames": 10}'

Exit status 0 on a byte-identical diff, 1 otherwise.  Stdlib only.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

SERVING_RE = re.compile(r"serving on http://([^:]+):(\d+)")


def repro_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
    return env


def start_server(store: str) -> "tuple[subprocess.Popen, str]":
    """Launch ``repro serve`` on an ephemeral port; return (proc, base URL)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", store,
         "--port", "0", "--jobs", "0"],
        env=repro_env(), cwd=REPO_ROOT,
        stdout=subprocess.PIPE, text=True)
    assert proc.stdout is not None
    line = proc.stdout.readline()
    match = SERVING_RE.search(line)
    if not match:
        proc.kill()
        raise SystemExit(f"server did not announce its address: {line!r}")
    host, port = match.group(1), match.group(2)
    return proc, f"http://{host}:{port}"


def request(url: str, data: "bytes | None" = None) -> "tuple[int, bytes]":
    req = urllib.request.Request(url, data=data,
                                 method="POST" if data is not None else "GET")
    with urllib.request.urlopen(req, timeout=60) as response:
        return response.status, response.read()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", default="{}",
                        help="grid spec JSON (default: the full default "
                             "162-cell campaign grid)")
    parser.add_argument("--timeout", type=float, default=1800.0,
                        help="polling deadline in seconds (default 1800)")
    args = parser.parse_args()
    spec = json.loads(args.spec)

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        store = os.path.join(tmp, "store")
        server, base = start_server(store)
        try:
            status, body = request(f"{base}/healthz")
            assert status == 200, (status, body)

            status, body = request(f"{base}/jobs",
                                   data=json.dumps(spec).encode())
            assert status == 202, (status, body)
            job = json.loads(body)
            job_id, total = job["job"], job["total"]
            print(f"submitted job {job_id}: {total} cells")

            deadline = time.monotonic() + args.timeout
            completed = -1
            while time.monotonic() < deadline:
                status, body = request(f"{base}/jobs/{job_id}")
                assert status == 200, (status, body)
                snapshot = json.loads(body)
                if snapshot["completed"] != completed:
                    completed = snapshot["completed"]
                    print(f"progress: {completed}/{total}")
                if snapshot["done"]:
                    break
                time.sleep(1.0)
            else:
                print("error: job did not finish before the deadline",
                      file=sys.stderr)
                return 1

            status, served = request(f"{base}/jobs/{job_id}/table")
            assert status == 200, (status, served)
        finally:
            server.terminate()
            server.wait(timeout=30)

        # the CLI over the same (now fully warm) store must print the
        # exact same report without recomputing anything
        from repro.store.jobs import normalize_spec  # after PYTHONPATH setup

        merged = normalize_spec(spec)
        cli = subprocess.run(
            [sys.executable, "-m", "repro", "campaign",
             "--fade-symbols", *[str(x) for x in merged["fade_symbols"]],
             "--fade-fraction", *[str(x) for x in merged["fade_fraction"]],
             "--p-bad", str(merged["p_bad"]),
             "--p-good", str(merged["p_good"]),
             "--triangle-n", *[str(x) for x in merged["triangle_n"]],
             "--symbols-per-element", str(merged["symbols_per_element"]),
             "--codeword-symbols", str(merged["codeword_symbols"]),
             "--t-correctable", str(merged["t_correctable"]),
             "--seeds", str(merged["seeds"]),
             "--seed-base", str(merged["seed_base"]),
             "--frames", str(merged["frames"]),
             "--store", store, "--resume", "--no-chart", "--jobs", "0"],
            env=repro_env(), cwd=REPO_ROOT, capture_output=True, timeout=600)
        if cli.returncode != 0:
            print(cli.stderr.decode(), file=sys.stderr)
            return 1

        if cli.stdout != served:
            print("error: served table differs from `repro campaign` stdout",
                  file=sys.stderr)
            print("--- served ---", file=sys.stderr)
            sys.stderr.buffer.write(served)
            print("--- campaign ---", file=sys.stderr)
            sys.stderr.buffer.write(cli.stdout)
            return 1
        print("serve-smoke OK: served table byte-identical to repro campaign")
        return 0


if __name__ == "__main__":
    sys.exit(main())
