"""Legacy setup shim.

Kept so ``pip install -e . --no-build-isolation`` works on
environments whose setuptools predates bundled ``bdist_wheel``
(offline boxes without the ``wheel`` package).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
