#!/usr/bin/env python
"""DRAM provisioning for a 100 Gbit/s interleaver (paper Sec. I).

Because interleaver throughput is set by min(write, read) utilization,
the row-major mapping forces a designer to buy much more raw DRAM
bandwidth than the link needs.  This example sizes the memory system
for a 100 Gbit/s optical downlink with both mappings on every Table I
configuration and prints the raw bandwidth each option costs.

Run:  python examples/capacity_planning.py  (about a minute)
"""

from repro import (
    OptimizedMapping,
    RowMajorMapping,
    TABLE1_CONFIG_NAMES,
    TriangularIndexSpace,
    get_config,
    provision,
    simulate_interleaver,
    throughput_report,
)

TARGET_GBIT = 100.0


def main() -> None:
    space = TriangularIndexSpace(256)
    reports = []
    print(f"Sizing for a {TARGET_GBIT:.0f} Gbit/s interleaver "
          f"(every symbol crosses DRAM twice)\n")
    print(f"{'configuration':14s} {'mapping':10s} {'min util':>9s} "
          f"{'sustained':>10s} {'channels':>9s} {'raw bought':>11s}")
    for name in TABLE1_CONFIG_NAMES:
        config = get_config(name)
        for mapping in (RowMajorMapping(space, config.geometry),
                        OptimizedMapping(space, config.geometry, prefer_tall=False)):
            result = simulate_interleaver(config, mapping)
            report = throughput_report(config, result)
            reports.append(report)
            choice = provision([report], TARGET_GBIT)[0]
            print(f"{name:14s} {report.mapping_name:10s} "
                  f"{report.min_utilization:9.1%} "
                  f"{report.sustained_gbit:8.1f}Gb "
                  f"{choice.channels:9d} "
                  f"{choice.total_peak_gbit:9.0f}Gb")

    print("\nCheapest overall options:")
    for choice in provision(reports, TARGET_GBIT)[:5]:
        report = choice.report
        print(f"  {report.config_name:14s} {report.mapping_name:10s} "
              f"{choice.channels} channel(s), {choice.total_peak_gbit:.0f} Gbit/s raw "
              f"({choice.oversizing_factor:.2f}x the theoretical minimum)")
    print("\nWherever the row-major read phase collapses (DDR4, LPDDR4, LPDDR5")
    print("fast grades), the optimized mapping halves the raw bandwidth bill;")
    print("that over-provisioning tax is what the paper eliminates.")


if __name__ == "__main__":
    main()
