#!/usr/bin/env python
"""Quickstart: simulate one interleaver on one DRAM configuration.

Maps a triangular block interleaver onto DDR4-3200 with both the
row-major (SRAM-style) mapping and the paper's optimized mapping, runs
the cycle-accurate-equivalent simulation of the write (row-wise) and
read (column-wise) phases, and prints the bandwidth utilizations —
one row of the paper's Table I.

Run:  python examples/quickstart.py
"""

from repro import (
    OptimizedMapping,
    RowMajorMapping,
    TriangularIndexSpace,
    get_config,
    simulate_interleaver,
)
from repro.viz import utilization_bar


def main() -> None:
    config = get_config("DDR4-3200")
    space = TriangularIndexSpace(384)          # ~74 k burst elements
    print(f"Device: {config.name} ({config.geometry.banks} banks, "
          f"{config.geometry.bank_groups} bank groups, "
          f"{config.geometry.row_bytes // 1024} KiB pages)")
    print(f"Interleaver: triangular, N={space.n} "
          f"({space.num_elements:,} burst elements)\n")

    for mapping in (RowMajorMapping(space, config.geometry),
                    OptimizedMapping(space, config.geometry, prefer_tall=False)):
        result = simulate_interleaver(config, mapping)
        print(f"{mapping.name} mapping")
        print(f"  write {result.write_utilization:7.2%}  "
              f"|{utilization_bar(result.write_utilization)}|")
        print(f"  read  {result.read_utilization:7.2%}  "
              f"|{utilization_bar(result.read_utilization)}|")
        bandwidth = result.effective_bandwidth_bytes_per_s(config) / 1e9
        print(f"  -> min phase {result.min_utilization:.2%} "
              f"= {bandwidth:.1f} GB/s sustained interleaver bandwidth\n")

    print("The read phase is what collapses under the row-major mapping —")
    print("and the minimum of the two phases is what sets the interleaver's")
    print("throughput (paper, Sec. III).")


if __name__ == "__main__":
    main()
