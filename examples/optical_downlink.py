#!/usr/bin/env python
"""Optical LEO downlink: why the interleaver exists at all.

Simulates the paper's Sec. I context end to end: a Gilbert–Elliott
burst channel (scintillation fades with a long coherence time), a
t-symbol-correcting block code, and the two-stage interleaver (small
SRAM block stage + large triangular DRAM stage).  Compares code-word
failure rates with and without interleaving at the *same* average
symbol error rate.

Run:  python examples/optical_downlink.py
"""

import numpy as np

from repro import CodewordConfig, GilbertElliottParams, OpticalDownlink, TwoStageConfig


def main() -> None:
    # Channel: fades last ~60 symbols (a scaled stand-in for the >2 ms
    # coherence time at >100 Gbit/s), link spends 0.4 % of time faded.
    channel = GilbertElliottParams(
        p_g2b=0.004 / 0.996 / 60.0,
        p_b2g=1.0 / 60.0,
        p_bad=0.7,
    )
    interleaver = TwoStageConfig(
        triangle_n=48,             # 1176 burst elements per frame
        symbols_per_element=4,     # SRAM stage packs 4 code words per burst
        codeword_symbols=24,
    )
    code = CodewordConfig(n_symbols=24, t_correctable=2)

    print(f"Channel: mean fade {1 / channel.p_b2g:.0f} symbols, "
          f"fade fraction {channel.stationary_bad:.2%}, "
          f"average SER {channel.average_symbol_error_rate:.3%}")
    print(f"Code: ({code.n_symbols}, t={code.t_correctable}) -> corrects "
          f"{code.correction_fraction:.1%} of a code word")
    print(f"Interleaver frame: {interleaver.symbols_per_frame:,} symbols, "
          f"{interleaver.codewords_per_frame} code words\n")

    downlink = OpticalDownlink(interleaver, code, channel,
                               rng=np.random.default_rng(2024))
    result = downlink.run(frames=60)

    profile = result.channel_profile
    print(f"Channel produced {profile.error_symbols:,} symbol errors in "
          f"{profile.burst_count} bursts (longest {profile.max_burst} symbols)\n")

    rows = [
        ("without interleaver", result.baseline, result.max_errors_baseline),
        ("with interleaver", result.interleaved, result.max_errors_interleaved),
    ]
    for label, report, worst in rows:
        print(f"{label:22s} code-word failures: {report.failed:4d} / "
              f"{report.codewords}  (rate {report.codeword_error_rate:.3%}, "
              f"worst word: {worst} errors)")

    gain = result.gain
    gain_text = "all failures eliminated" if gain == float("inf") else f"{gain:.1f}x"
    print(f"\nInterleaving gain: {gain_text}")
    print("Same errors, same code — the interleaver only *disperses* the")
    print("fades so no single code word exceeds the correction radius.")
    print("This is the function whose DRAM bandwidth the paper optimizes.")


if __name__ == "__main__":
    main()
