#!/usr/bin/env python
"""Reproduce the paper's Fig. 1: the optimized mapping schemes.

Renders the four panels for a figure-scale device (2 banks, 4-burst
pages) on an 8x8 index-space excerpt, plus the triangular variant that
the real interleaver uses (footnote 1 of the paper).

Run:  python examples/mapping_visualizer.py
"""

from repro import OptimizedMapping, RectangularIndexSpace, TriangularIndexSpace
from repro.dram.geometry import Geometry
from repro.viz import render_banks, render_figure1, render_full


def main() -> None:
    # Two banks (one per bank group) and four bursts per page: the same
    # scale as the paper's Fig. 1.
    geometry = Geometry(bank_groups=2, banks_per_group=1, rows=256,
                        columns=32, bus_width_bits=64, burst_length=8)
    space = RectangularIndexSpace(8, 8)

    print("=" * 64)
    print("Fig. 1 — optimized mapping schemes (8x8 excerpt, 2 banks,")
    print("4-burst pages; labels are Bank / Column / Row)")
    print("=" * 64)
    print(render_figure1(space, geometry))

    print()
    print("=" * 64)
    print("Triangular index space (the real storage array; empty cells")
    print("are the unused lower-right half — footnote 1)")
    print("=" * 64)
    triangle = TriangularIndexSpace(8)
    mapping = OptimizedMapping(triangle, geometry)
    print("(banks)")
    print(render_banks(mapping))
    print()
    print("(bank/column/row)")
    print(render_full(mapping))

    # Storage comparison on a larger triangle where whole tiles fall
    # into the empty half (footnote 1 of the paper).
    big = TriangularIndexSpace(32)
    rect_alloc = OptimizedMapping(big, geometry)
    compact = OptimizedMapping(big, geometry, compact_rows=True)
    print()
    print(f"Storage at N={big.n}: rectangular allocation uses "
          f"{rect_alloc.rows_used()} DRAM rows "
          f"({rect_alloc.storage_efficiency():.0%} of allocated capacity holds data);")
    print(f"compact triangular allocation uses {compact.rows_used()} rows "
          f"({compact.storage_efficiency():.0%}).")


if __name__ == "__main__":
    main()
