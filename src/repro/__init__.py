"""repro — triangular block interleavers on DRAM for optical satellite links.

Reproduction of *"A Mapping of Triangular Block Interleavers to DRAM
for Optical Satellite Communication"* (DATE 2024): an event-driven
JEDEC DRAM channel simulator, the paper's optimized address mapping
(diagonal bank rotation + rectangular page tiling + bank-staggered
offset), the row-major baseline, the two-stage interleaver data path,
and the optical-downlink system context.

Quickstart::

    from repro import (TriangularIndexSpace, OptimizedMapping,
                       get_config, simulate_interleaver)

    config = get_config("DDR4-3200")
    space = TriangularIndexSpace(512)
    mapping = OptimizedMapping(space, config.geometry)
    result = simulate_interleaver(config, mapping)
    print(result.write_utilization, result.read_utilization)
"""

from __future__ import annotations

from repro.channel import (
    CodewordConfig,
    GilbertElliottChannel,
    GilbertElliottParams,
    coherence_params,
)
from repro.dram import (
    ControllerConfig,
    DramAddress,
    DramConfig,
    Geometry,
    InterleaverSimResult,
    MemoryController,
    PhaseStats,
    TABLE1_CONFIG_NAMES,
    TimingParams,
    all_configs,
    get_config,
    simulate_interleaver,
    simulate_phase,
)
from repro.interleaver import (
    RectangularIndexSpace,
    TriangularIndexSpace,
    triangle_size_for_elements,
)
from repro.interleaver.block import BlockInterleaver, TriangularInterleaver
from repro.interleaver.two_stage import TwoStageConfig, TwoStageInterleaver
from repro.mapping import (
    InterleaverMapping,
    OptimizedMapping,
    RowMajorMapping,
    profile_mapping,
    validate_mapping,
)
from repro.system import (
    OpticalDownlink,
    energy_pareto,
    format_e2e_table,
    format_energy_table,
    format_table1,
    provision,
    run_e2e_table,
    run_energy_table,
    run_table1,
    throughput_report,
)

__version__ = "1.0.0"

__all__ = [
    "BlockInterleaver",
    "CodewordConfig",
    "ControllerConfig",
    "DramAddress",
    "DramConfig",
    "Geometry",
    "GilbertElliottChannel",
    "GilbertElliottParams",
    "InterleaverMapping",
    "InterleaverSimResult",
    "MemoryController",
    "OpticalDownlink",
    "OptimizedMapping",
    "PhaseStats",
    "RectangularIndexSpace",
    "RowMajorMapping",
    "TABLE1_CONFIG_NAMES",
    "TimingParams",
    "TriangularIndexSpace",
    "TriangularInterleaver",
    "TwoStageConfig",
    "TwoStageInterleaver",
    "all_configs",
    "coherence_params",
    "energy_pareto",
    "format_e2e_table",
    "format_energy_table",
    "format_table1",
    "get_config",
    "profile_mapping",
    "provision",
    "run_e2e_table",
    "run_energy_table",
    "run_table1",
    "simulate_interleaver",
    "simulate_phase",
    "throughput_report",
    "triangle_size_for_elements",
    "validate_mapping",
]
