"""DRAM energy accounting (DRAMPower-style, command-level).

The paper motivates the optimized mapping not only by bandwidth but by
cost and *energy*: an over-provisioned DRAM (faster grade, more
channels) burns more power, and a mapping that thrashes rows pays the
row-activation energy on almost every access (the concern of the
paper's reference [8]).

The model charges a fixed energy per command — the standard abstraction
of DRAMPower and vendor power calculators:

* ``e_act_pre``: one ACT/PRE pair (charging a row, restoring it),
* ``e_rd`` / ``e_wr``: one burst transfer, including I/O,
* ``e_ref``: one refresh command (tRFC worth of all-bank current),
* ``p_background``: standby power integrated over the phase makespan.

Values are derived from public IDD/IPP datasheet figures and scale with
the page size and bus width of the presets; they are representative,
not vendor-exact (the reproduction compares *mappings*, and both
mappings see identical parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.dram.presets import DramConfig
from repro.dram.stats import PhaseStats
from repro.units import PS_PER_S


@dataclass(frozen=True)
class EnergyParams:
    """Per-command energies (picojoules) and background power (milliwatts).

    Attributes:
        e_act_pre_pj: energy of one ACT + PRE pair.
        e_rd_pj: energy of one read burst (core + I/O).
        e_wr_pj: energy of one write burst.
        e_ref_pj: energy of one refresh command (REFab or REFpb as the
            standard uses).
        p_background_mw: standby/active-idle power charged over the
            whole phase duration.
    """

    e_act_pre_pj: float
    e_rd_pj: float
    e_wr_pj: float
    e_ref_pj: float
    p_background_mw: float

    def __post_init__(self) -> None:
        for name in ("e_act_pre_pj", "e_rd_pj", "e_wr_pj", "e_ref_pj", "p_background_mw"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


#: Representative per-family energy parameters (x-bit-width-scaled when
#: applied).  ACT/PRE energy scales with page size; burst energy with
#: bytes moved.  Sources: vendor DDR3/DDR4 power calculators, LPDDR
#: datasheet IDD figures, DRAMPower defaults; rounded.
_FAMILY_PARAMS: Dict[str, EnergyParams] = {
    "DDR3": EnergyParams(e_act_pre_pj=3200.0, e_rd_pj=2100.0, e_wr_pj=2200.0,
                         e_ref_pj=45000.0, p_background_mw=350.0),
    "DDR4": EnergyParams(e_act_pre_pj=2400.0, e_rd_pj=1400.0, e_wr_pj=1500.0,
                         e_ref_pj=60000.0, p_background_mw=280.0),
    "DDR5": EnergyParams(e_act_pre_pj=1500.0, e_rd_pj=900.0, e_wr_pj=950.0,
                         e_ref_pj=7000.0, p_background_mw=220.0),
    "LPDDR4": EnergyParams(e_act_pre_pj=1200.0, e_rd_pj=450.0, e_wr_pj=480.0,
                           e_ref_pj=5500.0, p_background_mw=45.0),
    "LPDDR5": EnergyParams(e_act_pre_pj=900.0, e_rd_pj=320.0, e_wr_pj=340.0,
                           e_ref_pj=4200.0, p_background_mw=40.0),
}


def energy_params_for(config: DramConfig) -> EnergyParams:
    """Energy parameters for one of the preset configurations."""
    try:
        return _FAMILY_PARAMS[config.family]
    except KeyError:
        raise KeyError(
            f"no energy parameters for family {config.family!r}; "
            f"known: {sorted(_FAMILY_PARAMS)}"
        ) from None


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one simulated phase.

    All values in nanojoules except the per-bit figure.
    """

    activation_nj: float
    burst_nj: float
    refresh_nj: float
    background_nj: float
    payload_bytes: int

    @property
    def total_nj(self) -> float:
        return self.activation_nj + self.burst_nj + self.refresh_nj + self.background_nj

    @property
    def pj_per_bit(self) -> float:
        """Total energy per payload bit — the figure of merit."""
        bits = self.payload_bytes * 8
        if bits == 0:
            return 0.0
        return self.total_nj * 1000.0 / bits

    @property
    def activation_share(self) -> float:
        """Fraction of total energy spent opening/closing rows."""
        total = self.total_nj
        if total == 0:
            return 0.0
        return self.activation_nj / total


def phase_energy(config: DramConfig, stats: PhaseStats, op: str = "RD",
                 params: EnergyParams = None) -> EnergyReport:
    """Energy of one phase from its statistics.

    Args:
        config: the simulated configuration (for burst size).
        stats: phase statistics from the controller.
        op: ``"RD"`` or ``"WR"`` — selects the burst energy.
        params: override the preset energy parameters.
    """
    if op not in ("RD", "WR"):
        raise ValueError(f"op must be 'RD' or 'WR', got {op!r}")
    params = params or energy_params_for(config)
    e_burst = params.e_rd_pj if op == "RD" else params.e_wr_pj
    activation_nj = stats.activates * params.e_act_pre_pj / 1000.0
    burst_nj = stats.requests * e_burst / 1000.0
    refresh_nj = stats.refreshes * params.e_ref_pj / 1000.0
    seconds = stats.makespan_ps / PS_PER_S
    background_nj = params.p_background_mw * 1e-3 * seconds * 1e9
    return EnergyReport(
        activation_nj=activation_nj,
        burst_nj=burst_nj,
        refresh_nj=refresh_nj,
        background_nj=background_nj,
        payload_bytes=stats.requests * config.geometry.burst_bytes,
    )


def interleaver_energy(config: DramConfig, write: PhaseStats, read: PhaseStats,
                       params: EnergyParams = None) -> EnergyReport:
    """Combined write+read energy of one interleaver frame."""
    w = phase_energy(config, write, "WR", params)
    r = phase_energy(config, read, "RD", params)
    return EnergyReport(
        activation_nj=w.activation_nj + r.activation_nj,
        burst_nj=w.burst_nj + r.burst_nj,
        refresh_nj=w.refresh_nj + r.refresh_nj,
        background_nj=w.background_nj + r.background_nj,
        payload_bytes=w.payload_bytes,  # each payload byte written once, read once
    )
