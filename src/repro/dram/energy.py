"""DRAM energy accounting (DRAMPower-style, command-level).

The paper motivates the optimized mapping not only by bandwidth but by
cost and *energy*: an over-provisioned DRAM (faster grade, more
channels) burns more power, and a mapping that thrashes rows pays the
row-activation energy on almost every access (the concern of the
paper's reference [8]).

The model charges a fixed energy per command — the standard abstraction
of DRAMPower and vendor power calculators:

* ``e_act_pre``: one ACT/PRE pair (charging a row, restoring it),
* ``e_rd`` / ``e_wr``: one burst transfer, including I/O,
* ``e_ref``: one refresh command in the configuration's refresh mode
  (tRFC worth of all-bank current for REFab, the much smaller
  single-bank charge for REFpb/REFsb — see
  :func:`refresh_command_energy_pj`),
* ``p_background``: standby power integrated over the phase makespan.

Values are derived from public IDD/IPP datasheet figures and scale with
the page size and bus width of the presets; they are representative,
not vendor-exact (the reproduction compares *mappings*, and both
mappings see identical parameters).  Every Table I configuration has
its own preset (:func:`energy_params_for`): the faster grade of each
family pays slightly less per access (newer bins) but more background
power (interface and clocking running at speed).

Three equivalent accounting paths exist, proven exactly equal by the
differential battery in ``tests/dram/test_energy_differential.py``:

* :func:`energy_from_tally` — from the integer
  :class:`~repro.dram.stats.EnergyTally` the scheduling engine fills on
  every :class:`~repro.dram.stats.PhaseStats` (free: the engine already
  keeps every counter the model charges);
* :func:`energy_from_commands` — the vectorized NumPy recount over a
  recorded command list or prebuilt :func:`command_arrays`;
* :func:`energy_from_commands_reference` — the scalar per-command
  Python loop, kept as the readable oracle (and the baseline the
  ``benchmarks/bench_energy.py`` speedup assertion is pinned against).

All three count commands first and multiply counts by per-command
energies once, so float summation order can never make them disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np
from numpy.typing import NDArray

from repro.dram.commands import CommandType, ScheduledCommand
from repro.dram.presets import REFRESH_PER_BANK, DramConfig
from repro.dram.stats import EnergyTally, PhaseStats
from repro.units import PS_PER_S


@dataclass(frozen=True)
class EnergyParams:
    """Per-command energies (picojoules) and background power (milliwatts).

    Attributes:
        e_act_pre_pj: energy of one ACT + PRE pair.
        e_rd_pj: energy of one read burst (core + I/O).
        e_wr_pj: energy of one write burst.
        e_ref_pj: energy of one refresh command in the configuration's
            *native* refresh mode (REFab for DDR3/DDR4, REFpb/REFsb for
            DDR5/LPDDR).
        p_background_mw: standby/active-idle power charged over the
            whole phase duration.
        e_ref_ab_pj: energy of one *all-bank* refresh command, for
            families whose native mode is per-bank but which can be run
            with all-bank refresh (``0`` when the native mode already
            is all-bank — ``e_ref_pj`` then applies).
    """

    e_act_pre_pj: float
    e_rd_pj: float
    e_wr_pj: float
    e_ref_pj: float
    p_background_mw: float
    e_ref_ab_pj: float = 0.0

    def __post_init__(self) -> None:
        for name in ("e_act_pre_pj", "e_rd_pj", "e_wr_pj", "e_ref_pj",
                     "p_background_mw", "e_ref_ab_pj"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


#: Representative per-family energy parameters (x-bit-width-scaled when
#: applied).  ACT/PRE energy scales with page size; burst energy with
#: bytes moved.  Sources: vendor DDR3/DDR4 power calculators, LPDDR
#: datasheet IDD figures, DRAMPower defaults; rounded.  Used as the
#: fallback for custom configurations of a known family; the Table I
#: presets in ``_CONFIG_PARAMS`` take precedence by name.
_FAMILY_PARAMS: Dict[str, EnergyParams] = {
    "DDR3": EnergyParams(e_act_pre_pj=3200.0, e_rd_pj=2100.0, e_wr_pj=2200.0,
                         e_ref_pj=45000.0, p_background_mw=350.0),
    "DDR4": EnergyParams(e_act_pre_pj=2400.0, e_rd_pj=1400.0, e_wr_pj=1500.0,
                         e_ref_pj=60000.0, p_background_mw=280.0),
    "DDR5": EnergyParams(e_act_pre_pj=1500.0, e_rd_pj=900.0, e_wr_pj=950.0,
                         e_ref_pj=7000.0, p_background_mw=220.0,
                         e_ref_ab_pj=120000.0),
    "LPDDR4": EnergyParams(e_act_pre_pj=1200.0, e_rd_pj=450.0, e_wr_pj=480.0,
                           e_ref_pj=5500.0, p_background_mw=45.0,
                           e_ref_ab_pj=40000.0),
    "LPDDR5": EnergyParams(e_act_pre_pj=900.0, e_rd_pj=320.0, e_wr_pj=340.0,
                           e_ref_pj=4200.0, p_background_mw=40.0,
                           e_ref_ab_pj=32000.0),
}

#: Per-configuration presets for all ten Table I speed grades.  The
#: slower grade of each family keeps the family baseline (by
#: reference, one source of truth); the faster grade trades slightly
#: lower per-access energy (newer process bins) for higher background
#: power (DLL/PLL, interface training at speed).
_CONFIG_PARAMS: Dict[str, EnergyParams] = {
    "DDR3-800": _FAMILY_PARAMS["DDR3"],
    "DDR3-1600": EnergyParams(e_act_pre_pj=3000.0, e_rd_pj=1950.0,
                              e_wr_pj=2050.0, e_ref_pj=45000.0,
                              p_background_mw=390.0),
    "DDR4-1600": _FAMILY_PARAMS["DDR4"],
    "DDR4-3200": EnergyParams(e_act_pre_pj=2250.0, e_rd_pj=1300.0,
                              e_wr_pj=1400.0, e_ref_pj=60000.0,
                              p_background_mw=320.0),
    "DDR5-3200": _FAMILY_PARAMS["DDR5"],
    "DDR5-6400": EnergyParams(e_act_pre_pj=1400.0, e_rd_pj=840.0,
                              e_wr_pj=890.0, e_ref_pj=7000.0,
                              p_background_mw=250.0, e_ref_ab_pj=120000.0),
    "LPDDR4-2133": _FAMILY_PARAMS["LPDDR4"],
    "LPDDR4-4266": EnergyParams(e_act_pre_pj=1120.0, e_rd_pj=420.0,
                                e_wr_pj=450.0, e_ref_pj=5500.0,
                                p_background_mw=52.0, e_ref_ab_pj=40000.0),
    "LPDDR5-4267": _FAMILY_PARAMS["LPDDR5"],
    "LPDDR5-8533": EnergyParams(e_act_pre_pj=840.0, e_rd_pj=300.0,
                                e_wr_pj=320.0, e_ref_pj=4200.0,
                                p_background_mw=46.0, e_ref_ab_pj=32000.0),
}


def energy_params_for(config: DramConfig) -> EnergyParams:
    """Energy parameters for a configuration.

    Table I configurations resolve to their per-grade preset in
    ``_CONFIG_PARAMS``; custom configurations of a known family
    fall back to the family baseline.

    Raises:
        KeyError: for an unknown family with no per-config preset.
    """
    params = _CONFIG_PARAMS.get(config.name)
    if params is not None:
        return params
    try:
        return _FAMILY_PARAMS[config.family]
    except KeyError:
        raise KeyError(
            f"no energy parameters for family {config.family!r}; "
            f"known: {sorted(_FAMILY_PARAMS)}"
        ) from None


def refresh_command_energy_pj(params: EnergyParams, config: DramConfig) -> float:
    """Energy of one refresh command under ``config.refresh_mode``.

    ``e_ref_pj`` is the native-mode value.  A per-bank-native
    configuration run with all-bank refresh (legal whenever a test or
    scenario swaps the mode) charges ``e_ref_ab_pj`` instead — one
    REFab sweeps every bank at once and costs correspondingly more than
    a single-bank REFpb/REFsb.
    """
    if config.refresh_mode != REFRESH_PER_BANK and params.e_ref_ab_pj > 0:
        return params.e_ref_ab_pj
    return params.e_ref_pj


@dataclass(frozen=True)
class EnergyReport:
    """Energy breakdown of one simulated phase.

    All values in nanojoules except the per-bit figure.
    """

    activation_nj: float
    burst_nj: float
    refresh_nj: float
    background_nj: float
    payload_bytes: int
    makespan_ps: int = 0

    @property
    def total_nj(self) -> float:
        """Whole-phase energy: all four components summed."""
        return self.activation_nj + self.burst_nj + self.refresh_nj + self.background_nj

    @property
    def pj_per_bit(self) -> float:
        """Total energy per payload bit — the figure of merit."""
        bits = self.payload_bytes * 8
        if bits == 0:
            return 0.0
        return self.total_nj * 1000.0 / bits

    @property
    def activation_share(self) -> float:
        """Fraction of total energy spent opening/closing rows."""
        total = self.total_nj
        if total == 0:
            return 0.0
        return self.activation_nj / total

    @property
    def avg_power_mw(self) -> float:
        """Average power over the phase makespan, in milliwatts."""
        if self.makespan_ps <= 0:
            return 0.0
        # nJ / ps = 1e-9 J / 1e-12 s = 1e3 W = 1e6 mW.
        return self.total_nj / self.makespan_ps * 1e6


def _build_report(config: DramConfig, params: EnergyParams, act_pre: int,
                  rd: int, wr: int, ref: int, makespan_ps: int) -> EnergyReport:
    """The one place count tallies turn into joules.

    Every accounting path (stats, tally, vectorized or scalar command
    recount) funnels through this function with plain integer counts,
    so identical counts produce bit-identical float reports.
    """
    activation_nj = act_pre * params.e_act_pre_pj / 1000.0
    burst_nj = (rd * params.e_rd_pj + wr * params.e_wr_pj) / 1000.0
    refresh_nj = ref * refresh_command_energy_pj(params, config) / 1000.0
    seconds = makespan_ps / PS_PER_S
    background_nj = params.p_background_mw * 1e-3 * seconds * 1e9
    return EnergyReport(
        activation_nj=activation_nj,
        burst_nj=burst_nj,
        refresh_nj=refresh_nj,
        background_nj=background_nj,
        payload_bytes=(rd + wr) * config.geometry.burst_bytes,
        makespan_ps=makespan_ps,
    )


def phase_energy(config: DramConfig, stats: PhaseStats, op: str = "RD",
                 params: Optional[EnergyParams] = None) -> EnergyReport:
    """Energy of one phase from its statistics.

    Args:
        config: the simulated configuration (for burst size).
        stats: phase statistics from the controller.
        op: ``"RD"`` or ``"WR"`` — selects the burst energy.
        params: override the preset energy parameters.
    """
    if op not in ("RD", "WR"):
        raise ValueError(f"op must be 'RD' or 'WR', got {op!r}")
    params = params or energy_params_for(config)
    is_read = op == "RD"
    return _build_report(
        config, params,
        act_pre=stats.activates,
        rd=stats.requests if is_read else 0,
        wr=0 if is_read else stats.requests,
        ref=stats.refreshes,
        makespan_ps=stats.makespan_ps,
    )


def energy_from_tally(config: DramConfig, tally: EnergyTally,
                      params: Optional[EnergyParams] = None) -> EnergyReport:
    """Energy of one phase from the engine's integer command tallies.

    This is the zero-cost production path: the scheduling engine fills
    ``stats.energy_tally`` on every run from counters it already keeps,
    and this function turns those counts into an :class:`EnergyReport`.
    Exactly equal — not approximately — to recounting the recorded
    command list with :func:`energy_from_commands`.
    """
    params = params or energy_params_for(config)
    return _build_report(config, params, act_pre=tally.act_pre, rd=tally.rd,
                         wr=tally.wr, ref=tally.ref,
                         makespan_ps=tally.makespan_ps)


#: Integer codes for the vectorized command recount.
_CODE_OF: Dict[CommandType, int] = {
    CommandType.ACT: 0,
    CommandType.PRE: 1,
    CommandType.RD: 2,
    CommandType.WR: 3,
    CommandType.REF_ALL: 4,
    CommandType.REF_BANK: 5,
}

#: A command list lowered to columnar arrays: (codes int8, times int64).
CommandArrays = Tuple[NDArray[Any], NDArray[Any]]


def command_arrays(commands: Sequence[ScheduledCommand]) -> CommandArrays:
    """Lower a recorded command list to ``(codes, times)`` NumPy arrays.

    The columnar shape :func:`energy_from_commands` consumes directly;
    lower once, recount as often as needed (e.g. under several
    parameter sets) at pure-NumPy speed.
    """
    n = len(commands)
    codes = np.fromiter((_CODE_OF[c.command] for c in commands),
                        dtype=np.int8, count=n)
    times = np.fromiter((c.time_ps for c in commands),
                        dtype=np.int64, count=n)
    return codes, times


def _trace_makespan(config: DramConfig, rd_times: NDArray[Any],
                    wr_times: NDArray[Any]) -> int:
    """End of the last data burst implied by the CAS issue times.

    Data-burst ends are strictly increasing in issue order (the bus is
    serialized), so the maximum over per-direction ends equals the
    engine's ``makespan_ps`` exactly.
    """
    timing = config.timing
    burst = config.burst_duration_ps
    makespan = 0
    if len(rd_times):
        makespan = int(rd_times.max()) + timing.cl + burst
    if len(wr_times):
        wr_end = int(wr_times.max()) + timing.cwl + burst
        if wr_end > makespan:
            makespan = wr_end
    return makespan


def energy_from_commands(
    config: DramConfig,
    commands: Union[Sequence[ScheduledCommand], CommandArrays],
    params: Optional[EnergyParams] = None,
) -> EnergyReport:
    """Vectorized energy recount over a recorded command stream.

    Args:
        config: the configuration the commands were scheduled for.
        commands: a recorded :class:`ScheduledCommand` sequence (from
            ``policy.record_commands``) or the prebuilt
            :func:`command_arrays` columnar form.
        params: override the preset energy parameters.

    The independent reference for the engine's zero-cost tallies:
    command-type counts come from one ``np.bincount`` and the makespan
    from the latest data-burst end, then the identical count-based
    arithmetic as :func:`energy_from_tally` applies — so the two paths
    are exactly equal whenever the recorded command list is consistent
    with the engine's counters.
    """
    params = params or energy_params_for(config)
    if isinstance(commands, tuple) and len(commands) == 2 \
            and isinstance(commands[0], np.ndarray):
        codes, times = commands
    else:
        codes, times = command_arrays(
            commands if hasattr(commands, "__len__") else list(commands))
    counts = np.bincount(codes, minlength=len(_CODE_OF))
    rd = int(counts[_CODE_OF[CommandType.RD]])
    wr = int(counts[_CODE_OF[CommandType.WR]])
    makespan = _trace_makespan(
        config,
        times[codes == _CODE_OF[CommandType.RD]] if rd else times[:0],
        times[codes == _CODE_OF[CommandType.WR]] if wr else times[:0],
    )
    return _build_report(
        config, params,
        act_pre=int(counts[_CODE_OF[CommandType.ACT]]),
        rd=rd,
        wr=wr,
        ref=int(counts[_CODE_OF[CommandType.REF_ALL]]
                + counts[_CODE_OF[CommandType.REF_BANK]]),
        makespan_ps=makespan,
    )


def energy_from_commands_reference(
    config: DramConfig,
    commands: Iterable[ScheduledCommand],
    params: Optional[EnergyParams] = None,
) -> EnergyReport:
    """Scalar per-command recount — the readable oracle.

    Pure-Python loop over the command list; exactly equal to
    :func:`energy_from_commands` (same counts, same arithmetic) and the
    baseline for the pinned vectorized speedup in
    ``benchmarks/bench_energy.py``.
    """
    params = params or energy_params_for(config)
    timing = config.timing
    burst = config.burst_duration_ps
    act = rd = wr = ref = 0
    makespan = 0
    for command in commands:
        kind = command.command
        if kind is CommandType.RD:
            rd += 1
            end = command.time_ps + timing.cl + burst
            if end > makespan:
                makespan = end
        elif kind is CommandType.WR:
            wr += 1
            end = command.time_ps + timing.cwl + burst
            if end > makespan:
                makespan = end
        elif kind is CommandType.ACT:
            act += 1
        elif kind is CommandType.REF_ALL or kind is CommandType.REF_BANK:
            ref += 1
    return _build_report(config, params, act_pre=act, rd=rd, wr=wr, ref=ref,
                         makespan_ps=makespan)


def combine_interleaver_reports(write: EnergyReport,
                                read: EnergyReport) -> EnergyReport:
    """Combine write- and read-phase reports into one frame report.

    Payload bytes are counted once (each byte is written once and read
    once); makespans add, so :attr:`EnergyReport.avg_power_mw` averages
    over the whole frame.
    """
    return EnergyReport(
        activation_nj=write.activation_nj + read.activation_nj,
        burst_nj=write.burst_nj + read.burst_nj,
        refresh_nj=write.refresh_nj + read.refresh_nj,
        background_nj=write.background_nj + read.background_nj,
        payload_bytes=write.payload_bytes,
        makespan_ps=write.makespan_ps + read.makespan_ps,
    )


def interleaver_energy(config: DramConfig, write: PhaseStats, read: PhaseStats,
                       params: Optional[EnergyParams] = None) -> EnergyReport:
    """Combined write+read energy of one interleaver frame."""
    return combine_interleaver_reports(
        phase_energy(config, write, "WR", params),
        phase_energy(config, read, "RD", params),
    )
