"""The ten DRAM configurations evaluated in the paper (Table I).

Five JEDEC standards with two speed grades each:

* DDR3-800 / DDR3-1600       (64-bit channel, 8 banks, no bank groups)
* DDR4-1600 / DDR4-3200      (64-bit channel, 4 bank groups x 4 banks)
* DDR5-3200 / DDR5-6400      (32-bit subchannel, 8 bank groups x 4 banks)
* LPDDR4-2133 / LPDDR4-4266  (16-bit channel, 8 banks, no bank groups)
* LPDDR5-4267 / LPDDR5-8533  (16-bit channel, 4 bank groups x 4 banks, BG mode)

Timing values are taken from public JEDEC standards and vendor
datasheets where available and interpolated from neighboring speed bins
otherwise; each preset documents its sources of approximation.  The
reproduction targets the *shape* of the paper's Table I (orderings,
crossovers, which configurations collapse under the row-major mapping),
not third-decimal agreement, so small deviations from any particular
vendor's bin are acceptable.

Refresh mode follows the standard: DDR3/DDR4 use all-bank refresh
(REFab stalls the whole rank for tRFC); DDR5, LPDDR4 and LPDDR5 support
per-bank refresh (REFpb/REFsb), which the controller can hide behind
accesses to other banks — this is why the paper's DDR5/LPDDR results
lose almost nothing to refresh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.dram.geometry import Geometry
from repro.dram.timing import TimingParams, from_datasheet
from repro.units import burst_duration_ps, peak_bandwidth_bytes_per_s

#: Refresh strategies supported by the controller.
REFRESH_ALL_BANK = "all-bank"
REFRESH_PER_BANK = "per-bank"


@dataclass(frozen=True)
class DramConfig:
    """A complete, simulatable DRAM channel configuration.

    Attributes:
        name: canonical configuration name, e.g. ``"DDR4-3200"``.
        family: JEDEC standard family, e.g. ``"DDR4"``.
        data_rate_mtps: data rate in mega-transfers per second.
        geometry: channel organization.
        timing: JEDEC timing parameters.
        refresh_mode: ``"all-bank"`` or ``"per-bank"``.
    """

    name: str
    family: str
    data_rate_mtps: int
    geometry: Geometry
    timing: TimingParams
    refresh_mode: str

    def __post_init__(self) -> None:
        if self.refresh_mode not in (REFRESH_ALL_BANK, REFRESH_PER_BANK):
            raise ValueError(f"unknown refresh mode {self.refresh_mode!r}")
        if self.refresh_mode == REFRESH_PER_BANK and self.timing.trfc_pb <= 0:
            raise ValueError(f"{self.name}: per-bank refresh requires trfc_pb > 0")

    @property
    def burst_duration_ps(self) -> int:
        """Data-bus occupancy of one burst in picoseconds."""
        return burst_duration_ps(self.data_rate_mtps, self.geometry.burst_length)

    @property
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Theoretical peak channel bandwidth."""
        return peak_bandwidth_bytes_per_s(self.data_rate_mtps, self.geometry.bus_width_bits)

    @property
    def has_bank_groups(self) -> bool:
        """Whether the device discriminates tCCD/tRRD by bank group."""
        return self.geometry.bank_groups > 1


def _ddr3(data_rate: int, cl: int, cwl: int, trcd_ns: float, tras_ns: float) -> DramConfig:
    """DDR3 64-bit channel of x8 2 Gb devices (1 KB device page -> 8 KB channel page)."""
    geometry = Geometry(
        bank_groups=1,
        banks_per_group=8,
        rows=32768,
        columns=1024,          # 8 KB channel page / 8 B bus word
        bus_width_bits=64,
        burst_length=8,
    )
    timing = from_datasheet(
        data_rate,
        cl_ck=cl,
        cwl_ck=cwl,
        trcd_ns=trcd_ns,
        trp_ns=trcd_ns,
        tras_ns=tras_ns,
        trrd_s_ns=6.0,          # 1 KB page devices
        trrd_l_ns=6.0,          # DDR3 has no bank groups
        tfaw_ns=30.0,           # 1 KB page devices
        tccd_s_ck=4,            # tCCD = 4 nCK = BL/2: seamless bursts
        tccd_l_ns=0.0,
        twr_ns=15.0,
        twtr_s_ns=7.5,
        twtr_l_ns=7.5,
        trtp_ns=7.5,
        trtw_ck=6,
        trefi_us=7.8,
        trfc_ns=160.0,          # 2 Gb devices
    )
    return DramConfig(
        name=f"DDR3-{data_rate}",
        family="DDR3",
        data_rate_mtps=data_rate,
        geometry=geometry,
        timing=timing,
        refresh_mode=REFRESH_ALL_BANK,
    )


def _ddr4(data_rate: int, cl: int, cwl: int, tras_ns: float,
          tfaw_ns: float, tccd_l_ns: float) -> DramConfig:
    """DDR4 64-bit channel of x8 8 Gb devices (4 BG x 4 banks, 8 KB channel page)."""
    geometry = Geometry(
        bank_groups=4,
        banks_per_group=4,
        rows=65536,
        columns=1024,
        bus_width_bits=64,
        burst_length=8,
    )
    timing = from_datasheet(
        data_rate,
        cl_ck=cl,
        cwl_ck=cwl,
        trcd_ns=13.75,
        trp_ns=13.75,
        tras_ns=tras_ns,
        trrd_s_ns=2.5,          # 1 KB page x8: max(4 nCK, 2.5 ns)
        trrd_l_ns=4.9,
        tfaw_ns=tfaw_ns,
        tccd_s_ck=4,
        tccd_l_ns=tccd_l_ns,
        twr_ns=15.0,
        twtr_s_ns=2.5,
        twtr_l_ns=7.5,
        trtp_ns=7.5,
        trtw_ck=8,
        trefi_us=7.8,
        trfc_ns=350.0,          # 8 Gb devices
    )
    return DramConfig(
        name=f"DDR4-{data_rate}",
        family="DDR4",
        data_rate_mtps=data_rate,
        geometry=geometry,
        timing=timing,
        refresh_mode=REFRESH_ALL_BANK,
    )


def _ddr5(data_rate: int, cl: int, cwl: int) -> DramConfig:
    """DDR5 32-bit subchannel of x8 16 Gb devices (8 BG x 4 banks, 4 KB page).

    DDR5 supports same-bank refresh (REFsb), so the controller refreshes
    banks one at a time and hides the refresh behind traffic to the
    other 31 banks; this reproduces the paper's ~100 % DDR5 results.
    ``tFAW = max(32 nCK, 10 ns)``, the x8 fine-granularity value.
    """
    tck_ns = 2000.0 / data_rate
    geometry = Geometry(
        bank_groups=8,
        banks_per_group=4,
        rows=65536,
        columns=1024,           # 4 KB page / 4 B bus word
        bus_width_bits=32,
        burst_length=16,
    )
    timing = from_datasheet(
        data_rate,
        cl_ck=cl,
        cwl_ck=cwl,
        trcd_ns=16.0,
        trp_ns=16.0,
        tras_ns=32.0,
        trrd_s_ns=8 * tck_ns,
        trrd_l_ns=5.0,
        tfaw_ns=max(32 * tck_ns, 10.0),
        tccd_s_ck=8,            # 8 nCK = BL16/2: seamless across bank groups
        tccd_l_ns=5.0,
        twr_ns=30.0,
        twtr_s_ns=2.5,
        twtr_l_ns=10.0,
        trtp_ns=7.5,
        trtw_ck=16,
        trefi_us=3.9,
        trfc_ns=295.0,          # 16 Gb REFab
        trfc_pb_ns=130.0,       # 16 Gb REFsb
    )
    return DramConfig(
        name=f"DDR5-{data_rate}",
        family="DDR5",
        data_rate_mtps=data_rate,
        geometry=geometry,
        timing=timing,
        refresh_mode=REFRESH_PER_BANK,
    )


def _lpddr4(data_rate: int, rl: int, wl: int) -> DramConfig:
    """LPDDR4 16-bit channel, 8 banks, 8 Gb per channel (4 KB page, BL16).

    LPDDR4 has no bank groups; ``tCCD = 8 nCK = BL/2`` so back-to-back
    bursts are seamless on any bank.  Per-bank refresh (REFpb) is the
    norm for LPDDR4 controllers.
    """
    geometry = Geometry(
        bank_groups=1,
        banks_per_group=8,
        rows=16384,
        columns=2048,           # 4 KB page / 2 B bus word
        bus_width_bits=16,
        burst_length=16,
    )
    timing = from_datasheet(
        data_rate,
        cl_ck=rl,
        cwl_ck=wl,
        trcd_ns=18.0,
        trp_ns=18.0,
        tras_ns=42.0,
        trrd_s_ns=10.0,
        trrd_l_ns=10.0,
        tfaw_ns=40.0,
        tccd_s_ck=8,
        tccd_l_ns=0.0,
        twr_ns=18.0,
        twtr_s_ns=10.0,
        twtr_l_ns=10.0,
        trtp_ns=7.5,
        trtw_ck=8,
        trefi_us=0.4875,        # tREFIpb = tREFIab / 8 banks
        trfc_ns=280.0,
        trfc_pb_ns=140.0,       # 8 Gb REFpb
    )
    return DramConfig(
        name=f"LPDDR4-{data_rate}",
        family="LPDDR4",
        data_rate_mtps=data_rate,
        geometry=geometry,
        timing=timing,
        refresh_mode=REFRESH_PER_BANK,
    )


def _lpddr5(data_rate: int, rl: int, wl: int) -> DramConfig:
    """LPDDR5 16-bit channel in bank-group mode (4 BG x 4 banks), 16 Gb die.

    LPDDR5 at >= 3200 MT/s operates in bank-group mode: back-to-back
    bursts to the *same* bank group pay a doubled CAS-to-CAS spacing
    (modeled as ``tCCD_L = 2 x tCCD_S``) while alternating bank groups
    is seamless — the same first-order behavior the paper exploits.
    The command clock runs at WCK/4 (data rate / 8); ``tRRD`` and
    ``tFAW`` use the LPDDR5X-class 3.75 ns / 14 ns floors.
    """
    geometry = Geometry(
        bank_groups=4,
        banks_per_group=4,
        rows=32768,
        columns=2048,           # 4 KB page / 2 B bus word
        bus_width_bits=16,
        burst_length=16,
    )
    # Express CK-domain values against the simulator's DDR-style command
    # clock (data_rate / 2) so `from_datasheet` stays uniform: one LPDDR5
    # CK = 4 simulator clocks.
    burst_ns = geometry.burst_length * 1000.0 / data_rate
    timing = from_datasheet(
        data_rate,
        cl_ck=rl * 4,
        cwl_ck=wl * 4,
        trcd_ns=18.0,
        trp_ns=18.0,
        tras_ns=42.0,
        trrd_s_ns=3.75,
        trrd_l_ns=3.75,
        tfaw_ns=14.0,
        tccd_s_ck=8,            # 8 DDR-style clocks = BL16 burst duration
        tccd_l_ns=2 * burst_ns,
        twr_ns=28.0,
        twtr_s_ns=10.0,
        twtr_l_ns=12.0,
        trtp_ns=7.5,
        trtw_ck=8,
        trefi_us=0.4875,        # per-bank refresh interval
        trfc_ns=280.0,
        trfc_pb_ns=140.0,
    )
    return DramConfig(
        name=f"LPDDR5-{data_rate}",
        family="LPDDR5",
        data_rate_mtps=data_rate,
        geometry=geometry,
        timing=timing,
        refresh_mode=REFRESH_PER_BANK,
    )


_BUILDERS: Dict[str, Callable[[], DramConfig]] = {
    "DDR3-800": lambda: _ddr3(800, cl=5, cwl=5, trcd_ns=12.5, tras_ns=37.5),
    "DDR3-1600": lambda: _ddr3(1600, cl=11, cwl=8, trcd_ns=13.75, tras_ns=35.0),
    "DDR4-1600": lambda: _ddr4(1600, cl=11, cwl=9, tras_ns=35.0, tfaw_ns=25.0, tccd_l_ns=6.25),
    "DDR4-3200": lambda: _ddr4(3200, cl=22, cwl=16, tras_ns=32.0, tfaw_ns=21.0, tccd_l_ns=5.0),
    "DDR5-3200": lambda: _ddr5(3200, cl=26, cwl=24),
    "DDR5-6400": lambda: _ddr5(6400, cl=46, cwl=44),
    "LPDDR4-2133": lambda: _lpddr4(2133, rl=20, wl=10),
    "LPDDR4-4266": lambda: _lpddr4(4266, rl=36, wl=18),
    "LPDDR5-4267": lambda: _lpddr5(4267, rl=15, wl=7),
    "LPDDR5-8533": lambda: _lpddr5(8533, rl=17, wl=9),
}

#: Configuration names in the order of the paper's Table I.
TABLE1_CONFIG_NAMES: Tuple[str, ...] = tuple(_BUILDERS)


def get_config(name: str) -> DramConfig:
    """Return the preset configuration with the given canonical name.

    Raises:
        KeyError: if ``name`` is not one of :data:`TABLE1_CONFIG_NAMES`.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(TABLE1_CONFIG_NAMES)
        raise KeyError(f"unknown DRAM configuration {name!r}; known: {known}") from None
    return builder()


def all_configs() -> Tuple[DramConfig, ...]:
    """All ten Table I configurations, in paper order."""
    return tuple(get_config(name) for name in TABLE1_CONFIG_NAMES)
