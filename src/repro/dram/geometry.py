"""DRAM channel geometry: banks, bank groups, rows, columns, bursts.

A :class:`Geometry` describes one independently-scheduled channel the
way the memory controller sees it.  The interleaver mapping works at
*burst granularity*: one access moves one full burst
(``burst_bytes = bus_width_bits / 8 * burst_length``), so the geometry
also exposes the channel in units of bursts:

* ``bursts_per_row`` -- bursts that fit in one open page,
* ``total_bursts``   -- capacity of the whole channel in bursts.

The convention required by the paper's mapping is honored here: when a
standard has bank groups, the *low* bits of the flat bank index select
the bank group, so incrementing the flat bank index by one always
switches the bank group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import is_power_of_two, log2_int


@dataclass(frozen=True)
class Geometry:
    """Physical organization of one DRAM channel.

    Attributes:
        bank_groups: number of bank groups (1 when the standard has no
            bank-group architecture, e.g. DDR3 and LPDDR4).
        banks_per_group: banks inside each bank group.
        rows: rows per bank.
        columns: column locations per row (in bus-width words).
        bus_width_bits: data-bus width of the channel.
        burst_length: beats per burst (BL8, BL16, ...).
    """

    bank_groups: int
    banks_per_group: int
    rows: int
    columns: int
    bus_width_bits: int
    burst_length: int

    def __post_init__(self) -> None:
        for name in ("bank_groups", "banks_per_group", "rows", "columns", "burst_length"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ValueError(f"{name} must be a positive power of two, got {value}")
        if self.bus_width_bits <= 0 or self.bus_width_bits % 8:
            raise ValueError(f"bus_width_bits must be a positive multiple of 8, got {self.bus_width_bits}")
        if self.columns < self.burst_length:
            raise ValueError("a row must hold at least one full burst")

    @property
    def banks(self) -> int:
        """Total number of banks in the channel."""
        return self.bank_groups * self.banks_per_group

    @property
    def burst_bytes(self) -> int:
        """Bytes moved by one burst."""
        return self.bus_width_bits // 8 * self.burst_length

    @property
    def row_bytes(self) -> int:
        """Page size in bytes (one row of one bank)."""
        return self.bus_width_bits // 8 * self.columns

    @property
    def bursts_per_row(self) -> int:
        """Bursts that fit into one page."""
        return self.columns // self.burst_length

    @property
    def total_bursts(self) -> int:
        """Channel capacity in bursts."""
        return self.banks * self.rows * self.bursts_per_row

    @property
    def capacity_bytes(self) -> int:
        """Channel capacity in bytes."""
        return self.total_bursts * self.burst_bytes

    # -- bit-field widths used by linear address decoders -------------

    @property
    def bank_bits(self) -> int:
        """Address bits selecting one of the flat banks."""
        return log2_int(self.banks)

    @property
    def bank_group_bits(self) -> int:
        """Address bits selecting a bank group."""
        return log2_int(self.bank_groups)

    @property
    def row_bits(self) -> int:
        """Address bits selecting a row within a bank."""
        return log2_int(self.rows)

    @property
    def column_burst_bits(self) -> int:
        """Bits selecting a burst within a row."""
        return log2_int(self.bursts_per_row)

    def bank_group_of(self, flat_bank: int) -> int:
        """Bank group selected by a flat bank index (low bits)."""
        self._check_bank(flat_bank)
        return flat_bank % self.bank_groups

    def bank_in_group_of(self, flat_bank: int) -> int:
        """Bank-within-group selected by a flat bank index (high bits)."""
        self._check_bank(flat_bank)
        return flat_bank // self.bank_groups

    def _check_bank(self, flat_bank: int) -> None:
        if not 0 <= flat_bank < self.banks:
            raise ValueError(f"bank index {flat_bank} out of range [0, {self.banks})")
