"""Native backend for the batch-advance scheduling kernel.

The kernel's hot loop (:mod:`repro.dram.kernel`) has two
implementations: a pure-Python port of the general engine and this
compiled *segment loop*.  The segment loop runs the eval / commit /
arbitrate / pop / admit cycle over the flat int64 state tables and
returns to Python only at **refresh boundaries** (and when the
command-record buffer needs growing), so the Python
:class:`~repro.dram.refresh.RefreshScheduler` is never duplicated: the
wrapper in :mod:`repro.dram.kernel` applies refresh events on the same
arrays the compiled code mutates and re-enters the segment.

The backend is strictly optional.  It compiles one translation unit
with the system C compiler at first use (cached per source hash under
the user's temp directory, override with ``REPRO_KERNELC_CACHE``) and
loads it through ``cffi``.  When a compiler or ``cffi`` is
unavailable — or ``REPRO_KERNEL_NATIVE=0`` is set — :func:`load`
returns ``None`` and the kernel transparently falls back to its
pure-Python loop, which is bit-identical by the same differential
batteries.

All arithmetic is exact int64: timestamps in this project stay below
``10**15`` picoseconds and the far-future sentinel is ``10**18``, so no
intermediate sum can overflow.  The one C-vs-Python arithmetic
difference, truncating vs flooring ``%``, is handled by the
``QUANTIZE`` helper which reproduces Python's floor-mod for negative
operands (the issue-slot bound is legitimately negative before the
first CAS of a phase).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
from shutil import which
from typing import Any, Optional, Tuple

#: Scalar-slot indices shared with the C side (keep in sync with the
#: ``S_*`` enum in :data:`SOURCE`).
(S_LAST_CAS, S_LAST_ACT, S_LAST_ACT_BG, S_FAW_IDX, S_BUS_FREE,
 S_LAST_DATA_END, S_POS, S_QUEUED, S_N_REQUESTS, S_HITS, S_MISSES,
 S_EMPTIES, S_ACTS, S_PRES, S_RESCAN_ALL, S_HAVE_DEADLINE, S_DEADLINE,
 S_READY_COUNT, S_HEAP_SIZE, S_FRESH_COUNT, S_REC_COUNT) = range(21)
N_SCALARS = 21

#: Config-slot indices shared with the C side (``C_*`` enum).
(C_N_BANKS, C_BANK_GROUPS, C_TCK, C_QUANT, C_TRP, C_TRCD, C_TRAS,
 C_TRRD_S, C_TRRD_L, C_TFAW, C_TCCD_S, C_TCCD_L, C_TWR, C_TRTP,
 C_IS_READ, C_LATENCY, C_BURST, C_QUEUE_DEPTH, C_PER_BANK_DEPTH,
 C_RECORD, C_N, C_REC_CAP) = range(22)
N_CFG = 22

#: Segment-exit reasons returned by ``run_segment``.
EXIT_DONE = 0
EXIT_REFRESH = 1
EXIT_RECORD_FULL = 2
EXIT_DEADLOCK = 3

#: Command kinds in the record columns (decoded by the kernel wrapper).
#: ``REC_REF`` is written by the Python refresh section only; the C
#: side records ACT/PRE/CAS.
REC_ACT = 0
REC_PRE = 1
REC_CAS = 2
REC_REF = 3

CDEF = """
int64_t run_segment(const int64_t *cfg, int64_t *sc,
    const int64_t *banks, const int64_t *rows, const int64_t *cols,
    const int64_t *qseqs, const int64_t *qstart,
    int64_t *head, int64_t *adm, int64_t *bstate,
    int64_t *open_row, int64_t *act_time, int64_t *cas_allowed,
    int64_t *pre_allowed, int64_t *act_allowed,
    const int64_t *bg_of, int64_t *last_cas_bg, int64_t *faw_ring,
    int64_t *fresh, int64_t *heap, int64_t *rec);
"""

SOURCE = r"""
#include <stdint.h>

#define FAR_PAST   (-1000000000000000LL)
#define FAR_FUTURE (1000000000000000000LL)

enum { S_LAST_CAS, S_LAST_ACT, S_LAST_ACT_BG, S_FAW_IDX, S_BUS_FREE,
  S_LAST_DATA_END, S_POS, S_QUEUED, S_N_REQUESTS, S_HITS, S_MISSES,
  S_EMPTIES, S_ACTS, S_PRES, S_RESCAN_ALL, S_HAVE_DEADLINE, S_DEADLINE,
  S_READY_COUNT, S_HEAP_SIZE, S_FRESH_COUNT, S_REC_COUNT };

enum { C_N_BANKS, C_BANK_GROUPS, C_TCK, C_QUANT, C_TRP, C_TRCD, C_TRAS,
  C_TRRD_S, C_TRRD_L, C_TFAW, C_TCCD_S, C_TCCD_L, C_TWR, C_TRTP,
  C_IS_READ, C_LATENCY, C_BURST, C_QUEUE_DEPTH, C_PER_BANK_DEPTH,
  C_RECORD, C_N, C_REC_CAP };

enum { REC_ACT = 0, REC_PRE = 1, REC_CAS = 2 };

/* Python floor-mod quantization: round v up to the command-clock grid.
 * C's % truncates toward zero; Python's floors, and the issue-slot
 * bound is negative before the first CAS of a phase, so the remainder
 * must be normalized into [0, tck). */
static inline int64_t quantize(int64_t v, int64_t tck) {
    int64_t r = v % tck;
    if (r < 0) r += tck;
    if (r) v += tck - r;
    return v;
}

/* Deferred-activation entries, 5 int64 columns per slot (same fields
 * as the general engine's heap tuples).  The store is an unsorted
 * array: entries carry distinct banks, so (act_ready, bank) is a total
 * order and min-extraction visits entries in exactly the order the
 * general engine's binary heap pops them. */
#define H_T(i)   heap[(i) * 5 + 0]
#define H_B(i)   heap[(i) * 5 + 1]
#define H_P(i)   heap[(i) * 5 + 2]
#define H_E(i)   heap[(i) * 5 + 3]
#define H_R(i)   heap[(i) * 5 + 4]

int64_t run_segment(const int64_t *cfg, int64_t *sc,
    const int64_t *banks, const int64_t *rows, const int64_t *cols,
    const int64_t *qseqs, const int64_t *qstart,
    int64_t *head, int64_t *adm, int64_t *bstate,
    int64_t *open_row, int64_t *act_time, int64_t *cas_allowed,
    int64_t *pre_allowed, int64_t *act_allowed,
    const int64_t *bg_of, int64_t *last_cas_bg, int64_t *faw_ring,
    int64_t *fresh, int64_t *heap, int64_t *rec)
{
    const int64_t n_banks = cfg[C_N_BANKS];
    const int64_t tck = cfg[C_TCK];
    const int64_t quant = cfg[C_QUANT];
    const int64_t trp = cfg[C_TRP];
    const int64_t trcd = cfg[C_TRCD];
    const int64_t tras = cfg[C_TRAS];
    const int64_t trrd_s = cfg[C_TRRD_S];
    const int64_t trrd_l = cfg[C_TRRD_L];
    const int64_t tfaw = cfg[C_TFAW];
    const int64_t tccd_s = cfg[C_TCCD_S];
    const int64_t tccd_l = cfg[C_TCCD_L];
    const int64_t twr = cfg[C_TWR];
    const int64_t trtp = cfg[C_TRTP];
    const int64_t is_read = cfg[C_IS_READ];
    const int64_t latency = cfg[C_LATENCY];
    const int64_t burst = cfg[C_BURST];
    const int64_t queue_depth = cfg[C_QUEUE_DEPTH];
    const int64_t per_bank_depth = cfg[C_PER_BANK_DEPTH];
    const int64_t do_record = cfg[C_RECORD];
    const int64_t nreq = cfg[C_N];
    const int64_t rec_cap = cfg[C_REC_CAP];

    int64_t last_cas = sc[S_LAST_CAS];
    int64_t last_act = sc[S_LAST_ACT];
    int64_t last_act_bg = sc[S_LAST_ACT_BG];
    int64_t faw_idx = sc[S_FAW_IDX];
    int64_t bus_free = sc[S_BUS_FREE];
    int64_t last_data_end = sc[S_LAST_DATA_END];
    int64_t pos = sc[S_POS];
    int64_t queued = sc[S_QUEUED];
    int64_t n_requests = sc[S_N_REQUESTS];
    int64_t hits = sc[S_HITS];
    int64_t misses = sc[S_MISSES];
    int64_t empties = sc[S_EMPTIES];
    int64_t acts = sc[S_ACTS];
    int64_t pres = sc[S_PRES];
    int64_t rescan_all = sc[S_RESCAN_ALL];
    const int64_t have_deadline = sc[S_HAVE_DEADLINE];
    const int64_t deadline = sc[S_DEADLINE];
    int64_t ready_count = sc[S_READY_COUNT];
    int64_t heap_size = sc[S_HEAP_SIZE];
    int64_t fresh_count = sc[S_FRESH_COUNT];
    int64_t rec_count = sc[S_REC_COUNT];

    int64_t commit_idx[64];
    int64_t exit_reason = EXIT_DONE_SENTINEL;

    for (;;) {
        if (!queued) { exit_reason = 0; break; }
        if (have_deadline && last_cas >= deadline) { exit_reason = 1; break; }
        if (do_record && rec_cap - rec_count < 2 * n_banks + 2) {
            exit_reason = 2; break;
        }

        /* ---- eager per-bank row management ------------------------- */
        if (rescan_all) {
            rescan_all = 0;
            fresh_count = 0;
            heap_size = 0;
            for (int64_t b = 0; b < n_banks; b++) {
                if (bstate[b] != 1) continue;
                int64_t row = rows[qseqs[qstart[b] + head[b]]];
                int64_t current = open_row[b];
                if (current == row) {
                    bstate[b] = 2; ready_count++; hits++;
                } else if (current < 0) {
                    H_T(heap_size) = act_allowed[b]; H_B(heap_size) = b;
                    H_P(heap_size) = -1; H_E(heap_size) = 1;
                    H_R(heap_size) = row; heap_size++;
                } else {
                    int64_t t_pre = pre_allowed[b];
                    if (quant) t_pre = quantize(t_pre, tck);
                    H_T(heap_size) = t_pre + trp; H_B(heap_size) = b;
                    H_P(heap_size) = t_pre; H_E(heap_size) = 0;
                    H_R(heap_size) = row; heap_size++;
                }
            }
        } else if (fresh_count) {
            /* The general engine visits fresh banks in sorted order,
             * but eval touches no shared timeline state, so per-bank
             * outcomes are order-independent; heap extraction is by
             * (act_ready, bank), not insertion order. */
            for (int64_t i = 0; i < fresh_count; i++) {
                int64_t b = fresh[i];
                int64_t row = rows[qseqs[qstart[b] + head[b]]];
                int64_t current = open_row[b];
                if (current == row) {
                    bstate[b] = 2; ready_count++; hits++;
                } else if (current < 0) {
                    H_T(heap_size) = act_allowed[b]; H_B(heap_size) = b;
                    H_P(heap_size) = -1; H_E(heap_size) = 1;
                    H_R(heap_size) = row; heap_size++;
                } else {
                    int64_t t_pre = pre_allowed[b];
                    if (quant) t_pre = quantize(t_pre, tck);
                    H_T(heap_size) = t_pre + trp; H_B(heap_size) = b;
                    H_P(heap_size) = t_pre; H_E(heap_size) = 0;
                    H_R(heap_size) = row; heap_size++;
                }
            }
            fresh_count = 0;
        }

        /* ---- deferred-activation commits --------------------------- */
        if (heap_size) {
            int64_t n_commit = 0;
            for (int64_t i = 0; i < heap_size; i++)
                if (H_T(i) <= bus_free) commit_idx[n_commit++] = i;
            if (!n_commit && !ready_count) {
                /* Forced single commit: the earliest (act_ready, bank)
                 * entry, exactly the heap's root. */
                int64_t mi = 0;
                for (int64_t i = 1; i < heap_size; i++)
                    if (H_T(i) < H_T(mi) ||
                        (H_T(i) == H_T(mi) && H_B(i) < H_B(mi))) mi = i;
                commit_idx[n_commit++] = mi;
            }
            if (n_commit) {
                /* Group commits happen in bank order (the engine sorts
                 * its batch by bank). */
                for (int64_t i = 1; i < n_commit; i++) {
                    int64_t ci = commit_idx[i];
                    int64_t j = i - 1;
                    while (j >= 0 && H_B(commit_idx[j]) > H_B(ci)) {
                        commit_idx[j + 1] = commit_idx[j]; j--;
                    }
                    commit_idx[j + 1] = ci;
                }
                for (int64_t i = 0; i < n_commit; i++) {
                    int64_t ci = commit_idx[i];
                    int64_t act_ready = H_T(ci);
                    int64_t b = H_B(ci);
                    int64_t t_pre = H_P(ci);
                    int64_t is_empty = H_E(ci);
                    int64_t row = H_R(ci);
                    if (is_empty) {
                        empties++;
                    } else {
                        misses++; pres++;
                        if (do_record) {
                            int64_t *r = rec + rec_count * 6;
                            r[0] = t_pre; r[1] = REC_PRE; r[2] = b;
                            r[3] = -1; r[4] = -1; r[5] = -1;
                            rec_count++;
                        }
                    }
                    int64_t bg = bg_of[b];
                    int64_t t_act = act_ready;
                    if (last_act != FAR_PAST) {
                        int64_t spacing = (bg == last_act_bg) ? trrd_l
                                                              : trrd_s;
                        int64_t t = last_act + spacing;
                        if (t > t_act) t_act = t;
                    }
                    {
                        int64_t t = faw_ring[faw_idx] + tfaw;
                        if (t > t_act) t_act = t;
                    }
                    if (quant) t_act = quantize(t_act, tck);
                    faw_ring[faw_idx] = t_act;
                    faw_idx = (faw_idx + 1) & 3;
                    last_act = t_act;
                    last_act_bg = bg;
                    acts++;
                    if (do_record) {
                        int64_t *r = rec + rec_count * 6;
                        r[0] = t_act; r[1] = REC_ACT; r[2] = b;
                        r[3] = row; r[4] = -1; r[5] = -1;
                        rec_count++;
                    }
                    open_row[b] = row;
                    act_time[b] = t_act;
                    cas_allowed[b] = t_act + trcd;
                    pre_allowed[b] = t_act + tras;
                    bstate[b] = 2;
                    ready_count++;
                }
                /* Compact the committed entries out of the store. */
                int64_t w = 0;
                for (int64_t i = 0; i < heap_size; i++) {
                    int64_t committed = 0;
                    for (int64_t j = 0; j < n_commit; j++)
                        if (commit_idx[j] == i) { committed = 1; break; }
                    if (committed) continue;
                    if (w != i) {
                        H_T(w) = H_T(i); H_B(w) = H_B(i); H_P(w) = H_P(i);
                        H_E(w) = H_E(i); H_R(w) = H_R(i);
                    }
                    w++;
                }
                heap_size = w;
            }
        }

        /* ---- CAS arbitration: min-reductions over the ready heads -- */
        int64_t bound = last_cas + tccd_s;
        {
            int64_t t = bus_free - latency;
            if (t > bound) bound = t;
        }
        if (quant) bound = quantize(bound, tck);
        int64_t chosen = -1;
        int64_t t_cas = 0;
        int64_t best_seq = FAR_FUTURE;
        int64_t best_pb = FAR_FUTURE;
        int64_t best_pb_seq = FAR_FUTURE;
        int64_t best_pb_bank = -1;
        for (int64_t b = 0; b < n_banks; b++) {
            if (bstate[b] != 2) continue;
            int64_t sq = qseqs[qstart[b] + head[b]];
            int64_t pb = cas_allowed[b];
            int64_t t = last_cas_bg[bg_of[b]] + tccd_l;
            if (t > pb) pb = t;
            if (pb <= bound) {
                if (sq < best_seq) { best_seq = sq; chosen = b; }
            } else if (pb < best_pb ||
                       (pb == best_pb && sq < best_pb_seq)) {
                best_pb = pb; best_pb_seq = sq; best_pb_bank = b;
            }
        }
        if (chosen >= 0) {
            t_cas = bound;
        } else if (best_pb_bank >= 0) {
            chosen = best_pb_bank;
            t_cas = best_pb;
            if (quant) t_cas = quantize(t_cas, tck);
        } else {
            exit_reason = 3; break;
        }

        /* ---- pop, timeline update, admission ----------------------- */
        int64_t hidx = qstart[chosen] + head[chosen];
        int64_t p_seq = qseqs[hidx];
        head[chosen]++;
        queued--;
        if (adm[chosen] == head[chosen]) {
            bstate[chosen] = 0; ready_count--;
        } else if (rows[qseqs[hidx + 1]] == open_row[chosen]) {
            hits++;
        } else {
            bstate[chosen] = 1; ready_count--;
            fresh[fresh_count++] = chosen;
        }
        last_cas = t_cas;
        last_cas_bg[bg_of[chosen]] = t_cas;
        {
            int64_t data_end = t_cas + latency + burst;
            bus_free = data_end;
            last_data_end = data_end;
            int64_t t = is_read ? t_cas + trtp : data_end + twr;
            if (t > pre_allowed[chosen]) pre_allowed[chosen] = t;
        }
        if (do_record) {
            int64_t *r = rec + rec_count * 6;
            r[0] = t_cas; r[1] = REC_CAS; r[2] = chosen;
            r[3] = rows[p_seq]; r[4] = cols[p_seq]; r[5] = n_requests;
            rec_count++;
        }
        n_requests++;
        if (pos < nreq && queued == queue_depth - 1) {
            int64_t b = banks[pos];
            if (adm[b] - head[b] < per_bank_depth) {
                if (adm[b] == head[b]) {
                    bstate[b] = 1;
                    fresh[fresh_count++] = b;
                }
                adm[b]++; pos++; queued++;
            }
        } else {
            while (queued < queue_depth && pos < nreq) {
                int64_t b = banks[pos];
                if (adm[b] - head[b] >= per_bank_depth) break;
                if (adm[b] == head[b]) {
                    bstate[b] = 1;
                    fresh[fresh_count++] = b;
                }
                adm[b]++; pos++; queued++;
            }
        }
    }

    sc[S_LAST_CAS] = last_cas;
    sc[S_LAST_ACT] = last_act;
    sc[S_LAST_ACT_BG] = last_act_bg;
    sc[S_FAW_IDX] = faw_idx;
    sc[S_BUS_FREE] = bus_free;
    sc[S_LAST_DATA_END] = last_data_end;
    sc[S_POS] = pos;
    sc[S_QUEUED] = queued;
    sc[S_N_REQUESTS] = n_requests;
    sc[S_HITS] = hits;
    sc[S_MISSES] = misses;
    sc[S_EMPTIES] = empties;
    sc[S_ACTS] = acts;
    sc[S_PRES] = pres;
    sc[S_RESCAN_ALL] = rescan_all;
    sc[S_READY_COUNT] = ready_count;
    sc[S_HEAP_SIZE] = heap_size;
    sc[S_FRESH_COUNT] = fresh_count;
    sc[S_REC_COUNT] = rec_count;
    return exit_reason;
}
"""

# `EXIT_DONE_SENTINEL` keeps the variable initialized without a magic
# constant appearing twice; substitute it before compiling.
SOURCE = SOURCE.replace("EXIT_DONE_SENTINEL", "0")

_loaded: Optional[Tuple[Any, Any]] = None
_load_attempted = False


def _cache_path() -> str:
    """Shared-object path for the current source (per-user, per-hash)."""
    digest = hashlib.sha256(SOURCE.encode("utf-8")).hexdigest()[:20]
    uid = os.getuid() if hasattr(os, "getuid") else 0
    root = os.environ.get("REPRO_KERNELC_CACHE") or os.path.join(
        tempfile.gettempdir(), f"repro-kernelc-{uid}")
    return os.path.join(root, f"kernel-{digest}.so")


def _compile(so_path: str) -> bool:
    """Compile :data:`SOURCE` to ``so_path``; ``False`` on any failure."""
    compiler = which("cc") or which("gcc")
    if compiler is None:
        return False
    directory = os.path.dirname(so_path)
    try:
        os.makedirs(directory, exist_ok=True)
        c_path = so_path + f".{os.getpid()}.c"
        tmp_so = so_path + f".{os.getpid()}.tmp"
        with open(c_path, "w", encoding="utf-8") as fh:
            fh.write(SOURCE)
        proc = subprocess.run(
            [compiler, "-O2", "-shared", "-fPIC", "-o", tmp_so, c_path],
            capture_output=True)
        if proc.returncode != 0:
            return False
        os.replace(tmp_so, so_path)  # atomic vs concurrent builders
        return True
    except OSError:
        return False
    finally:
        for leftover in (so_path + f".{os.getpid()}.c",
                         so_path + f".{os.getpid()}.tmp"):
            try:
                os.unlink(leftover)
            except OSError:
                pass


def load() -> Optional[Tuple[Any, Any]]:
    """Return ``(ffi, lib)`` for the compiled segment loop, or ``None``.

    The result is cached for the process; a failed attempt is not
    retried.  Set ``REPRO_KERNEL_NATIVE=0`` to force the pure-Python
    kernel loop regardless of toolchain availability.
    """
    global _loaded, _load_attempted
    if _load_attempted:
        return _loaded
    _load_attempted = True
    if os.environ.get("REPRO_KERNEL_NATIVE", "1") == "0":
        return None
    try:
        import cffi
    except ImportError:  # pragma: no cover - cffi is in the toolchain
        return None
    so_path = _cache_path()
    if not os.path.exists(so_path) and not _compile(so_path):
        return None
    try:
        ffi = cffi.FFI()
        ffi.cdef(CDEF)
        lib = ffi.dlopen(so_path)
    except (OSError, cffi.error.FFIError, cffi.error.CDefError):
        return None
    _loaded = (ffi, lib)
    return _loaded


def available() -> bool:
    """Whether the compiled segment loop can be used in this process."""
    return load() is not None
