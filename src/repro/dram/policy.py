"""Scheduling-policy zoo: named page-management disciplines.

The engine's arbiter (see :mod:`repro.dram.engine`) has always run one
discipline — open-page FR-FCFS: rows stay open after a column access,
ready row-hits issue before older row-misses, and among candidates that
achieve the earliest legal slot the oldest request wins.  This module
names that behavior (:data:`POLICY_OPEN_PAGE`, the default on
:class:`~repro.dram.controller.ControllerConfig`) and adds three more
disciplines selectable through the same hook:

* :data:`POLICY_CLOSED_PAGE` — auto-precharge after **every** column
  access.  Each CAS closes its row immediately (the PRE is charged at
  the request's precharge-ready time, exactly where an eager row-miss
  PRE would land), so every request is a page-empty: zero page hits,
  zero page misses, and exactly one PRE per ACT.
* :data:`POLICY_FRFCFS_CAP` — FR-FCFS with a row-hit streak cap: after
  ``cap`` consecutive column accesses to one bank's open row, the row
  is auto-precharged so older row-miss requests on that bank cannot
  starve.  ``cap=1`` is exactly closed-page (pinned by a differential
  test); ``cap`` -> infinity approaches open-page.
* :data:`POLICY_BANK_PARTITION` — static bank partitioning: write
  traffic owns the lower half of the bank address space, read traffic
  the upper half (``partition_bank``).  Scheduling *within* a
  partition is plain open-page FR-FCFS, so the discipline is
  implemented as an intake transformation — the engine remaps each
  request's bank to its stream class's partition and then schedules
  exactly as open-page would on the remapped stream.  This makes its
  equivalence argument trivial: the frozen open-page oracle run on the
  remapped stream *is* the scalar reference.  Requires an even bank
  count (two equal partitions).

Equivalence argument (why open-page stays bit-identical): the three new
disciplines are strictly additive mechanisms.  Closed-page and
FR-FCFS-cap share one auto-close mechanism — a per-bank
column-access streak counter that, once it reaches the cap (1 for
closed-page), charges a PRE at the bank's precharge-ready time and
closes the row; with the mechanism disabled (open-page) not a single
branch in the arbiter's hot loop changes its outcome.  Bank
partitioning wraps the workload source before intake and leaves the
scheduler untouched.  The differential battery in
``tests/dram/test_policy_differential.py`` proves the default
discipline bit-identical to the pre-policy engine, the PR 8 kernel and
the frozen seed oracles, and each new discipline equal to a scalar
reference; ``tests/dram/test_policy_properties.py`` replay-checks every
discipline's schedules against the independent
:class:`~repro.dram.trace.TraceChecker` with zero violations.

Kernel-fallback rules: the batch-advance kernel
(:mod:`repro.dram.kernel`) implements open-page and bank partitioning
natively (partitioning is an intake remap, invisible to its arbiter);
closed-page and FR-FCFS-cap invalidate the kernel's precomputed
row-hit table, so kernel runs of those disciplines delegate to the
general engine — visibly, via the ``kernel_fallback`` flag on
:class:`~repro.dram.stats.PhaseStats`.
"""

from __future__ import annotations

from typing import Tuple

#: Open-page FR-FCFS — the engine's original (and default) discipline.
POLICY_OPEN_PAGE = "open-page"

#: Auto-precharge after every column access.
POLICY_CLOSED_PAGE = "closed-page"

#: FR-FCFS with the row-hit streak capped at ``cap`` per bank.
POLICY_FRFCFS_CAP = "frfcfs-cap"

#: Static bank partitioning: writes own the lower half of the banks,
#: reads the upper half; open-page FR-FCFS within each partition.
POLICY_BANK_PARTITION = "bank-partition"

#: All disciplines the ``discipline=`` hook accepts.
POLICY_NAMES = (POLICY_OPEN_PAGE, POLICY_CLOSED_PAGE, POLICY_FRFCFS_CAP,
                POLICY_BANK_PARTITION)


def check_discipline(discipline: str) -> None:
    """Reject unknown discipline names with the known set named.

    Raises:
        ValueError: if ``discipline`` is not in :data:`POLICY_NAMES`.
    """
    if discipline not in POLICY_NAMES:
        raise ValueError(
            f"discipline must be one of {POLICY_NAMES}, got {discipline!r}")


def partition_banks(n_banks: int) -> int:
    """Banks per partition under :data:`POLICY_BANK_PARTITION`.

    Raises:
        ValueError: if ``n_banks`` cannot split into two equal
            partitions (fewer than two banks, or an odd count).
    """
    if n_banks < 2 or n_banks % 2:
        raise ValueError(
            f"bank partitioning needs an even bank count >= 2, "
            f"got {n_banks} banks")
    return n_banks // 2


def partition_bank(bank: int, n_banks: int, is_read: bool) -> int:
    """The partitioned bank index of one request.

    Write traffic maps onto banks ``[0, n_banks/2)``, read traffic onto
    ``[n_banks/2, n_banks)``; within a partition the original bank
    index folds modulo the partition size, preserving program order and
    relative bank locality.  The map is idempotent on streams already
    confined to their partition modulo the fold.

    Args:
        bank: original bank index, already validated in
            ``[0, n_banks)``.
        n_banks: device bank count (even, >= 2).
        is_read: the request's stream class.
    """
    half = n_banks // 2
    return bank % half + (half if is_read else 0)


def partition_bounds(n_banks: int, is_read: bool) -> Tuple[int, int]:
    """Half-open bank range ``[lo, hi)`` owned by one stream class."""
    half = n_banks // 2
    return (half, n_banks) if is_read else (0, half)
