"""JEDEC DRAM timing parameters.

All durations are integer picoseconds (see :mod:`repro.units`).  The
parameter set covers every first-order constraint that determines
sustained bandwidth for the streaming row-wise / column-wise access
patterns of a block interleaver:

* row-cycle timings: ``tRCD``, ``tRP``, ``tRAS`` (and derived ``tRC``);
* activate throttles: ``tRRD_S`` / ``tRRD_L`` (different / same bank
  group) and the four-activate window ``tFAW``;
* column-to-column spacing: ``tCCD_S`` / ``tCCD_L``;
* write recovery / turnaround: ``tWR``, ``tWTR_S`` / ``tWTR_L``,
  ``tRTP``, and the explicit read-to-write bus turnaround ``tRTW``;
* CAS latencies ``tCL`` (read) and ``tCWL`` (write);
* refresh: ``tREFI`` and ``tRFC`` (all-bank) / ``tRFCpb`` (per-bank).

Standards without bank groups (DDR3, LPDDR4) simply set the ``_S`` and
``_L`` flavors equal; the controller then behaves identically for
same-group and cross-group accesses, which is exactly the JEDEC
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.units import clock_period_ps


@dataclass(frozen=True)
class TimingParams:
    """Device timing parameters in integer picoseconds.

    Attributes:
        tck: command-clock period.
        cl: read CAS latency (command to first data beat).
        cwl: write CAS latency (command to first data beat).
        trcd: ACT to internal read/write delay.
        trp: PRE to ACT delay (same bank).
        tras: ACT to PRE minimum.
        trrd_s: ACT to ACT, different bank group.
        trrd_l: ACT to ACT, same bank group.
        tfaw: rolling window that may contain at most four ACTs.
        tccd_s: CAS to CAS, different bank group.
        tccd_l: CAS to CAS, same bank group.
        twr: end of write data to PRE (write recovery).
        twtr_s: end of write data to read command, different bank group.
        twtr_l: end of write data to read command, same bank group.
        trtp: read command to PRE.
        trtw: read command to write command on the same channel (bus
            turnaround; encodes the DQ direction switch penalty).
        trefi: average refresh command interval.
        trfc: all-bank refresh cycle time.
        trfc_pb: per-bank refresh cycle time (0 when the standard has no
            per-bank refresh, i.e. DDR3/DDR4).
    """

    tck: int
    cl: int
    cwl: int
    trcd: int
    trp: int
    tras: int
    trrd_s: int
    trrd_l: int
    tfaw: int
    tccd_s: int
    tccd_l: int
    twr: int
    twtr_s: int
    twtr_l: int
    trtp: int
    trtw: int
    trefi: int
    trfc: int
    trfc_pb: int = 0

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if not isinstance(value, int):
                raise TypeError(f"{field.name} must be an integer picosecond value, got {value!r}")
            if value < 0:
                raise ValueError(f"{field.name} must be non-negative, got {value}")
        if self.tck <= 0:
            raise ValueError(f"tck must be positive, got {self.tck}")
        if self.trrd_l < self.trrd_s:
            raise ValueError("tRRD_L must be >= tRRD_S")
        if self.tccd_l < self.tccd_s:
            raise ValueError("tCCD_L must be >= tCCD_S")
        if self.twtr_l < self.twtr_s:
            raise ValueError("tWTR_L must be >= tWTR_S")
        if self.tras < self.trcd:
            raise ValueError("tRAS must be >= tRCD")
        if self.tfaw < self.trrd_s:
            raise ValueError("tFAW must be >= tRRD_S")

    @property
    def trc(self) -> int:
        """Row-cycle time: minimum ACT-to-ACT on the same bank."""
        return self.tras + self.trp

    def scaled(self, factor: float) -> "TimingParams":
        """Return a copy with every analog timing scaled by ``factor``.

        ``tck`` is preserved; useful for sensitivity studies.
        """
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        for name in values:
            if name != "tck":
                values[name] = round(values[name] * factor)
        return TimingParams(**values)


def _ck(data_rate_mtps: int, n_clocks: float) -> int:
    """``n_clocks`` command clocks at the given data rate, in ps.

    Computed from the exact (rational) clock period rather than the
    rounded single-clock value so that e.g. 8 clocks at 6400 MT/s give
    exactly 2500 ps (8 x 312.5), not 8 x 312 = 2496 ps.
    """
    return round(n_clocks * 2_000_000 / data_rate_mtps)


def from_datasheet(
    data_rate_mtps: int,
    *,
    cl_ck: float,
    cwl_ck: float,
    trcd_ns: float,
    trp_ns: float,
    tras_ns: float,
    trrd_s_ns: float,
    trrd_l_ns: float,
    tfaw_ns: float,
    tccd_s_ck: float,
    tccd_l_ns: float,
    twr_ns: float,
    twtr_s_ns: float,
    twtr_l_ns: float,
    trtp_ns: float,
    trtw_ck: float,
    trefi_us: float,
    trfc_ns: float,
    trfc_pb_ns: float = 0.0,
) -> TimingParams:
    """Build :class:`TimingParams` from datasheet-style values.

    Datasheets express some limits in clocks (CAS latencies, tCCD_S)
    and others in nanoseconds; this helper converts everything to the
    integer-picosecond form the simulator uses.  Nanosecond limits are
    *not* rounded up to whole clocks here — the controller quantizes
    command issue slots to the clock grid at scheduling time, which is
    equivalent and keeps the parameters exact.
    """
    from repro.units import ns_to_ps, us_to_ps

    tck = clock_period_ps(data_rate_mtps)
    tccd_l = max(ns_to_ps(tccd_l_ns), _ck(data_rate_mtps, tccd_s_ck))
    return TimingParams(
        tck=tck,
        cl=_ck(data_rate_mtps, cl_ck),
        cwl=_ck(data_rate_mtps, cwl_ck),
        trcd=ns_to_ps(trcd_ns),
        trp=ns_to_ps(trp_ns),
        tras=ns_to_ps(tras_ns),
        trrd_s=max(ns_to_ps(trrd_s_ns), 4 * tck),
        trrd_l=max(ns_to_ps(trrd_l_ns), 4 * tck),
        tfaw=ns_to_ps(tfaw_ns),
        tccd_s=_ck(data_rate_mtps, tccd_s_ck),
        tccd_l=tccd_l,
        twr=ns_to_ps(twr_ns),
        twtr_s=ns_to_ps(twtr_s_ns),
        twtr_l=ns_to_ps(twtr_l_ns),
        trtp=ns_to_ps(trtp_ns),
        trtw=_ck(data_rate_mtps, trtw_ck),
        trefi=us_to_ps(trefi_us),
        trfc=ns_to_ps(trfc_ns),
        trfc_pb=ns_to_ps(trfc_pb_ns),
    )
