"""DRAM command vocabulary and scheduled-command records.

The controller's output is a time-ordered list of
:class:`ScheduledCommand` entries — the same information a cycle-
accurate simulator would drive onto the command bus.  Tests replay
these records to check that every JEDEC constraint was honored.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommandType(enum.Enum):
    """Commands the controller can issue."""

    ACT = "ACT"            #: activate a row (open the page)
    PRE = "PRE"            #: precharge (close the page)
    RD = "RD"              #: burst read from the open page
    WR = "WR"              #: burst write to the open page
    REF_ALL = "REFab"      #: all-bank refresh
    REF_BANK = "REFpb"     #: per-bank / same-bank refresh


#: Command types that move data over the bus.
CAS_COMMANDS = (CommandType.RD, CommandType.WR)


@dataclass(frozen=True)
class ScheduledCommand:
    """One command placed on the command bus.

    Attributes:
        time_ps: issue time on the command-clock grid.
        command: the command type.
        bank: flat bank index (``-1`` for all-bank refresh).
        row: row address (``-1`` when not applicable).
        column: burst-granular column address (``-1`` when not applicable).
        request_id: index of the originating request in the access
            sequence (``-1`` for refresh and other autonomous commands).
    """

    time_ps: int
    command: CommandType
    bank: int = -1
    row: int = -1
    column: int = -1
    request_id: int = -1

    def __post_init__(self) -> None:
        if self.time_ps < 0:
            raise ValueError(f"command time must be non-negative, got {self.time_ps}")

    @property
    def moves_data(self) -> bool:
        """Whether this command occupies the data bus."""
        return self.command in CAS_COMMANDS

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        parts = [f"{self.time_ps:>12d} ps  {self.command.value:<6s}"]
        if self.bank >= 0:
            parts.append(f"bank={self.bank}")
        if self.row >= 0:
            parts.append(f"row={self.row}")
        if self.column >= 0:
            parts.append(f"col={self.column}")
        return " ".join(parts)
