"""Command-trace serialization and JEDEC-constraint replay checking.

The controller can record every scheduled command
(:class:`~repro.dram.commands.ScheduledCommand`).  This module writes
those traces in a stable text format, reads them back, and — most
importantly — **replays** a trace against the timing parameters to
verify that no constraint was violated.  The replay checker is an
independent implementation of the JEDEC rules (state-machine style, not
event-driven), so it cross-checks the controller in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, TextIO, Tuple

from repro.dram.commands import CommandType, ScheduledCommand
from repro.dram.presets import DramConfig

_HEADER = "# repro-dram-trace-v1"


def write_trace(commands: Iterable[ScheduledCommand], stream: TextIO) -> int:
    """Write commands as one line each; returns the number written.

    Format: ``time_ps command bank row column request_id``.
    """
    stream.write(_HEADER + "\n")
    count = 0
    for command in commands:
        stream.write(
            f"{command.time_ps} {command.command.value} {command.bank} "
            f"{command.row} {command.column} {command.request_id}\n"
        )
        count += 1
    return count


def read_trace(stream: TextIO) -> List[ScheduledCommand]:
    """Inverse of :func:`write_trace`."""
    header = stream.readline().strip()
    if header != _HEADER:
        raise ValueError(f"not a repro DRAM trace (header {header!r})")
    commands = []
    for line_no, line in enumerate(stream, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 6:
            raise ValueError(f"line {line_no}: expected 6 fields, got {len(parts)}")
        time_ps, name, bank, row, column, request_id = parts
        commands.append(
            ScheduledCommand(
                time_ps=int(time_ps),
                command=CommandType(name),
                bank=int(bank),
                row=int(row),
                column=int(column),
                request_id=int(request_id),
            )
        )
    return commands


@dataclass
class Violation:
    """One JEDEC rule violation found by the replay checker."""

    time_ps: int
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"t={self.time_ps} ps: {self.rule}: {self.detail}"


@dataclass
class _BankReplayState:
    open_row: Optional[int] = None
    act_time: int = -(10**15)
    pre_ready: int = 0
    act_ready: int = 0
    cas_ready: int = 0


class TraceChecker:
    """Replays a command trace and reports timing violations.

    Checked rules: tRCD, tRP, tRAS, tRRD_S/L, tFAW, tCCD_S/L, tWR,
    tRTP, row-open/closed protocol errors, and refresh blackout
    periods.  The checker is deliberately simple and stateful — an
    independent oracle for the event-driven scheduler.
    """

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self.violations: List[Violation] = []
        t = config.timing
        self._banks = [
            _BankReplayState() for _ in range(config.geometry.banks)
        ]
        self._timing = t
        self._burst = config.burst_duration_ps
        self._last_cas: Optional[Tuple[int, int]] = None  # (time, bank)
        self._last_act: Optional[Tuple[int, int]] = None  # (time, bank)
        self._act_history: List[int] = []
        self._bank_groups = config.geometry.bank_groups

    def _flag(self, time_ps: int, rule: str, detail: str) -> None:
        self.violations.append(Violation(time_ps=time_ps, rule=rule, detail=detail))

    def check(self, commands: Iterable[ScheduledCommand]) -> List[Violation]:
        """Replay commands (any stable order; sorted by time first)."""
        t = self._timing
        ordered = sorted(commands, key=lambda c: (c.time_ps,))
        for command in ordered:
            kind = command.command
            now = command.time_ps
            if kind is CommandType.ACT:
                self._check_act(command)
            elif kind is CommandType.PRE:
                self._check_pre(command)
            elif kind in (CommandType.RD, CommandType.WR):
                self._check_cas(command)
            elif kind is CommandType.REF_ALL:
                for bank_state in self._banks:
                    if bank_state.open_row is not None:
                        self._flag(now, "REFab", "refresh with open banks")
                    bank_state.act_ready = max(bank_state.act_ready, now + t.trfc)
            elif kind is CommandType.REF_BANK:
                state = self._banks[command.bank]
                if state.open_row is not None:
                    self._flag(now, "REFpb", f"bank {command.bank} open during refresh")
                state.act_ready = max(state.act_ready, now + t.trfc_pb)
        return self.violations

    def _check_act(self, command: ScheduledCommand) -> None:
        t = self._timing
        now = command.time_ps
        state = self._banks[command.bank]
        if state.open_row is not None:
            self._flag(now, "protocol", f"ACT on open bank {command.bank}")
        if now < state.act_ready:
            self._flag(now, "tRP/tRFC", f"ACT {state.act_ready - now} ps early on bank {command.bank}")
        if self._last_act is not None:
            last_time, last_bank = self._last_act
            same_group = (
                last_bank % self._bank_groups == command.bank % self._bank_groups
            )
            spacing = t.trrd_l if same_group else t.trrd_s
            if now - last_time < spacing:
                self._flag(now, "tRRD", f"ACT only {now - last_time} ps after previous")
        self._act_history.append(now)
        if len(self._act_history) >= 5:
            window = now - self._act_history[-5]
            if window < t.tfaw:
                self._flag(now, "tFAW", f"5th ACT within {window} ps")
        state.open_row = command.row
        state.act_time = now
        state.cas_ready = now + t.trcd
        state.pre_ready = max(state.pre_ready, now + t.tras)
        self._last_act = (now, command.bank)

    def _check_pre(self, command: ScheduledCommand) -> None:
        t = self._timing
        now = command.time_ps
        state = self._banks[command.bank]
        if now < state.pre_ready:
            self._flag(now, "tRAS/tWR/tRTP",
                       f"PRE {state.pre_ready - now} ps early on bank {command.bank}")
        state.open_row = None
        state.act_ready = max(state.act_ready, now + t.trp)

    def _check_cas(self, command: ScheduledCommand) -> None:
        t = self._timing
        now = command.time_ps
        state = self._banks[command.bank]
        if state.open_row is None:
            self._flag(now, "protocol", f"CAS on precharged bank {command.bank}")
        elif state.open_row != command.row:
            self._flag(now, "protocol",
                       f"CAS row {command.row} but open row {state.open_row}")
        if now < state.cas_ready:
            self._flag(now, "tRCD", f"CAS {state.cas_ready - now} ps early")
        if self._last_cas is not None:
            last_time, last_bank = self._last_cas
            same_group = (
                last_bank % self._bank_groups == command.bank % self._bank_groups
            )
            spacing = t.tccd_l if same_group else t.tccd_s
            if now - last_time < spacing:
                self._flag(now, "tCCD", f"CAS only {now - last_time} ps after previous")
        if command.command is CommandType.RD:
            latency, recovery = t.cl, t.trtp
            state.pre_ready = max(state.pre_ready, now + recovery)
        else:
            latency = t.cwl
            state.pre_ready = max(state.pre_ready, now + latency + self._burst + t.twr)
        self._last_cas = (now, command.bank)


def check_phase_commands(config: DramConfig,
                         commands: Iterable[ScheduledCommand]) -> List[Violation]:
    """One-call trace replay: returns the list of violations (empty = ok)."""
    return TraceChecker(config).check(commands)
