"""DRAM addresses and linear-address bit-field decoders.

Two address notions coexist:

* :class:`DramAddress` — the physical triple the controller needs:
  flat bank index, row, burst-granular column.
* *linear burst index* — position of a burst in the flat byte address
  space, used by the row-major baseline mapping.

The decoders implement the DRAMSys-style configurable bit-field split
of a linear address into (bank group, bank, row, column) fields.  A
scheme is written as a string of field tokens from most- to
least-significant, e.g. ``"Ro Ba Co Bg"``:

``Ro`` row bits, ``Ba`` bank-in-group bits, ``Bg`` bank-group bits,
``Co`` column (burst index within the page) bits.

The default scheme used by the row-major baseline in this project is
``"Ro Ba Co Bg"`` — bank-group bits lowest so that a sequential stream
alternates bank groups on every burst (tCCD_S instead of tCCD_L), then
column bits, then bank-in-group, then row.  This mirrors the bank-group
interleaving default of production controllers and of DRAMSys; without
it the baseline's *write* phase would already collapse on DDR4/DDR5,
which is neither what the paper reports nor how real controllers
behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Tuple

from repro.dram.geometry import Geometry


@dataclass(frozen=True, order=True)
class DramAddress:
    """Physical (bank, row, column) triple at burst granularity.

    ``bank`` is the flat bank index whose *low* bits select the bank
    group, per the convention in Section II of the paper; ``column`` is
    the index of the burst within the row (not the JEDEC column address,
    which additionally carries the burst-internal offset).
    """

    bank: int
    row: int
    column: int

    def validate(self, geometry: Geometry) -> "DramAddress":
        """Raise :class:`ValueError` unless the address fits the geometry."""
        if not 0 <= self.bank < geometry.banks:
            raise ValueError(f"bank {self.bank} out of range [0, {geometry.banks})")
        if not 0 <= self.row < geometry.rows:
            raise ValueError(f"row {self.row} out of range [0, {geometry.rows})")
        if not 0 <= self.column < geometry.bursts_per_row:
            raise ValueError(
                f"column {self.column} out of range [0, {geometry.bursts_per_row})"
            )
        return self


#: Field tokens accepted in decoder scheme strings.
_FIELD_TOKENS = ("Ro", "Ba", "Bg", "Co")

#: Scheme used by the row-major baseline: bank-group interleaved low.
DEFAULT_SCHEME = "Ro Ba Co Bg"

#: Classic SRAM-like scheme with no bank interleaving below the page.
PAGE_CONTIGUOUS_SCHEME = "Ro Ba Bg Co"

#: Bank-interleaved-low scheme (cache-line interleaving across all banks).
BANK_LOW_SCHEME = "Ro Co Ba Bg"


class LinearDecoder:
    """Splits a linear burst index into a :class:`DramAddress`.

    Args:
        geometry: the channel organization that defines field widths.
        scheme: field order from most- to least-significant bit.  Every
            one of ``Ro``/``Ba``/``Bg``/``Co`` must appear exactly once;
            ``Bg`` is accepted (and ignored) for geometries without bank
            groups so one scheme string works across standards.
    """

    def __init__(self, geometry: Geometry,
                 scheme: str = DEFAULT_SCHEME) -> None:
        self.geometry = geometry
        self.scheme = scheme
        tokens = scheme.split()
        if sorted(tokens) != sorted(_FIELD_TOKENS):
            raise ValueError(
                f"scheme must contain each of {_FIELD_TOKENS} exactly once, got {scheme!r}"
            )
        widths = {
            "Ro": geometry.row_bits,
            "Ba": geometry.bank_bits - geometry.bank_group_bits,
            "Bg": geometry.bank_group_bits,
            "Co": geometry.column_burst_bits,
        }
        # Precompute (token, shift, mask) from LSB to MSB.
        self._fields: List[Tuple[str, int, int]] = []
        shift = 0
        for token in reversed(tokens):
            width = widths[token]
            self._fields.append((token, shift, (1 << width) - 1))
            shift += width
        self._total_bits = shift

    @property
    def total_bursts(self) -> int:
        """Number of distinct burst indices the decoder covers."""
        return 1 << self._total_bits

    def decode(self, burst_index: int) -> DramAddress:
        """Decode a linear burst index into a physical address."""
        if not 0 <= burst_index < self.total_bursts:
            raise ValueError(
                f"burst index {burst_index} out of range [0, {self.total_bursts})"
            )
        values = {"Ro": 0, "Ba": 0, "Bg": 0, "Co": 0}
        for token, shift, mask in self._fields:
            values[token] = (burst_index >> shift) & mask
        bank = values["Ba"] * self.geometry.bank_groups + values["Bg"]
        return DramAddress(bank=bank, row=values["Ro"], column=values["Co"])

    def encode(self, address: DramAddress) -> int:
        """Inverse of :meth:`decode`."""
        address.validate(self.geometry)
        values = {
            "Ro": address.row,
            "Ba": address.bank // self.geometry.bank_groups,
            "Bg": address.bank % self.geometry.bank_groups,
            "Co": address.column,
        }
        burst_index = 0
        for token, shift, _mask in self._fields:
            burst_index |= values[token] << shift
        return burst_index

    def decode_many(self, burst_indices: Iterable[int]) -> List[DramAddress]:
        """Decode a sequence of burst indices."""
        return [self.decode(index) for index in burst_indices]

    def decode_arrays(self, burst_indices: Any) -> Tuple[Any, Any, Any]:
        """Vectorized :meth:`decode` over an array of burst indices.

        Args:
            burst_indices: integer array (or sequence) of linear burst
                indices.

        Returns:
            ``(bank, row, column)`` — three ``int64`` arrays, the
        columnar form consumed by the controller's chunked intake.

        Raises:
            ValueError: if any index is outside the channel.
        """
        import numpy as np

        indices = np.asarray(burst_indices, dtype=np.int64)
        if indices.size and (
            int(indices.min()) < 0 or int(indices.max()) >= self.total_bursts
        ):
            raise ValueError(
                f"burst indices out of range [0, {self.total_bursts})"
            )
        values: Dict[str, Any] = {}
        for token, shift, mask in self._fields:
            values[token] = (indices >> shift) & mask
        bank = values["Ba"] * self.geometry.bank_groups + values["Bg"]
        return bank, values["Ro"], values["Co"]
