"""Batch-advance scheduling kernel: the fast homogeneous arbiter.

This module is the raw-speed counterpart of
:class:`repro.dram.engine.SchedulingEngine`.  Both engines are
event-driven (no clock ticking; issue slots are computed directly and
quantized to the command clock), but the general engine pays a
per-command price that has nothing to do with the schedule itself:
every pop maintains a sorted ``ready_order`` list (``insort`` +
positional delete) and every arbitration walks the ready heads
oldest-first.  On the Table I phase workload those two account for most
of the wall clock.

:class:`KernelEngine` removes both costs for homogeneous phases while
producing **bit-identical** schedules:

* **columnar intake** — the whole request stream is materialized up
  front into flat NumPy int64 columns, validated and partitioned per
  bank in bulk (stable argsort + bincount prefix sums), so the
  scheduling loop reads flat timestamp/queue tables and never builds a
  Python tuple per request;
* **timestamp table** — per-bank next-ready timestamps
  (``cas_allowed``/``pre_allowed``/``act_allowed``/``act_time``) live
  in the same flat table the general engine keeps, shared by reference
  so the two engines can be swapped mid-controller with warm bank
  state intact;
* **min-reduction arbitration** — the sorted ready list and the
  oldest-first walk are replaced by one unsorted pass over the bank
  columns computing the walk's outcome directly: the oldest head whose
  earliest slot achieves the global bound
  (``max(last_cas + tCCD_S, bus_free - latency)``, quantized) wins at
  the bound, otherwise the head with the strictly earliest slot (ties
  to the oldest) wins at its own slot.  This is exactly the general
  engine's decision rule, reached without maintaining any ordered
  structure per pop;
* **compiled segment loop** — when a C toolchain is available
  (:mod:`repro.dram._kernelc`), the eval / commit / arbitrate / pop /
  admit cycle runs as a single compiled loop over the same int64
  tables, returning to Python only at refresh boundaries, so the
  Python :class:`~repro.dram.refresh.RefreshScheduler` stays the one
  source of refresh truth.  Without a toolchain the pure-Python port
  of the same loop runs instead; both paths are differential-tested.

Eager row management is byte-for-byte the general engine's: misses and
empties park in the same deferred-activation structure with fixed
``(act_ready, bank, t_pre, is_empty, row)`` entries, commit in bank
order once the bus frontier reaches them, and charge tRRD_S/L and the
tFAW ring identically.  Refresh, intake windowing (``queue_depth`` /
``per_bank_depth``) and command recording are likewise ports, so
``PhaseStats``, ``EnergyTally``, ``command_counts`` and recorded
command lists all match the general engine exactly — proven by the
differential batteries in ``tests/dram/test_kernel_differential.py``
across random scenarios and the full Table I grid.

**Mixed sources** (per-request directions, turnaround rules) run
through the shared general engine: :meth:`KernelEngine.run` delegates,
so results are identical by construction and the kernel selection flag
is safe for every workload shape.

One intake difference is deliberate: the general engine validates bank
indices lazily, batch by batch, so an invalid request deep in a stream
raises only after the earlier requests were scheduled.  The kernel
validates the whole stream up front (same exception, same message) and
raises before mutating any state.
"""

from __future__ import annotations

import heapq
from operator import itemgetter
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

import numpy as np

from repro.dram import _kernelc
from repro.dram.bank import BankSnapshot
from repro.dram.commands import CommandType, ScheduledCommand
from repro.dram.engine import (OP_READ, OP_WRITE, EngineResult,
                               SchedulingEngine, WorkloadSource,
                               _PartitionedSource)
from repro.dram.policy import (
    POLICY_BANK_PARTITION,
    POLICY_CLOSED_PAGE,
    POLICY_FRFCFS_CAP,
    partition_banks,
)
from repro.dram.presets import REFRESH_ALL_BANK, DramConfig
from repro.dram.stats import EnergyTally, PhaseStats

if TYPE_CHECKING:
    from repro.dram.controller import ControllerConfig

_FAR_PAST = -(10**15)
_FAR_FUTURE = 10**18

#: Heap-entry sort key for committing deferred activations in bank order.
_ENTRY_BANK = itemgetter(1)

#: Disciplines the kernel does not implement natively: the auto-close
#: mechanism invalidates the kernel's precomputed row-hit table, so
#: these delegate to the general engine with
#: :attr:`~repro.dram.stats.PhaseStats.kernel_fallback` set.
_FALLBACK_DISCIPLINES = frozenset({POLICY_CLOSED_PAGE, POLICY_FRFCFS_CAP})


class KernelEngine:
    """Drop-in fast scheduler sharing the general engine's bank state.

    Exposes the same surface as
    :class:`~repro.dram.engine.SchedulingEngine` (``run`` /
    ``bank_snapshot`` and warm per-bank state across runs) and wraps a
    general engine internally: the per-bank timestamp table and the
    refresh scheduler are shared **by reference**, so a controller can
    route one phase through the kernel and the next through the general
    engine and see exactly the warm rows either would have left behind.

    Args:
        config: DRAM configuration (geometry + timing + refresh mode).
        policy: controller policy
            (:class:`~repro.dram.controller.ControllerConfig`).
        general: an existing general engine to share state with; a
            fresh one is created when omitted.
    """

    def __init__(self, config: DramConfig, policy: "ControllerConfig",
                 general: Optional[SchedulingEngine] = None,
                 native: Optional[bool] = None) -> None:
        self.config = config
        self.policy = policy
        if native is None:
            native = _kernelc.available() and config.geometry.banks <= 64
        elif native and not _kernelc.available():
            raise RuntimeError(
                "native kernel backend requested but unavailable "
                "(no C toolchain, or REPRO_KERNEL_NATIVE=0)")
        self._native = native
        self._general = general or SchedulingEngine(config, policy)
        # Shared by reference: both engines mutate the same table.
        self._open_row = self._general._open_row
        self._act_time = self._general._act_time
        self._cas_allowed = self._general._cas_allowed
        self._pre_allowed = self._general._pre_allowed
        self._act_allowed = self._general._act_allowed
        self._refresh = self._general._refresh
        self._banks = self._general._banks
        self._bank_groups = self._general._bank_groups

    def bank_snapshot(self, bank: int) -> BankSnapshot:
        """Readable state of one bank (testing/debugging)."""
        return self._general.bank_snapshot(bank)

    def _materialize(
        self, source: WorkloadSource
    ) -> Tuple["np.ndarray[Any, Any]", "np.ndarray[Any, Any]",
               "np.ndarray[Any, Any]"]:
        """Drain ``source`` into flat int64 columns, validating shape.

        Batch boundaries are invisible to scheduling, so concatenating
        them up front is observationally equivalent to the general
        engine's incremental loads for any valid stream.
        """
        banks_parts: List["np.ndarray[Any, Any]"] = []
        rows_parts: List["np.ndarray[Any, Any]"] = []
        cols_parts: List["np.ndarray[Any, Any]"] = []
        for banks_col, rows_col, cols_col, _dirs in source.batches():
            m = len(banks_col)
            if not m:
                continue
            if len(rows_col) != m or len(cols_col) != m:
                raise ValueError(
                    f"request chunk columns disagree in length: "
                    f"{m} banks, {len(rows_col)} rows, {len(cols_col)} columns"
                )
            banks_parts.append(np.asarray(banks_col, dtype=np.int64))
            rows_parts.append(np.asarray(rows_col, dtype=np.int64))
            cols_parts.append(np.asarray(cols_col, dtype=np.int64))
        if not banks_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, empty
        if len(banks_parts) == 1:
            return banks_parts[0], rows_parts[0], cols_parts[0]
        return (np.concatenate(banks_parts), np.concatenate(rows_parts),
                np.concatenate(cols_parts))

    def run(self, source: WorkloadSource, op: str = OP_READ) -> EngineResult:
        """Schedule one workload source to completion.

        Same contract as
        :meth:`repro.dram.engine.SchedulingEngine.run`; mixed sources are
        delegated to the shared general engine (the turnaround rule set
        has no fast path), homogeneous sources take the kernel loop.

        Policy dispatch (see :mod:`repro.dram.policy`): open-page runs
        the kernel loop unchanged; bank partitioning is an intake remap
        (the kernel's row-hit precompute stays valid on the remapped
        stream) and also runs natively; closed-page and FR-FCFS-cap
        delegate to the general engine — bit-identical results, with
        the fallback visible as ``stats.kernel_fallback``.
        """
        if op not in (OP_READ, OP_WRITE):
            raise ValueError(f"op must be {OP_READ!r} or {OP_WRITE!r}, got {op!r}")
        if source.mixed:
            return self._general.run(source, op)
        discipline = self.policy.discipline
        if discipline in _FALLBACK_DISCIPLINES:
            result = self._general.run(source, op)
            result.stats.kernel_fallback = True
            return result
        if discipline == POLICY_BANK_PARTITION:
            partition_banks(self._banks)  # even bank count required
            source = _PartitionedSource(source, self._banks, op == OP_READ)
        if self._native:
            return self._run_native(source, op)
        return self._run_python(source, op)

    def _run_python(self, source: WorkloadSource, op: str) -> EngineResult:
        """The kernel scheduling loop (homogeneous phases).

        A statement-for-statement port of the general engine's loop with
        the intake incrementalism and the sorted ready list removed; see
        the module docstring for the argument that every decision is
        identical.
        """
        config = self.config
        policy = self.policy
        timing = config.timing
        burst = config.burst_duration_ps
        tck = timing.tck if burst % timing.tck == 0 else 1
        quant = tck > 1
        trp = timing.trp
        trcd = timing.trcd
        tras = timing.tras
        trrd_s = timing.trrd_s
        trrd_l = timing.trrd_l
        tfaw = timing.tfaw
        tccd_s = timing.tccd_s
        tccd_l = timing.tccd_l
        twr = timing.twr
        trtp = timing.trtp
        is_read = op == OP_READ
        latency = timing.cl if is_read else timing.cwl
        n_banks = self._banks
        bank_groups = self._bank_groups

        open_row = self._open_row
        act_time = self._act_time
        cas_allowed = self._cas_allowed
        pre_allowed = self._pre_allowed
        act_allowed = self._act_allowed

        queue_depth = policy.queue_depth
        per_bank_depth = policy.per_bank_depth
        record = policy.record_commands
        commands: List[ScheduledCommand] = []
        refresh = self._refresh
        all_bank_refresh = config.refresh_mode == REFRESH_ALL_BANK

        # ---- columnar intake: materialize, validate, partition ---------
        banks_arr, rows_arr, cols_arr = self._materialize(source)
        n = len(banks_arr)
        if n:
            bad = (banks_arr < 0) | (banks_arr >= n_banks)
            if bad.any():
                k = int(np.argmax(bad))
                raise ValueError(
                    f"request #{k} (bank={int(banks_arr[k])}, "
                    f"row={int(rows_arr[k])}, column={int(cols_arr[k])}): "
                    f"bank out of range [0, {n_banks})"
                )
        banks_l: List[int] = banks_arr.tolist()
        rows_l: List[int] = rows_arr.tolist()
        cols_l: List[int] = cols_arr.tolist()
        # Per-bank queues: each bank's ascending stream positions; the
        # FIFO is the window between head[b] and adm[b] cursors.
        seqs_q: List[List[int]] = [[] for _ in range(n_banks)]
        if n:
            order = np.argsort(banks_arr, kind="stable")
            counts = np.bincount(banks_arr, minlength=n_banks)
            starts = np.empty(n_banks, dtype=np.int64)
            starts[0] = 0
            np.cumsum(counts[:-1], out=starts[1:])
            for b in np.flatnonzero(counts).tolist():
                s = int(starts[b])
                seqs_q[b] = order[s:s + int(counts[b])].tolist()
            # Page-hit classification: request row equals the previous
            # same-bank row (exactly what the pop path compares, since
            # a CAS issues only on its own open row).
            banks_sorted = banks_arr[order]
            rows_sorted = rows_arr[order]
            hit_sorted = np.zeros(n, dtype=bool)
            np.logical_and(banks_sorted[1:] == banks_sorted[:-1],
                           rows_sorted[1:] == rows_sorted[:-1],
                           out=hit_sorted[1:])
            hit_arr = np.empty(n, dtype=bool)
            hit_arr[order] = hit_sorted
            is_hit: List[bool] = hit_arr.tolist()
        else:
            is_hit = []

        head = [0] * n_banks
        adm = [0] * n_banks
        pos = 0                 # next stream position to admit
        queued = 0

        # Bank states: 0 = no admitted requests, 1 = pending (head needs
        # a row cycle), 2 = ready (head's row is open).  `ready_count`
        # replaces the general engine's sorted ready list; the oldest
        # ready head is found by the min-unpopped shortcut (or an
        # O(banks) scan when the minimum unpopped request is not ready).
        bstate = [0] * n_banks
        ready_count = 0
        # Minimum unpopped stream position, maintained with a bitmap in
        # amortized O(1) per pop (`popped[n]` is a stop sentinel).  When
        # that position's bank head is ready it *is* the oldest ready
        # head, found with two array reads and no sorted structure.
        popped = bytearray(n + 1)
        nxt = 0

        bg_of = [b % bank_groups for b in range(n_banks)]
        last_cas = _FAR_PAST
        last_cas_bg = [_FAR_PAST] * bank_groups
        last_act = _FAR_PAST
        last_act_bg = -1
        faw_ring = [_FAR_PAST] * 4
        faw_idx = 0
        bus_free = 0
        last_data_end = 0

        fresh: List[int] = []
        defer_heap: List[Tuple[int, int, int, bool, int]] = []
        rescan_all = False
        heappush = heapq.heappush
        heappop = heapq.heappop

        stats = PhaseStats()
        n_requests = 0
        hits = misses = empties = acts = pres = refs = 0

        def intake() -> None:
            """Admit requests until the window is full or a bank blocks."""
            nonlocal pos, queued
            while queued < queue_depth and pos < n:
                b = banks_l[pos]
                if adm[b] - head[b] >= per_bank_depth:
                    return
                if adm[b] == head[b]:
                    bstate[b] = 1
                    fresh.append(b)
                adm[b] += 1
                pos += 1
                queued += 1

        intake()
        deadline = refresh.next_deadline_ps
        commit_buf: List[Tuple[int, int, int, bool, int]] = []

        while queued:
            # ---- refresh (port of the general engine) ------------------
            while deadline is not None and last_cas >= deadline:
                event = refresh.due(last_cas)
                if event is None:
                    break
                ref_time = event.deadline_ps
                for b in event.banks:
                    if open_row[b] is not None:
                        t_pre = pre_allowed[b]
                        if quant:
                            remainder = t_pre % tck
                            if remainder:
                                t_pre += tck - remainder
                        if record:
                            commands.append(
                                ScheduledCommand(t_pre, CommandType.PRE, bank=b))
                        pres += 1
                        open_row[b] = None
                        bank_free_at = t_pre + trp
                    else:
                        bank_free_at = act_allowed[b]
                    if bank_free_at > ref_time:
                        ref_time = bank_free_at
                if quant:
                    remainder = ref_time % tck
                    if remainder:
                        ref_time += tck - remainder
                for b in event.banks:
                    open_row[b] = None
                    if bstate[b] == 2:
                        bstate[b] = 1
                        ready_count -= 1
                    act_allowed[b] = ref_time + event.duration_ps
                rescan_all = True
                refs += 1
                if record:
                    kind = (CommandType.REF_ALL if all_bank_refresh
                            else CommandType.REF_BANK)
                    commands.append(
                        ScheduledCommand(
                            ref_time, kind,
                            bank=-1 if all_bank_refresh else event.banks[0]))
                deadline = refresh.next_deadline_ps

            # ---- eager per-bank row management (port) ------------------
            if rescan_all:
                rescan_all = False
                del fresh[:]
                del defer_heap[:]
                for b in range(n_banks):
                    if bstate[b] != 1:
                        continue
                    row = rows_l[seqs_q[b][head[b]]]
                    current = open_row[b]
                    if current == row:
                        bstate[b] = 2
                        ready_count += 1
                        hits += 1
                    elif current is None:
                        defer_heap.append((act_allowed[b], b, -1, True, row))
                    else:
                        t_pre = pre_allowed[b]
                        if quant:
                            remainder = t_pre % tck
                            if remainder:
                                t_pre += tck - remainder
                        defer_heap.append((t_pre + trp, b, t_pre, False, row))
                heapq.heapify(defer_heap)
            elif fresh:
                for b in sorted(fresh) if len(fresh) > 1 else fresh:
                    row = rows_l[seqs_q[b][head[b]]]
                    current = open_row[b]
                    if current == row:
                        bstate[b] = 2
                        ready_count += 1
                        hits += 1
                    elif current is None:
                        heappush(defer_heap, (act_allowed[b], b, -1, True, row))
                    else:
                        t_pre = pre_allowed[b]
                        if quant:
                            remainder = t_pre % tck
                            if remainder:
                                t_pre += tck - remainder
                        heappush(defer_heap, (t_pre + trp, b, t_pre, False, row))
                del fresh[:]

            # ---- deferred-activation commits (port) --------------------
            if defer_heap:
                committable = None
                if defer_heap[0][0] <= bus_free:
                    entry = heappop(defer_heap)
                    if defer_heap and defer_heap[0][0] <= bus_free:
                        del commit_buf[:]
                        commit_buf.append(entry)
                        commit_buf.append(heappop(defer_heap))
                        while defer_heap and defer_heap[0][0] <= bus_free:
                            commit_buf.append(heappop(defer_heap))
                        commit_buf.sort(key=_ENTRY_BANK)
                        committable = commit_buf
                    else:
                        committable = (entry,)
                elif not ready_count:
                    committable = (heappop(defer_heap),)
                if committable:
                    for act_ready, b, t_pre, is_empty, row in committable:
                        if is_empty:
                            empties += 1
                        else:
                            misses += 1
                            pres += 1
                            if record:
                                commands.append(
                                    ScheduledCommand(t_pre, CommandType.PRE,
                                                     bank=b))
                        bg = bg_of[b]
                        t_act = act_ready
                        if last_act != _FAR_PAST:
                            spacing = trrd_l if bg == last_act_bg else trrd_s
                            t = last_act + spacing
                            if t > t_act:
                                t_act = t
                        t = faw_ring[faw_idx] + tfaw
                        if t > t_act:
                            t_act = t
                        if quant:
                            remainder = t_act % tck
                            if remainder:
                                t_act += tck - remainder
                        faw_ring[faw_idx] = t_act
                        faw_idx = (faw_idx + 1) & 3
                        last_act = t_act
                        last_act_bg = bg
                        acts += 1
                        if record:
                            commands.append(
                                ScheduledCommand(t_act, CommandType.ACT,
                                                 bank=b, row=row))
                        open_row[b] = row
                        act_time[b] = t_act
                        cas_allowed[b] = t_act + trcd
                        pre_allowed[b] = t_act + tras
                        bstate[b] = 2
                        ready_count += 1

            # ---- CAS arbitration: min-unpopped shortcut ----------------
            bound = last_cas + tccd_s
            t = bus_free - latency
            if t > bound:
                bound = t
            if quant:
                remainder = bound % tck
                if remainder:
                    bound += tck - remainder
            # Fast case: the minimum unpopped request is a ready head and
            # achieves the bound — then it is the oldest ready head and
            # the general engine's oldest-first walk would stop on it
            # immediately, so it wins at the bound.
            chosen = -1
            b = banks_l[nxt]
            if bstate[b] == 2 and seqs_q[b][head[b]] == nxt:
                pb = cas_allowed[b]
                t = last_cas_bg[bg_of[b]] + tccd_l
                if t > pb:
                    pb = t
                if pb <= bound:
                    chosen = b
                    t_cas = bound
            if chosen < 0:
                # Exact fallback: one unsorted pass over the ready banks
                # computes the walk's outcome — the oldest head that
                # achieves the bound, else the earliest-slot head with
                # ties to the oldest (min-reductions over the per-bank
                # timestamp table).
                best_seq = _FAR_FUTURE
                best_pb = _FAR_FUTURE
                best_pb_seq = _FAR_FUTURE
                best_pb_bank = -1
                for b in range(n_banks):
                    if bstate[b] != 2:
                        continue
                    sq = seqs_q[b][head[b]]
                    pb = cas_allowed[b]
                    t = last_cas_bg[bg_of[b]] + tccd_l
                    if t > pb:
                        pb = t
                    if pb <= bound:
                        if sq < best_seq:
                            best_seq = sq
                            chosen = b
                    elif pb < best_pb or (pb == best_pb and sq < best_pb_seq):
                        best_pb = pb
                        best_pb_seq = sq
                        best_pb_bank = b
                if chosen >= 0:
                    t_cas = bound
                elif best_pb_bank >= 0:
                    chosen = best_pb_bank
                    t_cas = best_pb
                    if quant:
                        remainder = t_cas % tck
                        if remainder:
                            t_cas += tck - remainder
                else:
                    raise RuntimeError(
                        "scheduler deadlock: no prepared bank head")

            # ---- pop, timeline update, intake (port) -------------------
            hlist = seqs_q[chosen]
            h = head[chosen]
            p_seq = hlist[h]
            h += 1
            head[chosen] = h
            queued -= 1
            if adm[chosen] == h:
                bstate[chosen] = 0
                ready_count -= 1
            elif is_hit[hlist[h]]:
                hits += 1
            else:
                bstate[chosen] = 1
                ready_count -= 1
                fresh.append(chosen)
            popped[p_seq] = 1
            if p_seq == nxt:
                nxt += 1
                while popped[nxt]:
                    nxt += 1

            last_cas = t_cas
            last_cas_bg[bg_of[chosen]] = t_cas
            data_end = t_cas + latency + burst
            bus_free = data_end
            last_data_end = data_end
            if is_read:
                t = t_cas + trtp
            else:
                t = data_end + twr
            if t > pre_allowed[chosen]:
                pre_allowed[chosen] = t
            if record:
                commands.append(
                    ScheduledCommand(
                        t_cas, CommandType.RD if is_read else CommandType.WR,
                        bank=chosen, row=rows_l[p_seq], column=cols_l[p_seq],
                        request_id=n_requests))
            n_requests += 1
            # Inline single-slot admission (port of the general engine).
            if pos < n and queued == queue_depth - 1:
                b = banks_l[pos]
                if adm[b] - head[b] < per_bank_depth:
                    if adm[b] == head[b]:
                        bstate[b] = 1
                        fresh.append(b)
                    adm[b] += 1
                    pos += 1
                    queued += 1
            else:
                intake()

        stats.requests = n_requests
        stats.page_hits = hits
        stats.page_misses = misses
        stats.page_empties = empties
        stats.activates = acts
        stats.precharges = pres
        stats.refreshes = refs
        stats.data_time_ps = n_requests * burst
        stats.makespan_ps = last_data_end
        reads = n_requests if is_read else 0
        writes = 0 if is_read else n_requests
        ref_key = (CommandType.REF_ALL if all_bank_refresh
                   else CommandType.REF_BANK).value
        stats.command_counts = {
            CommandType.ACT.value: acts,
            CommandType.PRE.value: pres,
            (CommandType.RD if is_read else CommandType.WR).value: n_requests,
            ref_key: refs,
        }
        stats.energy_tally = EnergyTally(act_pre=acts, rd=reads, wr=writes,
                                         ref=refs, makespan_ps=last_data_end)
        return EngineResult(stats=stats, commands=commands, reads=reads,
                            writes=writes, turnarounds=0)

    def _run_native(self, source: WorkloadSource, op: str) -> EngineResult:
        """Homogeneous run through the compiled segment loop.

        The C side owns the eval / commit / arbitrate / pop / admit
        cycle over flat int64 state tables and returns control at
        refresh boundaries; this wrapper applies refresh events (the
        exact general-engine block, on the same arrays) and re-enters.
        State is copied from the shared per-bank lists on entry and
        written back on exit, so warm-state swapping with the general
        engine behaves identically to the pure-Python loop.
        """
        loaded = _kernelc.load()
        assert loaded is not None  # guarded by self._native
        ffi, lib = loaded
        config = self.config
        policy = self.policy
        timing = config.timing
        burst = config.burst_duration_ps
        tck = timing.tck if burst % timing.tck == 0 else 1
        quant = tck > 1
        is_read = op == OP_READ
        latency = timing.cl if is_read else timing.cwl
        n_banks = self._banks
        trp = timing.trp
        record = policy.record_commands
        refresh = self._refresh
        all_bank_refresh = config.refresh_mode == REFRESH_ALL_BANK

        banks_arr, rows_arr, cols_arr = self._materialize(source)
        n = len(banks_arr)
        if n:
            bad = (banks_arr < 0) | (banks_arr >= n_banks)
            if bad.any():
                k = int(np.argmax(bad))
                raise ValueError(
                    f"request #{k} (bank={int(banks_arr[k])}, "
                    f"row={int(rows_arr[k])}, column={int(cols_arr[k])}): "
                    f"bank out of range [0, {n_banks})"
                )
        qseqs = np.argsort(banks_arr, kind="stable").astype(np.int64)
        counts = np.bincount(banks_arr, minlength=n_banks)
        qstart = np.zeros(n_banks, dtype=np.int64)
        np.cumsum(counts[:-1], out=qstart[1:])

        head = np.zeros(n_banks, dtype=np.int64)
        adm = np.zeros(n_banks, dtype=np.int64)
        bstate = np.zeros(n_banks, dtype=np.int64)
        open_arr = np.array(
            [-1 if r is None else r for r in self._open_row], dtype=np.int64)
        act_time = np.array(self._act_time, dtype=np.int64)
        cas_allowed = np.array(self._cas_allowed, dtype=np.int64)
        pre_allowed = np.array(self._pre_allowed, dtype=np.int64)
        act_allowed = np.array(self._act_allowed, dtype=np.int64)
        bg_of = np.array([b % self._bank_groups for b in range(n_banks)],
                         dtype=np.int64)
        last_cas_bg = np.full(self._bank_groups, _FAR_PAST, dtype=np.int64)
        faw_ring = np.full(4, _FAR_PAST, dtype=np.int64)
        fresh = np.zeros(2 * n_banks + 4, dtype=np.int64)
        heap = np.zeros((n_banks + 2) * 5, dtype=np.int64)
        rec_cap = (3 * n + 4096) if record else 1
        rec = np.zeros(rec_cap * 6, dtype=np.int64)

        sc = np.zeros(_kernelc.N_SCALARS, dtype=np.int64)
        sc[_kernelc.S_LAST_CAS] = _FAR_PAST
        sc[_kernelc.S_LAST_ACT] = _FAR_PAST
        sc[_kernelc.S_LAST_ACT_BG] = -1

        cfg = np.zeros(_kernelc.N_CFG, dtype=np.int64)
        cfg[_kernelc.C_N_BANKS] = n_banks
        cfg[_kernelc.C_BANK_GROUPS] = self._bank_groups
        cfg[_kernelc.C_TCK] = tck
        cfg[_kernelc.C_QUANT] = 1 if quant else 0
        cfg[_kernelc.C_TRP] = trp
        cfg[_kernelc.C_TRCD] = timing.trcd
        cfg[_kernelc.C_TRAS] = timing.tras
        cfg[_kernelc.C_TRRD_S] = timing.trrd_s
        cfg[_kernelc.C_TRRD_L] = timing.trrd_l
        cfg[_kernelc.C_TFAW] = timing.tfaw
        cfg[_kernelc.C_TCCD_S] = timing.tccd_s
        cfg[_kernelc.C_TCCD_L] = timing.tccd_l
        cfg[_kernelc.C_TWR] = timing.twr
        cfg[_kernelc.C_TRTP] = timing.trtp
        cfg[_kernelc.C_IS_READ] = 1 if is_read else 0
        cfg[_kernelc.C_LATENCY] = latency
        cfg[_kernelc.C_BURST] = burst
        cfg[_kernelc.C_QUEUE_DEPTH] = policy.queue_depth
        cfg[_kernelc.C_PER_BANK_DEPTH] = policy.per_bank_depth
        cfg[_kernelc.C_RECORD] = 1 if record else 0
        cfg[_kernelc.C_N] = n
        cfg[_kernelc.C_REC_CAP] = rec_cap

        # Initial intake (the general engine's intake(), on the arrays).
        banks_head: List[int] = banks_arr[
            :min(n, policy.queue_depth * 2)].tolist()
        pos = queued = 0
        fresh_count = 0
        while queued < policy.queue_depth and pos < n:
            b = banks_head[pos]
            if int(adm[b] - head[b]) >= policy.per_bank_depth:
                break
            if adm[b] == head[b]:
                bstate[b] = 1
                fresh[fresh_count] = b
                fresh_count += 1
            adm[b] += 1
            pos += 1
            queued += 1
        sc[_kernelc.S_POS] = pos
        sc[_kernelc.S_QUEUED] = queued
        sc[_kernelc.S_FRESH_COUNT] = fresh_count

        def ptr(a: "np.ndarray[Any, Any]") -> Any:
            return ffi.cast("int64_t *", ffi.from_buffer(a))

        args = [ptr(cfg), ptr(sc), ptr(banks_arr), ptr(rows_arr),
                ptr(cols_arr), ptr(qseqs), ptr(qstart), ptr(head),
                ptr(adm), ptr(bstate), ptr(open_arr), ptr(act_time),
                ptr(cas_allowed), ptr(pre_allowed), ptr(act_allowed),
                ptr(bg_of), ptr(last_cas_bg), ptr(faw_ring), ptr(fresh),
                ptr(heap), ptr(rec)]

        refs_total = 0
        deadline = refresh.next_deadline_ps
        # The C side owns termination (it returns EXIT_DONE once the
        # queues drain); this loop only services its exit reasons.
        while queued:
            sc[_kernelc.S_HAVE_DEADLINE] = 0 if deadline is None else 1
            sc[_kernelc.S_DEADLINE] = 0 if deadline is None else deadline
            reason = lib.run_segment(*args)
            if reason == _kernelc.EXIT_DONE:
                break
            if reason == _kernelc.EXIT_DEADLOCK:
                raise RuntimeError("scheduler deadlock: no prepared bank head")
            if reason == _kernelc.EXIT_RECORD_FULL:
                grown = np.zeros((rec_cap + n) * 6, dtype=np.int64)
                grown[:rec_cap * 6] = rec
                rec = grown
                rec_cap += n
                cfg[_kernelc.C_REC_CAP] = rec_cap
                args[-1] = ptr(rec)
                continue
            # ---- refresh boundary: the general engine's block, on the
            # shared arrays (the scheduler object advances its own
            # deadline state, exactly as in the Python loops) ----------
            last_cas = int(sc[_kernelc.S_LAST_CAS])
            rec_count = int(sc[_kernelc.S_REC_COUNT])
            pres = int(sc[_kernelc.S_PRES])
            while deadline is not None and last_cas >= deadline:
                event = refresh.due(last_cas)
                if event is None:
                    break
                if record and rec_cap - rec_count < n_banks + 2:
                    grown = np.zeros((rec_cap + n) * 6, dtype=np.int64)
                    grown[:rec_cap * 6] = rec
                    rec = grown
                    rec_cap += n
                    cfg[_kernelc.C_REC_CAP] = rec_cap
                    args[-1] = ptr(rec)
                ref_time = event.deadline_ps
                for b in event.banks:
                    if open_arr[b] >= 0:
                        t_pre = int(pre_allowed[b])
                        if quant:
                            remainder = t_pre % tck
                            if remainder:
                                t_pre += tck - remainder
                        if record:
                            rec[rec_count * 6:rec_count * 6 + 6] = (
                                t_pre, _kernelc.REC_PRE, b, -1, -1, -1)
                            rec_count += 1
                        pres += 1
                        open_arr[b] = -1
                        bank_free_at = t_pre + trp
                    else:
                        bank_free_at = int(act_allowed[b])
                    if bank_free_at > ref_time:
                        ref_time = bank_free_at
                if quant:
                    remainder = ref_time % tck
                    if remainder:
                        ref_time += tck - remainder
                for b in event.banks:
                    open_arr[b] = -1
                    if bstate[b] == 2:
                        bstate[b] = 1
                        sc[_kernelc.S_READY_COUNT] -= 1
                    act_allowed[b] = ref_time + event.duration_ps
                sc[_kernelc.S_RESCAN_ALL] = 1
                refs_total += 1
                if record:
                    rec[rec_count * 6:rec_count * 6 + 6] = (
                        ref_time, _kernelc.REC_REF,
                        -1 if all_bank_refresh else event.banks[0],
                        -1, -1, -1)
                    rec_count += 1
                deadline = refresh.next_deadline_ps
            sc[_kernelc.S_PRES] = pres
            sc[_kernelc.S_REC_COUNT] = rec_count
            if deadline is not None and last_cas >= deadline:
                # due() declined with the deadline in the past — only
                # its defensive disabled-guard path.  The deadline can
                # never fire for the rest of the run, so stop asking
                # (the general engine re-asks and re-breaks each
                # iteration with the same observable outcome).
                deadline = None

        # ---- finalize: stats, commands, shared-state writeback ---------
        n_requests = int(sc[_kernelc.S_N_REQUESTS])
        hits = int(sc[_kernelc.S_HITS])
        misses = int(sc[_kernelc.S_MISSES])
        empties = int(sc[_kernelc.S_EMPTIES])
        acts = int(sc[_kernelc.S_ACTS])
        pres = int(sc[_kernelc.S_PRES])
        refs = refs_total
        last_data_end = int(sc[_kernelc.S_LAST_DATA_END])

        self._open_row[:] = [
            None if v < 0 else v for v in open_arr.tolist()]
        self._act_time[:] = act_time.tolist()
        self._cas_allowed[:] = cas_allowed.tolist()
        self._pre_allowed[:] = pre_allowed.tolist()
        self._act_allowed[:] = act_allowed.tolist()

        commands: List[ScheduledCommand] = []
        if record:
            cas_kind = CommandType.RD if is_read else CommandType.WR
            ref_kind = (CommandType.REF_ALL if all_bank_refresh
                        else CommandType.REF_BANK)
            kind_by_code = {_kernelc.REC_ACT: CommandType.ACT,
                            _kernelc.REC_PRE: CommandType.PRE,
                            _kernelc.REC_CAS: cas_kind,
                            _kernelc.REC_REF: ref_kind}
            rec_count = int(sc[_kernelc.S_REC_COUNT])
            flat = rec[:rec_count * 6].tolist()
            for i in range(0, rec_count * 6, 6):
                commands.append(ScheduledCommand(
                    flat[i], kind_by_code[flat[i + 1]], bank=flat[i + 2],
                    row=flat[i + 3], column=flat[i + 4],
                    request_id=flat[i + 5]))

        stats = PhaseStats()
        stats.requests = n_requests
        stats.page_hits = hits
        stats.page_misses = misses
        stats.page_empties = empties
        stats.activates = acts
        stats.precharges = pres
        stats.refreshes = refs
        stats.data_time_ps = n_requests * burst
        stats.makespan_ps = last_data_end
        reads = n_requests if is_read else 0
        writes = 0 if is_read else n_requests
        ref_key = (CommandType.REF_ALL if all_bank_refresh
                   else CommandType.REF_BANK).value
        stats.command_counts = {
            CommandType.ACT.value: acts,
            CommandType.PRE.value: pres,
            (CommandType.RD if is_read else CommandType.WR).value: n_requests,
            ref_key: refs,
        }
        stats.energy_tally = EnergyTally(act_pre=acts, rd=reads, wr=writes,
                                         ref=refs, makespan_ps=last_data_end)
        return EngineResult(stats=stats, commands=commands, reads=reads,
                            writes=writes, turnarounds=0)
