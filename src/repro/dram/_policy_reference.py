"""Scalar oracles for the non-default scheduling disciplines.

The engine implements the policy zoo (:mod:`repro.dram.policy`) inside
its vectorized hot loop.  This module provides independent scalar
references the differential battery in
``tests/dram/test_policy_differential.py`` proves it against:

* :func:`reference_policy_run_phase` / \
  :func:`reference_policy_run_mixed_phase` — dispatchers covering all
  four disciplines.  Open-page defers to the frozen seed oracles in
  :mod:`repro.dram._reference` untouched; bank partitioning remaps the
  request stream scalar-wise and then runs the *frozen* open-page
  oracle on the remapped stream (the discipline is an intake
  transformation, so the frozen oracle *is* its reference); closed-page
  and FR-FCFS-cap run the capped ports below.
* :func:`reference_run_capped_phase` / \
  :func:`reference_run_capped_mixed_phase` — verbatim ports of the
  frozen seed schedulers with the auto-close mechanism added in scalar
  form: a per-bank column-access streak counter, reset at ACT, that at
  the cap charges a PRE at the bank's precharge-ready time and closes
  the row.  With the mechanism disabled (open-page) the ports reduce
  to the frozen functions line for line.

**Never import this module from production code** — like
:mod:`repro.dram._reference` it exists solely for tests and
benchmarks, and the R001 oracle-isolation rule flags any ``src/``
import of it.  Bug fixes go to the engine; an intentional behavior
change must be visible as a documented engine/reference divergence in
the battery.
"""

from __future__ import annotations

from collections import deque
from itertools import chain
from typing import (TYPE_CHECKING, Any, Deque, Iterator, List, Optional, Set,
                    Tuple)

if TYPE_CHECKING:
    from repro.dram.controller import ControllerConfig, PhaseResult
    from repro.dram.mixed import MixedResult

from repro.dram._reference import (_as_list, reference_run_mixed_phase,
                                   reference_run_phase)
from repro.dram.commands import CommandType, ScheduledCommand
from repro.dram.policy import (POLICY_BANK_PARTITION, POLICY_CLOSED_PAGE,
                               POLICY_FRFCFS_CAP, partition_bank,
                               partition_banks)
from repro.dram.presets import REFRESH_ALL_BANK, DramConfig
from repro.dram.refresh import RefreshScheduler
from repro.dram.stats import PhaseStats

_FAR_PAST = -(10**15)
_FAR_FUTURE = 10**18

OP_READ = "RD"
OP_WRITE = "WR"


def _cap_limit(policy: "ControllerConfig") -> int:
    """The auto-close streak cap one policy implies (0 = disabled)."""
    if policy.discipline == POLICY_CLOSED_PAGE:
        return 1
    if policy.discipline == POLICY_FRFCFS_CAP:
        return policy.cap
    return 0


def partition_tuple_stream(requests: Any, n_banks: int,
                           is_read: bool) -> List[Tuple[int, int, int]]:
    """Scalar bank-partition remap of a homogeneous tuple stream.

    Validates every original bank index (mirroring the engine's intake
    error, message for message) and folds it into the stream class's
    partition with :func:`~repro.dram.policy.partition_bank`.
    """
    partition_banks(n_banks)  # even bank count required
    remapped: List[Tuple[int, int, int]] = []
    for k, (bank, row, col) in enumerate(requests):
        if bank < 0 or bank >= n_banks:
            raise ValueError(
                f"request #{k} (bank={bank}, row={row}, column={col}): "
                f"bank out of range [0, {n_banks})")
        remapped.append((partition_bank(bank, n_banks, is_read), row, col))
    return remapped


def partition_mixed_stream(requests: Any,
                           n_banks: int) -> List[Tuple[bool, int, int, int]]:
    """Scalar bank-partition remap of a mixed request stream.

    Each request's stream class is its own direction flag: reads fold
    into the upper partition, writes into the lower one.
    """
    partition_banks(n_banks)  # even bank count required
    remapped: List[Tuple[bool, int, int, int]] = []
    for is_read, bank, row, col in requests:
        remapped.append(
            (is_read, partition_bank(bank, n_banks, is_read), row, col))
    return remapped


def reference_policy_run_phase(config: DramConfig, requests: Any,
                               op: str = OP_READ,
                               policy: Optional["ControllerConfig"] = None
                               ) -> "PhaseResult":
    """Scalar reference for one homogeneous phase under any discipline.

    Accepts tuple-iterable request streams (the battery's shape) and
    returns the same :class:`~repro.dram.controller.PhaseResult` as
    :meth:`repro.dram.controller.MemoryController.run_phase` under the
    same policy.
    """
    from repro.dram.controller import ControllerConfig

    policy = policy or ControllerConfig()
    if policy.discipline == POLICY_BANK_PARTITION:
        n_banks = config.geometry.banks
        remapped = partition_tuple_stream(requests, n_banks, op == OP_READ)
        return reference_run_phase(config, remapped, op, policy)
    if _cap_limit(policy):
        return reference_run_capped_phase(config, requests, op, policy)
    return reference_run_phase(config, requests, op, policy)


def reference_policy_run_mixed_phase(config: DramConfig, requests: Any,
                                     policy: Optional["ControllerConfig"]
                                     = None) -> "MixedResult":
    """Scalar reference for one mixed phase under any discipline."""
    from repro.dram.controller import ControllerConfig

    policy = policy or ControllerConfig()
    if policy.discipline == POLICY_BANK_PARTITION:
        n_banks = config.geometry.banks
        remapped = partition_mixed_stream(requests, n_banks)
        return reference_run_mixed_phase(config, remapped, policy)
    if _cap_limit(policy):
        return reference_run_capped_mixed_phase(config, requests, policy)
    return reference_run_mixed_phase(config, requests, policy)


def reference_run_capped_phase(config: DramConfig, requests: Any,
                               op: str = OP_READ,
                               policy: Optional["ControllerConfig"] = None
                               ) -> "PhaseResult":
    """The seed homogeneous scheduler plus the scalar auto-close cap.

    A verbatim port of :func:`repro.dram._reference.reference_run_phase`
    with three additions, marked ``# auto-close`` below: the per-bank
    streak counters, their reset at ACT, and the cap check plus
    auto-PRE around the pop.  Everything else is untouched, so with the
    cap disabled the port degenerates to the frozen oracle.
    """
    from repro.dram.controller import ControllerConfig, PhaseResult

    policy = policy or ControllerConfig()
    if op not in (OP_READ, OP_WRITE):
        raise ValueError(f"op must be {OP_READ!r} or {OP_WRITE!r}, got {op!r}")

    geometry = config.geometry
    n_banks = geometry.banks
    bank_groups = geometry.bank_groups
    open_row: List[Optional[int]] = [None] * n_banks
    act_time = [_FAR_PAST] * n_banks
    cas_allowed = [0] * n_banks
    pre_allowed = [0] * n_banks
    act_allowed = [0] * n_banks
    refresh = RefreshScheduler(config, enabled=policy.refresh_enabled)

    timing = config.timing
    burst = config.burst_duration_ps
    tck = timing.tck if burst % timing.tck == 0 else 1
    trp = timing.trp
    trcd = timing.trcd
    tras = timing.tras
    trrd_s = timing.trrd_s
    trrd_l = timing.trrd_l
    tfaw = timing.tfaw
    tccd_s = timing.tccd_s
    tccd_l = timing.tccd_l
    twr = timing.twr
    trtp = timing.trtp
    is_read = op == OP_READ
    latency = timing.cl if is_read else timing.cwl

    queue_depth = policy.queue_depth
    per_bank_depth = policy.per_bank_depth
    record = policy.record_commands
    commands: List[ScheduledCommand] = []
    stats = PhaseStats()
    all_bank_refresh = config.refresh_mode == REFRESH_ALL_BANK

    cap_limit = _cap_limit(policy)  # auto-close
    auto_close = cap_limit > 0  # auto-close
    streak = [0] * n_banks  # auto-close

    bg_of = [b % bank_groups for b in range(n_banks)]
    last_cas = _FAR_PAST
    last_cas_bg = [_FAR_PAST] * bank_groups
    last_act = _FAR_PAST
    last_act_bg = -1
    faw_ring = [_FAR_PAST] * 4
    faw_idx = 0
    bus_free = 0
    last_data_end = 0

    fifos: List[Deque[Tuple[int, int, int]]] = [deque() for _ in range(n_banks)]
    pending: Set[int] = set()
    ready: Set[int] = set()
    queued = 0
    seq = 0
    order_seq: Deque[int] = deque()
    order_bank: Deque[int] = deque()

    stalled: Optional[Tuple[int, int, int]] = None
    exhausted = False
    intake = 0

    raw = iter(requests)
    first = next(raw, None)
    if first is None:
        exhausted = True
        chunked = False
        source = raw
    else:
        chunked = hasattr(first[0], "__len__")
        source = chain((first,), raw)

    buf_banks: List[int] = []
    buf_rows: List[int] = []
    buf_cols: List[int] = []
    buf_pos = 0
    buf_len = 0

    def load_chunk() -> bool:
        nonlocal buf_banks, buf_rows, buf_cols, buf_pos, buf_len
        nonlocal exhausted, intake
        while True:
            item = next(source, None)
            if item is None:
                exhausted = True
                return False
            banks_col, rows_col, cols_col = item
            banks = _as_list(banks_col)
            if not banks:
                continue
            rows = _as_list(rows_col)
            cols = _as_list(cols_col)
            if len(rows) != len(banks) or len(cols) != len(banks):
                raise ValueError(
                    f"request chunk columns disagree in length: "
                    f"{len(banks)} banks, {len(rows)} rows, {len(cols)} columns"
                )
            if min(banks) < 0 or max(banks) >= n_banks:
                for k, bank in enumerate(banks):
                    if not 0 <= bank < n_banks:
                        raise ValueError(
                            f"request #{intake + k} (bank={bank}, row={rows[k]}, "
                            f"column={cols[k]}): bank out of range [0, {n_banks})"
                        )
            buf_banks, buf_rows, buf_cols = banks, rows, cols
            buf_pos = 0
            buf_len = len(banks)
            intake += buf_len
            return True

    def refill_tuples() -> None:
        nonlocal queued, seq, stalled, exhausted, intake, fresh_pending
        while queued < queue_depth:
            if stalled is not None:
                bank = stalled[0]
                fifo = fifos[bank]
                if len(fifo) >= per_bank_depth:
                    return
                if not fifo:
                    pending.add(bank)
                    fresh_pending = True
                fifo.append((stalled[1], stalled[2], seq))
                order_seq.append(seq)
                order_bank.append(bank)
                seq += 1
                queued += 1
                stalled = None
                continue
            if exhausted:
                return
            item = next(source, None)
            if item is None:
                exhausted = True
                return
            bank, row, col = item
            if bank < 0 or bank >= n_banks:
                raise ValueError(
                    f"request #{intake} (bank={bank}, row={row}, column={col}): "
                    f"bank out of range [0, {n_banks})"
                )
            intake += 1
            fifo = fifos[bank]
            if len(fifo) >= per_bank_depth:
                stalled = (bank, row, col)
                return
            if not fifo:
                pending.add(bank)
                fresh_pending = True
            fifo.append((row, col, seq))
            order_seq.append(seq)
            order_bank.append(bank)
            seq += 1
            queued += 1

    def refill_chunks() -> None:
        nonlocal queued, seq, stalled, buf_pos, fresh_pending
        while queued < queue_depth:
            if stalled is not None:
                bank = stalled[0]
                fifo = fifos[bank]
                if len(fifo) >= per_bank_depth:
                    return
                if not fifo:
                    pending.add(bank)
                    fresh_pending = True
                fifo.append((stalled[1], stalled[2], seq))
                order_seq.append(seq)
                order_bank.append(bank)
                seq += 1
                queued += 1
                stalled = None
                continue
            if buf_pos >= buf_len:
                if exhausted or not load_chunk():
                    return
            bank = buf_banks[buf_pos]
            row = buf_rows[buf_pos]
            col = buf_cols[buf_pos]
            buf_pos += 1
            fifo = fifos[bank]
            if len(fifo) >= per_bank_depth:
                stalled = (bank, row, col)
                return
            if not fifo:
                pending.add(bank)
                fresh_pending = True
            fifo.append((row, col, seq))
            order_seq.append(seq)
            order_bank.append(bank)
            seq += 1
            queued += 1

    refill = refill_chunks if chunked else refill_tuples

    n_requests = 0
    hits = misses = empties = acts = pres = refs = 0
    quant = tck > 1

    fresh_pending = False
    deferred_floor = _FAR_FUTURE

    refill()

    deadline = refresh.next_deadline_ps

    while queued:
        # ---- refresh ---------------------------------------------------
        while deadline is not None and last_cas >= deadline:
            event = refresh.due(last_cas)
            if event is None:
                break
            ref_time = event.deadline_ps
            for b in event.banks:
                if open_row[b] is not None:
                    t_pre = pre_allowed[b]
                    if quant:
                        remainder = t_pre % tck
                        if remainder:
                            t_pre += tck - remainder
                    if record:
                        commands.append(ScheduledCommand(t_pre, CommandType.PRE, bank=b))
                    pres += 1
                    open_row[b] = None
                    bank_free_at = t_pre + trp
                else:
                    bank_free_at = act_allowed[b]
                if bank_free_at > ref_time:
                    ref_time = bank_free_at
            if quant:
                remainder = ref_time % tck
                if remainder:
                    ref_time += tck - remainder
            for b in event.banks:
                open_row[b] = None
                ready.discard(b)
                if fifos[b]:
                    pending.add(b)
                act_allowed[b] = ref_time + event.duration_ps
            fresh_pending = True
            refs += 1
            if record:
                kind = CommandType.REF_ALL if all_bank_refresh else CommandType.REF_BANK
                commands.append(
                    ScheduledCommand(
                        ref_time,
                        kind,
                        bank=-1 if all_bank_refresh else event.banks[0],
                    )
                )
            deadline = refresh.next_deadline_ps

        # ---- eager per-bank row management ----------------------------
        if pending and (fresh_pending or deferred_floor <= bus_free or not ready):
            fresh_pending = False
            horizon = bus_free
            forced_bank = -1
            while True:
                deferred_ready = _FAR_FUTURE
                deferred_bank = -1
                for b in sorted(pending) if len(pending) > 1 else tuple(pending):
                    row = fifos[b][0][0]
                    current = open_row[b]
                    if current == row:
                        pending.discard(b)
                        ready.add(b)
                        hits += 1
                        continue
                    if current is None:
                        t_pre = -1
                        act_ready = act_allowed[b]
                    else:
                        t_pre = pre_allowed[b]
                        if quant:
                            remainder = t_pre % tck
                            if remainder:
                                t_pre += tck - remainder
                        act_ready = t_pre + trp
                    if act_ready > horizon and b != forced_bank:
                        if act_ready < deferred_ready:
                            deferred_ready = act_ready
                            deferred_bank = b
                        continue
                    if current is None:
                        empties += 1
                    else:
                        misses += 1
                        pres += 1
                        if record:
                            commands.append(ScheduledCommand(t_pre, CommandType.PRE, bank=b))
                    bg = bg_of[b]
                    t_act = act_ready
                    if last_act != _FAR_PAST:
                        spacing = trrd_l if bg == last_act_bg else trrd_s
                        t = last_act + spacing
                        if t > t_act:
                            t_act = t
                    t = faw_ring[faw_idx] + tfaw
                    if t > t_act:
                        t_act = t
                    if quant:
                        remainder = t_act % tck
                        if remainder:
                            t_act += tck - remainder
                    faw_ring[faw_idx] = t_act
                    faw_idx = (faw_idx + 1) & 3
                    last_act = t_act
                    last_act_bg = bg
                    acts += 1
                    if record:
                        commands.append(ScheduledCommand(t_act, CommandType.ACT, bank=b, row=row))
                    open_row[b] = row
                    act_time[b] = t_act
                    cas_allowed[b] = t_act + trcd
                    pre_allowed[b] = t_act + tras
                    streak[b] = 0  # auto-close
                    pending.discard(b)
                    ready.add(b)
                if ready or deferred_bank < 0:
                    deferred_floor = deferred_ready
                    break
                forced_bank = deferred_bank

        # ---- CAS arbitration -------------------------------------------
        bound = last_cas + tccd_s
        t = bus_free - latency
        if t > bound:
            bound = t
        if quant:
            remainder = bound % tck
            if remainder:
                bound += tck - remainder
        chosen = -1

        while order_seq:
            b = order_bank[0]
            fifo = fifos[b]
            if fifo and fifo[0][2] == order_seq[0]:
                break
            order_seq.popleft()
            order_bank.popleft()
        oldest_bank = order_bank[0]
        if oldest_bank in ready:
            pb = cas_allowed[oldest_bank]
            t = last_cas_bg[bg_of[oldest_bank]] + tccd_l
            if t > pb:
                pb = t
            if pb <= bound:
                chosen = oldest_bank
                t_cas = bound

        if chosen < 0:
            bg_limits = [t + tccd_l for t in last_cas_bg]
            best_pb = _FAR_FUTURE
            best_seq = _FAR_FUTURE
            achieved = False
            for b in ready:
                pb = cas_allowed[b]
                t = bg_limits[bg_of[b]]
                if t > pb:
                    pb = t
                if pb <= bound:
                    seq_b = fifos[b][0][2]
                    if not achieved or seq_b < best_seq:
                        achieved = True
                        best_seq = seq_b
                        chosen = b
                elif not achieved:
                    seq_b = fifos[b][0][2]
                    if pb < best_pb or (pb == best_pb and seq_b < best_seq):
                        best_pb = pb
                        best_seq = seq_b
                        chosen = b
            if chosen < 0:
                raise RuntimeError("scheduler deadlock: no prepared bank head")
            if achieved:
                t_cas = bound
            else:
                t_cas = best_pb
                if quant:
                    remainder = t_cas % tck
                    if remainder:
                        t_cas += tck - remainder

        fifo = fifos[chosen]
        row, col, _seqno = fifo.popleft()
        queued -= 1
        closing = False  # auto-close
        if auto_close:  # auto-close
            s = streak[chosen] + 1
            if s >= cap_limit:
                closing = True
                s = 0
            streak[chosen] = s
        if not fifo:
            ready.discard(chosen)
        elif not closing and fifo[0][0] == open_row[chosen]:
            hits += 1
        else:
            ready.discard(chosen)
            pending.add(chosen)
            fresh_pending = True

        bg = bg_of[chosen]
        last_cas = t_cas
        last_cas_bg[bg] = t_cas
        data_end = t_cas + latency + burst
        bus_free = data_end
        last_data_end = data_end
        if is_read:
            t = t_cas + trtp
        else:
            t = data_end + twr
        if t > pre_allowed[chosen]:
            pre_allowed[chosen] = t
        if record:
            kind = CommandType.RD if is_read else CommandType.WR
            commands.append(
                ScheduledCommand(
                    t_cas, kind, bank=chosen, row=row, column=col, request_id=n_requests
                )
            )
        n_requests += 1
        if closing:  # auto-close
            t_pre = pre_allowed[chosen]
            if quant:
                remainder = t_pre % tck
                if remainder:
                    t_pre += tck - remainder
            if record:
                commands.append(ScheduledCommand(t_pre, CommandType.PRE, bank=chosen))
            pres += 1
            open_row[chosen] = None
            act_allowed[chosen] = t_pre + trp
        if stalled is None and buf_pos < buf_len and queued == queue_depth - 1:
            bank = buf_banks[buf_pos]
            row = buf_rows[buf_pos]
            col = buf_cols[buf_pos]
            buf_pos += 1
            fifo = fifos[bank]
            if len(fifo) >= per_bank_depth:
                stalled = (bank, row, col)
            else:
                if not fifo:
                    pending.add(bank)
                    fresh_pending = True
                fifo.append((row, col, seq))
                order_seq.append(seq)
                order_bank.append(bank)
                seq += 1
                queued += 1
        else:
            refill()

    stats.requests = n_requests
    stats.page_hits = hits
    stats.page_misses = misses
    stats.page_empties = empties
    stats.activates = acts
    stats.precharges = pres
    stats.refreshes = refs
    stats.data_time_ps = n_requests * burst
    stats.makespan_ps = last_data_end
    stats.command_counts = {
        CommandType.ACT.value: acts,
        CommandType.PRE.value: pres,
        (CommandType.RD if is_read else CommandType.WR).value: n_requests,
        (CommandType.REF_ALL if all_bank_refresh else CommandType.REF_BANK).value: refs,
    }
    return PhaseResult(stats=stats, commands=commands)


def reference_run_capped_mixed_phase(config: DramConfig, requests: Any,
                                     policy: Optional["ControllerConfig"]
                                     = None) -> "MixedResult":
    """The seed mixed scheduler plus the scalar auto-close cap.

    A verbatim port of
    :func:`repro.dram._reference.reference_run_mixed_phase` with the
    same three ``# auto-close`` additions as
    :func:`reference_run_capped_phase`.
    """
    from repro.dram.controller import ControllerConfig
    from repro.dram.mixed import MixedRequest, MixedResult

    policy = policy or ControllerConfig()
    timing = config.timing
    geometry = config.geometry
    n_banks = geometry.banks
    bank_groups = geometry.bank_groups
    burst = config.burst_duration_ps
    tck = timing.tck if burst % timing.tck == 0 else 1
    quant = tck > 1

    trp, trcd, tras = timing.trp, timing.trcd, timing.tras
    trrd_s, trrd_l, tfaw = timing.trrd_s, timing.trrd_l, timing.tfaw
    tccd_s, tccd_l = timing.tccd_s, timing.tccd_l
    twr, trtp, trtw = timing.twr, timing.trtp, timing.trtw
    twtr_s, twtr_l = timing.twtr_s, timing.twtr_l
    cl, cwl = timing.cl, timing.cwl

    open_row: List[Optional[int]] = [None] * n_banks
    cas_allowed = [0] * n_banks
    pre_allowed = [0] * n_banks
    act_allowed = [0] * n_banks
    prepared = [False] * n_banks

    refresh = RefreshScheduler(config, enabled=policy.refresh_enabled)

    cap_limit = _cap_limit(policy)  # auto-close
    auto_close = cap_limit > 0  # auto-close
    streak = [0] * n_banks  # auto-close

    last_cas = _FAR_PAST
    last_cas_bg = [_FAR_PAST] * bank_groups
    last_act = _FAR_PAST
    last_act_bg = -1
    faw_ring = [_FAR_PAST] * 4
    faw_idx = 0
    bus_free = 0
    last_data_end = 0
    last_was_read: Optional[bool] = None
    last_rd_cmd = _FAR_PAST
    last_wr_data_end = _FAR_PAST
    last_wr_bg = -1

    fifos: List[Deque[Tuple[int, int, int, bool]]] = [deque() for _ in range(n_banks)]
    queued = 0
    seq = 0
    stalled: Optional[MixedRequest] = None
    exhausted = False
    source: Iterator[MixedRequest] = iter(requests)

    stats = PhaseStats()
    hits = misses = empties = acts = pres = refs = 0
    n_requests = reads = writes = turnarounds = 0

    def refill() -> None:
        nonlocal queued, seq, stalled, exhausted
        while queued < policy.queue_depth:
            if stalled is not None:
                is_read, bank, row, col = stalled
                if len(fifos[bank]) >= policy.per_bank_depth:
                    return
                fifos[bank].append((row, col, seq, is_read))
                seq += 1
                queued += 1
                stalled = None
                continue
            if exhausted:
                return
            item = next(source, None)
            if item is None:
                exhausted = True
                return
            is_read, bank, row, col = item
            if len(fifos[bank]) >= policy.per_bank_depth:
                stalled = item
                return
            fifos[bank].append((row, col, seq, is_read))
            seq += 1
            queued += 1

    refill()

    while queued:
        # ---- refresh (same policy as the homogeneous scheduler) ------
        deadline = refresh.next_deadline_ps
        while deadline is not None and last_cas >= deadline:
            event = refresh.due(last_cas)
            if event is None:
                break
            ref_time = event.deadline_ps
            for b in event.banks:
                if open_row[b] is not None:
                    pres += 1
                    open_row[b] = None
                    prepared[b] = False
                    t_pre = pre_allowed[b]
                    if quant:
                        remainder = t_pre % tck
                        if remainder:
                            t_pre += tck - remainder
                    bank_ready = t_pre + trp
                else:
                    bank_ready = act_allowed[b]
                if bank_ready > ref_time:
                    ref_time = bank_ready
            if quant:
                remainder = ref_time % tck
                if remainder:
                    ref_time += tck - remainder
            for b in event.banks:
                open_row[b] = None
                prepared[b] = False
                act_allowed[b] = ref_time + event.duration_ps
            refs += 1
            deadline = refresh.next_deadline_ps

        # ---- eager row management with the ACT horizon ----------------
        horizon = bus_free
        any_prepared = False
        forced_bank = -1
        while True:
            deferred_ready = _FAR_FUTURE
            deferred_bank = -1
            for b in range(n_banks):
                if not fifos[b]:
                    continue
                if prepared[b]:
                    any_prepared = True
                    continue
                row = fifos[b][0][0]
                current = open_row[b]
                if current == row:
                    prepared[b] = True
                    hits += 1
                    any_prepared = True
                    continue
                if current is None:
                    act_ready = act_allowed[b]
                else:
                    t_pre = pre_allowed[b]
                    if quant:
                        remainder = t_pre % tck
                        if remainder:
                            t_pre += tck - remainder
                    act_ready = t_pre + trp
                if act_ready > horizon and b != forced_bank:
                    if act_ready < deferred_ready:
                        deferred_ready = act_ready
                        deferred_bank = b
                    continue
                if current is None:
                    empties += 1
                else:
                    misses += 1
                    pres += 1
                bg = b % bank_groups
                t_act = act_ready
                if last_act != _FAR_PAST:
                    spacing = trrd_l if bg == last_act_bg else trrd_s
                    t = last_act + spacing
                    if t > t_act:
                        t_act = t
                t = faw_ring[faw_idx] + tfaw
                if t > t_act:
                    t_act = t
                if quant:
                    remainder = t_act % tck
                    if remainder:
                        t_act += tck - remainder
                faw_ring[faw_idx] = t_act
                faw_idx = (faw_idx + 1) & 3
                last_act = t_act
                last_act_bg = bg
                acts += 1
                open_row[b] = row
                cas_allowed[b] = t_act + trcd
                pre_allowed[b] = t_act + tras
                streak[b] = 0  # auto-close
                prepared[b] = True
                any_prepared = True
            if any_prepared or deferred_bank < 0:
                break
            forced_bank = deferred_bank

        # ---- CAS arbitration with turnaround ---------------------------
        best_cas = _FAR_FUTURE
        best_seq = _FAR_FUTURE
        chosen = -1
        chosen_cas = 0
        for b in range(n_banks):
            if not prepared[b] or not fifos[b]:
                continue
            row, col, seq_b, is_read = fifos[b][0]
            bg = b % bank_groups
            latency = cl if is_read else cwl
            t_cas = cas_allowed[b]
            t = last_cas + tccd_s
            if t > t_cas:
                t_cas = t
            t = last_cas_bg[bg] + tccd_l
            if t > t_cas:
                t_cas = t
            t = bus_free - latency
            if t > t_cas:
                t_cas = t
            if is_read:
                if last_wr_data_end != _FAR_PAST:
                    spacing = twtr_l if bg == last_wr_bg else twtr_s
                    t = last_wr_data_end + spacing
                    if t > t_cas:
                        t_cas = t
            else:
                if last_rd_cmd != _FAR_PAST:
                    t = last_rd_cmd + trtw
                    if t > t_cas:
                        t_cas = t
            if quant:
                remainder = t_cas % tck
                if remainder:
                    t_cas += tck - remainder
            if t_cas < best_cas or (t_cas == best_cas and seq_b < best_seq):
                best_cas = t_cas
                best_seq = seq_b
                chosen = b
                chosen_cas = t_cas
        if chosen < 0:
            raise RuntimeError("scheduler deadlock: no prepared bank head")

        row, col, _seq, is_read = fifos[chosen].popleft()
        queued -= 1
        closing = False  # auto-close
        if auto_close:  # auto-close
            s = streak[chosen] + 1
            if s >= cap_limit:
                closing = True
                s = 0
            streak[chosen] = s
        prepared[chosen] = (not closing and bool(fifos[chosen])
                            and fifos[chosen][0][0] == open_row[chosen])
        if prepared[chosen]:
            hits += 1

        bg = chosen % bank_groups
        latency = cl if is_read else cwl
        t_cas = chosen_cas
        last_cas = t_cas
        last_cas_bg[bg] = t_cas
        data_end = t_cas + latency + burst
        bus_free = data_end
        last_data_end = data_end
        if last_was_read is not None and last_was_read != is_read:
            turnarounds += 1
        last_was_read = is_read
        if is_read:
            reads += 1
            last_rd_cmd = t_cas
            t = t_cas + trtp
        else:
            writes += 1
            last_wr_data_end = data_end
            last_wr_bg = bg
            t = data_end + twr
        if t > pre_allowed[chosen]:
            pre_allowed[chosen] = t
        n_requests += 1
        if closing:  # auto-close
            t_pre = pre_allowed[chosen]
            if quant:
                remainder = t_pre % tck
                if remainder:
                    t_pre += tck - remainder
            pres += 1
            open_row[chosen] = None
            act_allowed[chosen] = t_pre + trp
        refill()

    stats.requests = n_requests
    stats.page_hits = hits
    stats.page_misses = misses
    stats.page_empties = empties
    stats.activates = acts
    stats.precharges = pres
    stats.refreshes = refs
    stats.data_time_ps = n_requests * burst
    stats.makespan_ps = last_data_end
    return MixedResult(stats=stats, reads=reads, writes=writes,
                       turnarounds=turnarounds)
