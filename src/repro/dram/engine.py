"""Unified DRAM scheduling engine: one core for every workload shape.

Before this module existed the repository carried **two** copies of the
scheduler: ``MemoryController.run_phase`` (homogeneous all-read or
all-write phases) and ``repro.dram.mixed.run_mixed_phase`` (a fork with
the tRTW/tWTR direction-turnaround rules bolted on).  Both are now thin
adapters over the single engine here, which layers as

* **intake** — a :class:`WorkloadSource` normalizes any request-stream
  shape into columnar batches: per-element tuples, the PR 1 columnar
  address chunks, mixed read/write streams, and replayed command traces
  all become sources;
* **per-bank state** — array-backed per-bank queues (no per-request
  tuple or deque node is ever allocated: each bank owns flat
  ``rows``/``columns``/``sequence`` columns and a head/admitted cursor
  pair) plus the open-row and tRCD/tRAS/tRP/tRFC timing windows;
* **eager row management** — any bank whose queue head needs a
  different row gets its PRE/ACT pair scheduled at the earliest legal
  time, overlapping row cycles with data transfers on other banks
  (deferral logic keeps far-future ACTs from clogging the sequential
  tRRD/tFAW bookkeeping);
* **CAS arbiter** — a ready-set arbiter that only examines banks whose
  open row matches their queue head; among heads that achieve the
  earliest legal issue slot the oldest request wins (age-fair, keeps
  bank groups rotating).  The read/write **turnaround rule set**
  (tRTW after a read command, tWTR_S/L after write data) activates
  automatically when the source is mixed;
* **timeline** — issue slots are computed event-driven and quantized to
  the command clock exactly when that grid is representable on the
  integer-picosecond timeline (see :mod:`repro.dram.controller` for the
  quantization contract), producing
  :class:`~repro.dram.stats.PhaseStats` and, on request, the full
  :class:`~repro.dram.commands.ScheduledCommand` list.

The engine is proven bit-identical to both pre-refactor schedulers
(frozen in :mod:`repro.dram._reference`) by the differential batteries
in ``tests/dram/test_engine_differential.py``, and is measurably faster
on the Table I phase workload (pinned by
``benchmarks/bench_controller.py``).
"""

from __future__ import annotations

import abc
import bisect
import heapq
from dataclasses import dataclass, field
from itertools import chain, islice
from operator import itemgetter
from typing import (TYPE_CHECKING, Any, Iterable, Iterator, List, Optional,
                    Sequence, Tuple)

import numpy as np
from numpy.typing import NDArray

from repro.dram.bank import BankSnapshot
from repro.dram.commands import CAS_COMMANDS, CommandType, ScheduledCommand
from repro.dram.policy import (
    POLICY_BANK_PARTITION,
    POLICY_CLOSED_PAGE,
    POLICY_FRFCFS_CAP,
    partition_banks,
)
from repro.dram.presets import REFRESH_ALL_BANK, DramConfig
from repro.dram.refresh import RefreshScheduler
from repro.dram.stats import EnergyTally, PhaseStats

if TYPE_CHECKING:
    from repro.dram.controller import ControllerConfig

#: Operation kinds for homogeneous sources (shared with the controller).
OP_READ = "RD"
OP_WRITE = "WR"

_FAR_PAST = -(10**15)
_FAR_FUTURE = 10**18

# Sort key committing deferred activations in ascending bank order
# (heap entries are ``(act_ready, bank, t_pre, is_empty, row)``);
# module-level so the arbiter loop never rebuilds a closure.
_ENTRY_BANK = itemgetter(1)

#: Requests buffered per batch when normalizing per-element streams.
_STREAM_BATCH = 1024

#: Below this chunk size the Python partition loop beats NumPy setup.
_NUMPY_PARTITION_MIN = 64


def _as_list(values: Any) -> List[int]:
    """Bulk-convert one batch column to a plain Python list."""
    tolist = getattr(values, "tolist", None)
    if tolist is not None:
        converted: List[int] = tolist()
        return converted
    return list(values)


# ---------------------------------------------------------------------------
# Workload sources
# ---------------------------------------------------------------------------

#: One normalized intake batch: (banks, rows, columns, directions).
#: ``directions`` is ``None`` for homogeneous sources and a same-length
#: sequence of ``is_read`` booleans for mixed ones.
Batch = Tuple[Sequence[int], Sequence[int], Sequence[int], Optional[Sequence[bool]]]


class WorkloadSource(abc.ABC):
    """Normalized request intake for the scheduling engine.

    A source turns some external request-stream shape into columnar
    :data:`Batch` es consumed strictly in order.  The contract:

    * batches concatenate to the exact request sequence in program
      order — batch boundaries are invisible to scheduling;
    * ``mixed`` declares whether requests carry a direction; when
      ``True`` every batch's ``directions`` column is present and the
      engine charges the read/write turnaround rules, when ``False``
      the whole phase runs in the single direction passed to
      :meth:`SchedulingEngine.run`;
    * bank indices are validated by the engine at intake, so sources
      never need to pre-check.
    """

    #: Whether requests carry a per-request direction.
    mixed: bool = False

    @abc.abstractmethod
    def batches(self) -> Iterator[Batch]:
        """Yield the request stream as columnar batches, in order."""


class TupleSource(WorkloadSource):
    """``(bank, row, column)`` tuples — the per-element reference shape."""

    def __init__(self, requests: Iterable[Tuple[int, int, int]]) -> None:
        self._requests = requests

    def batches(self) -> Iterator[Batch]:
        """Buffer the tuple stream into fixed-size columnar batches."""
        source = iter(self._requests)
        while True:
            part = list(islice(source, _STREAM_BATCH))
            if not part:
                return
            yield ([r[0] for r in part], [r[1] for r in part],
                   [r[2] for r in part], None)


class ChunkSource(WorkloadSource):
    """Columnar ``(banks, rows, columns)`` chunks — the vectorized shape.

    Accepts exactly what ``InterleaverMapping.write_addresses_array`` /
    ``read_addresses_array`` produce; chunks pass through untouched and
    the engine bulk-converts and partitions them per bank.
    """

    def __init__(
            self,
            chunks: Iterable[Tuple[Sequence[int], Sequence[int],
                                   Sequence[int]]]) -> None:
        self._chunks = chunks

    def batches(self) -> Iterator[Batch]:
        """Pass every columnar chunk through untouched (no direction)."""
        for banks, rows, cols in self._chunks:
            yield banks, rows, cols, None


class MixedSource(WorkloadSource):
    """``(is_read, bank, row, column)`` tuples — mixed traffic."""

    mixed = True

    def __init__(self, requests: Iterable[Tuple[bool, int, int, int]]) -> None:
        self._requests = requests

    def batches(self) -> Iterator[Batch]:
        """Buffer the mixed stream, splitting off the direction column."""
        source = iter(self._requests)
        while True:
            part = list(islice(source, _STREAM_BATCH))
            if not part:
                return
            yield ([r[1] for r in part], [r[2] for r in part],
                   [r[3] for r in part], [r[0] for r in part])


class TraceReplaySource(WorkloadSource):
    """Replays a recorded command trace as a (mixed) request stream.

    Takes any iterable of :class:`~repro.dram.commands.ScheduledCommand`
    (e.g. from ``PhaseResult.commands`` or
    :func:`repro.dram.trace.read_trace`), keeps the data-moving RD/WR
    commands in issue-time order and presents them as requests — so a
    recorded schedule can be *re-scheduled* under a different
    configuration, policy, or timing set and re-checked with
    :class:`~repro.dram.trace.TraceChecker`.  ACT/PRE/REF commands are
    dropped: they are controller decisions the engine re-derives.
    """

    mixed = True

    def __init__(self, commands: Iterable[ScheduledCommand]) -> None:
        self._commands = commands

    def batches(self) -> Iterator[Batch]:
        """Present the trace's RD/WR commands, issue-ordered, as requests."""
        cas = sorted((c for c in self._commands if c.command in CAS_COMMANDS),
                     key=lambda c: c.time_ps)
        for start in range(0, len(cas), _STREAM_BATCH):
            part = cas[start:start + _STREAM_BATCH]
            yield ([c.bank for c in part], [c.row for c in part],
                   [c.column for c in part],
                   [c.command is CommandType.RD for c in part])


def trace_requests(
    commands: Iterable[ScheduledCommand],
) -> Iterator[Tuple[bool, int, int, int]]:
    """The RD/WR commands of a trace as ``MixedRequest`` tuples.

    Convenience for feeding a recorded trace into
    :func:`repro.dram.mixed.run_mixed_phase`; equivalent to what
    :class:`TraceReplaySource` presents to the engine.
    """
    cas = sorted((c for c in commands if c.command in CAS_COMMANDS),
                 key=lambda c: c.time_ps)
    for command in cas:
        yield (command.command is CommandType.RD, command.bank,
               command.row, command.column)


class _PartitionedSource(WorkloadSource):
    """Static bank partitioning as an intake transformation.

    Under :data:`~repro.dram.policy.POLICY_BANK_PARTITION` every
    request's bank index is remapped into the partition its stream
    class owns (writes: lower half, reads: upper half; see
    :func:`~repro.dram.policy.partition_bank`) *before* the scheduler
    sees it — scheduling within a partition is then plain open-page
    FR-FCFS on the remapped stream, which is what makes the
    discipline's scalar reference trivial (the frozen open-page oracle
    on the remapped stream).

    Original bank indices are validated here, with the engine's exact
    error message, because the modulo fold would silently wrap
    out-of-range banks into valid partition slots.
    """

    def __init__(self, inner: WorkloadSource, n_banks: int,
                 is_read: bool) -> None:
        self._inner = inner
        self._n_banks = n_banks
        self._is_read = is_read
        self.mixed = inner.mixed

    def batches(self) -> Iterator[Batch]:
        """Yield the inner batches with banks folded into partitions."""
        n_banks = self._n_banks
        half = n_banks // 2
        offset = half if self._is_read else 0
        count = 0
        for banks_col, rows_col, cols_col, dirs_col in self._inner.batches():
            banks = np.asarray(banks_col)
            if len(banks):
                lo = int(banks.min())
                hi = int(banks.max())
                if lo < 0 or hi >= n_banks:
                    self._reject(banks, rows_col, cols_col, count)
            if dirs_col is None:
                remapped = banks % half + offset
            else:
                reads = np.asarray(dirs_col, dtype=bool)
                remapped = banks % half + np.where(reads, half, 0)
            yield remapped, rows_col, cols_col, dirs_col
            count += len(banks)

    def _reject(self, banks: NDArray[Any], rows_col: Any, cols_col: Any,
                count: int) -> None:
        """Raise the engine's out-of-range error for the first bad bank."""
        n_banks = self._n_banks
        rows = _as_list(rows_col)
        cols = _as_list(cols_col)
        for k, bank in enumerate(banks.tolist()):
            if bank < 0 or bank >= n_banks:
                raise ValueError(
                    f"request #{count + k} (bank={bank}, row={rows[k]}, "
                    f"column={cols[k]}): bank out of range [0, {n_banks})"
                )


def as_workload(requests: Any) -> WorkloadSource:
    """Normalize ``run_phase``-style input into a :class:`WorkloadSource`.

    Accepts a ready-made source (returned unchanged), an iterable of
    ``(bank, row, column)`` tuples, or an iterable of columnar
    ``(banks, rows, columns)`` chunks — the same shape sniffing the
    pre-engine controller performed (the first element's bank column
    either is a scalar or has a length).
    """
    if isinstance(requests, WorkloadSource):
        return requests
    raw = iter(requests)
    first = next(raw, None)
    if first is None:
        return ChunkSource(())
    rest = chain((first,), raw)
    if hasattr(first[0], "__len__"):
        return ChunkSource(rest)
    return TupleSource(rest)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


@dataclass
class EngineResult:
    """Outcome of one engine run.

    Attributes:
        stats: aggregate phase statistics.
        commands: the scheduled command list (``policy.record_commands``).
        reads: read bursts issued (``stats.requests`` for a homogeneous
            read phase, the direction split for mixed sources).
        writes: write bursts issued.
        turnarounds: data-bus direction switches (mixed sources only).
    """

    stats: PhaseStats
    commands: List[ScheduledCommand] = field(default_factory=list)
    reads: int = 0
    writes: int = 0
    turnarounds: int = 0


class SchedulingEngine:
    """Schedules workload sources against one DRAM configuration.

    Owns the per-bank state (open rows and timing windows) and the
    refresh scheduler, so consecutive :meth:`run` calls on one engine
    see warm bank state — exactly like the pre-engine
    ``MemoryController``.  Create a fresh engine per phase for the
    paper's cold-start semantics.

    Args:
        config: DRAM configuration (geometry + timing + refresh mode).
        policy: controller policy (queue depths, refresh, recording);
            an instance of
            :class:`~repro.dram.controller.ControllerConfig`.
    """

    def __init__(self, config: DramConfig, policy: ControllerConfig) -> None:
        self.config = config
        self.policy = policy
        geometry = config.geometry
        self._banks = geometry.banks
        self._bank_groups = geometry.bank_groups
        self._open_row: List[Optional[int]] = [None] * self._banks
        self._act_time = [_FAR_PAST] * self._banks
        self._cas_allowed = [0] * self._banks
        self._pre_allowed = [0] * self._banks
        self._act_allowed = [0] * self._banks
        self._refresh = RefreshScheduler(config, enabled=policy.refresh_enabled)

    def bank_snapshot(self, bank: int) -> BankSnapshot:
        """Readable state of one bank (testing/debugging)."""
        return BankSnapshot(
            bank=bank,
            open_row=self._open_row[bank],
            act_time_ps=self._act_time[bank],
            cas_allowed_ps=self._cas_allowed[bank],
            pre_allowed_ps=self._pre_allowed[bank],
            act_allowed_ps=self._act_allowed[bank],
        )

    def run(self, source: WorkloadSource, op: str = OP_READ) -> EngineResult:
        """Schedule one workload source to completion.

        Args:
            source: the request stream.  A homogeneous source runs in
                direction ``op``; a mixed source carries per-request
                directions and additionally charges the turnaround
                rules (``op`` is then ignored).
            op: :data:`OP_READ` or :data:`OP_WRITE`.

        Returns:
            An :class:`EngineResult`; direction counters are filled for
            mixed sources.

        Raises:
            ValueError: on an unknown ``op`` or a request whose bank
                index lies outside ``[0, geometry.banks)`` (validated
                at intake, naming the offending request).
        """
        if op not in (OP_READ, OP_WRITE):
            raise ValueError(f"op must be {OP_READ!r} or {OP_WRITE!r}, got {op!r}")
        discipline = self.policy.discipline
        if discipline == POLICY_BANK_PARTITION:
            partition_banks(self._banks)  # even bank count required
            source = _PartitionedSource(source, self._banks, op == OP_READ)
        mixed = source.mixed

        config = self.config
        policy = self.policy
        timing = config.timing
        burst = config.burst_duration_ps
        # Command-clock grid for issue-slot quantization (see the
        # controller module docstring: only when the clock is exact on
        # the integer-picosecond timeline).
        tck = timing.tck if burst % timing.tck == 0 else 1
        quant = tck > 1
        trp = timing.trp
        trcd = timing.trcd
        tras = timing.tras
        trrd_s = timing.trrd_s
        trrd_l = timing.trrd_l
        tfaw = timing.tfaw
        tccd_s = timing.tccd_s
        tccd_l = timing.tccd_l
        twr = timing.twr
        trtp = timing.trtp
        trtw = timing.trtw
        twtr_s = timing.twtr_s
        twtr_l = timing.twtr_l
        cl = timing.cl
        cwl = timing.cwl
        is_read = op == OP_READ
        latency = cl if is_read else cwl
        n_banks = self._banks
        bank_groups = self._bank_groups

        open_row = self._open_row
        act_time = self._act_time
        cas_allowed = self._cas_allowed
        pre_allowed = self._pre_allowed
        act_allowed = self._act_allowed

        queue_depth = policy.queue_depth
        per_bank_depth = policy.per_bank_depth
        record = policy.record_commands
        # Auto-close mechanism shared by closed-page (cap 1) and
        # FR-FCFS-cap (cap k): `streak[b]` counts column accesses since
        # bank b's last ACT; reaching the cap charges a PRE at the
        # bank's precharge-ready time and closes the row.  With the
        # mechanism off (open-page / bank partitioning) no arbiter
        # decision changes — the bit-identity anchor of the policy zoo.
        if discipline == POLICY_CLOSED_PAGE:
            cap_limit = 1
        elif discipline == POLICY_FRFCFS_CAP:
            cap_limit = policy.cap
        else:
            cap_limit = 0
        auto_close = cap_limit > 0
        streak = [0] * self._banks
        commands: List[ScheduledCommand] = []
        refresh = self._refresh
        all_bank_refresh = config.refresh_mode == REFRESH_ALL_BANK

        # Global channel state.
        bg_of = [b % bank_groups for b in range(n_banks)]
        last_cas = _FAR_PAST            # any bank group (tCCD_S)
        last_cas_bg = [_FAR_PAST] * bank_groups
        last_act = _FAR_PAST
        last_act_bg = -1
        faw_ring = [_FAR_PAST] * 4      # issue times of the last four ACTs
        faw_idx = 0
        bus_free = 0
        last_data_end = 0
        # Direction bookkeeping (mixed sources only).
        last_was_read: Optional[bool] = None
        last_rd_cmd = _FAR_PAST
        last_wr_data_end = _FAR_PAST
        last_wr_bg = -1

        # ---- array-backed per-bank queues ------------------------------
        # Each bank owns flat append-only columns of its requests; a
        # bank's FIFO is the window between the served cursor `head[b]`
        # and the admitted cursor `adm[b]`.  `bank_stream` records the
        # owning bank per global stream position — which makes window
        # admission a pure integer read, with no per-request tuple or
        # deque node ever allocated.
        rows_q: List[List[int]] = [[] for _ in range(n_banks)]
        cols_q: List[List[int]] = [[] for _ in range(n_banks)]
        seqs_q: List[List[int]] = [[] for _ in range(n_banks)]
        dirs_q: List[List[bool]] = [[] for _ in range(n_banks)] if mixed else []
        head = [0] * n_banks            # served requests per bank (cursor)
        adm = [0] * n_banks             # admitted (windowed) per bank (cursor)
        bank_stream: List[int] = []     # owning bank per stream position
        stream_base = 0                 # stream position of bank_stream[0]
        pos = 0                         # next stream position to admit
        loaded = 0                      # stream positions loaded so far
        queued = 0                      # admitted and not yet served

        # Banks with requests are always split into *ready* (open row
        # matches the queue head: CAS candidates) and *pending* (head
        # still needs its row cycle); `bstate` tracks which (0 = no
        # requests, 1 = pending, 2 = ready).  `ready_order` holds the
        # ready heads' sequence numbers in ascending (oldest-first)
        # order, so the arbiter can walk candidates oldest-first and
        # stop at the first one achieving the bound — the decisions are
        # identical to scanning everything, at a fraction of the cost.
        bstate = [0] * n_banks
        ready_order: List[int] = []
        insort = bisect.insort
        bisect_left = bisect.bisect_left

        batch_iter = source.batches()
        exhausted = False
        # Eager-block scheduling state.  A bank that enters the pending
        # state is evaluated exactly once: its head either hits the
        # open row (straight to ready) or needs a row cycle whose
        # classification and earliest activation time are *fixed* while
        # the bank stays pending — so deferred banks wait in a min-heap
        # of ``(act_ready, bank, t_pre, is_empty, row)`` entries and
        # are committed, in bank order, once the bus frontier reaches
        # them (or one is force-activated when nothing is ready).
        # `fresh` holds banks that became pending since the last
        # evaluation; `rescan_all` (set by refresh, which moves the
        # timing windows) invalidates every cached entry.
        fresh: List[int] = []
        defer_heap: List[Tuple[int, int, int, bool, int]] = []
        rescan_all = False
        heappush = heapq.heappush
        heappop = heapq.heappop

        def compact() -> None:
            """Trim served prefixes so memory stays bounded by the live
            window (queue depth + one batch), not the whole stream.

            Only list prefixes are dropped; sequence numbers stay
            absolute, and `stream_base` keeps `bank_stream` addressable
            by absolute position.  Loading only happens when admission
            has caught up with the loaded stream, so the surviving
            suffixes are bounded and the cost amortizes to O(1) per
            request.
            """
            nonlocal stream_base
            for b in range(n_banks):
                h = head[b]
                if h > 2048:
                    del rows_q[b][:h]
                    del cols_q[b][:h]
                    del seqs_q[b][:h]
                    if mixed:
                        del dirs_q[b][:h]
                    adm[b] -= h
                    head[b] = 0
            cut = pos
            for b in range(n_banks):
                if adm[b] > head[b]:
                    s = seqs_q[b][head[b]]
                    if s < cut:
                        cut = s
            if cut - stream_base > 2048:
                del bank_stream[:cut - stream_base]
                stream_base = cut

        def load_batch() -> bool:
            """Pull, validate and partition the next non-empty batch."""
            nonlocal loaded, exhausted
            compact()
            while True:
                item = next(batch_iter, None)
                if item is None:
                    exhausted = True
                    return False
                banks_col, rows_col, cols_col, dirs_col = item
                m = len(banks_col)
                if not m:
                    continue
                if len(rows_col) != m or len(cols_col) != m:
                    raise ValueError(
                        f"request chunk columns disagree in length: "
                        f"{m} banks, {len(rows_col)} rows, {len(cols_col)} columns"
                    )
                if (not mixed and m >= _NUMPY_PARTITION_MIN
                        and isinstance(banks_col, np.ndarray)):
                    _partition_numpy(banks_col, rows_col, cols_col)
                else:
                    _partition_python(banks_col, rows_col, cols_col, dirs_col)
                loaded += m
                return True

        def _partition_numpy(banks_arr: NDArray[Any], rows_col: Any,
                             cols_col: Any) -> None:
            """Bulk per-bank partition of one columnar chunk."""
            m = len(banks_arr)
            lo = int(banks_arr.min())
            hi = int(banks_arr.max())
            if lo < 0 or hi >= n_banks:
                banks = banks_arr.tolist()
                rows = _as_list(rows_col)
                cols = _as_list(cols_col)
                for k, bank in enumerate(banks):
                    if not 0 <= bank < n_banks:
                        raise ValueError(
                            f"request #{loaded + k} (bank={bank}, row={rows[k]}, "
                            f"column={cols[k]}): bank out of range [0, {n_banks})"
                        )
            order = np.argsort(banks_arr, kind="stable")
            counts = np.bincount(banks_arr, minlength=n_banks)
            starts = np.empty(n_banks, dtype=np.int64)
            starts[0] = 0
            np.cumsum(counts[:-1], out=starts[1:])
            rows_sorted = np.asarray(rows_col)[order]
            cols_sorted = np.asarray(cols_col)[order]
            seq_sorted = order + loaded
            for b in np.flatnonzero(counts).tolist():
                s = int(starts[b])
                e = s + int(counts[b])
                rows_q[b].extend(rows_sorted[s:e].tolist())
                cols_q[b].extend(cols_sorted[s:e].tolist())
                seqs_q[b].extend(seq_sorted[s:e].tolist())
            bank_stream.extend(banks_arr.tolist())

        def _partition_python(banks_col: Any, rows_col: Any, cols_col: Any,
                              dirs_col: Any) -> None:
            """Per-element partition (small or direction-carrying batches)."""
            banks = _as_list(banks_col)
            rows = _as_list(rows_col)
            cols = _as_list(cols_col)
            dirs = _as_list(dirs_col) if mixed else None
            base = loaded
            for k, bank in enumerate(banks):
                if bank < 0 or bank >= n_banks:
                    raise ValueError(
                        f"request #{base + k} (bank={bank}, row={rows[k]}, "
                        f"column={cols[k]}): bank out of range [0, {n_banks})"
                    )
                rows_q[bank].append(rows[k])
                cols_q[bank].append(cols[k])
                seqs_q[bank].append(base + k)
                if mixed:
                    dirs_q[bank].append(dirs[k])
            bank_stream.extend(banks)

        def intake() -> None:
            """Admit requests until the queue window is full or a bank
            FIFO at ``per_bank_depth`` blocks the stream head."""
            nonlocal pos, queued
            while queued < queue_depth:
                if pos == loaded:
                    if exhausted or not load_batch():
                        return
                b = bank_stream[pos - stream_base]
                if adm[b] - head[b] >= per_bank_depth:
                    return
                if adm[b] == head[b]:
                    bstate[b] = 1
                    fresh.append(b)
                adm[b] += 1
                pos += 1
                queued += 1

        stats = PhaseStats()
        n_requests = 0
        hits = misses = empties = acts = pres = refs = 0
        reads = writes = turnarounds = 0

        intake()

        # Cached refresh deadline: it only moves when an event fires.
        deadline = refresh.next_deadline_ps

        # Reused scratch list for multi-entry deferred commits; hoisted
        # so the arbiter loop never allocates a container per iteration.
        commit_buf: List[Tuple[int, int, int, bool, Optional[int]]] = []

        while queued:
            # ---- refresh ---------------------------------------------------
            while deadline is not None and last_cas >= deadline:
                event = refresh.due(last_cas)
                if event is None:
                    break
                ref_time = event.deadline_ps
                for b in event.banks:
                    if open_row[b] is not None:
                        t_pre = pre_allowed[b]
                        if quant:
                            remainder = t_pre % tck
                            if remainder:
                                t_pre += tck - remainder
                        if record:
                            commands.append(ScheduledCommand(t_pre, CommandType.PRE, bank=b))
                        pres += 1
                        open_row[b] = None
                        bank_free_at = t_pre + trp
                    else:
                        bank_free_at = act_allowed[b]
                    if bank_free_at > ref_time:
                        ref_time = bank_free_at
                if quant:
                    remainder = ref_time % tck
                    if remainder:
                        ref_time += tck - remainder
                for b in event.banks:
                    open_row[b] = None
                    if bstate[b] == 2:
                        del ready_order[bisect_left(ready_order, seqs_q[b][head[b]])]
                        bstate[b] = 1
                    act_allowed[b] = ref_time + event.duration_ps
                rescan_all = True  # cached deferral times are stale now
                refs += 1
                if record:
                    kind = CommandType.REF_ALL if all_bank_refresh else CommandType.REF_BANK
                    commands.append(
                        ScheduledCommand(
                            ref_time,
                            kind,
                            bank=-1 if all_bank_refresh else event.banks[0],
                        )
                    )
                deadline = refresh.next_deadline_ps

            # ---- eager per-bank row management ----------------------------
            # See the module docstring; identical policy in both modes.
            # Newly-pending banks are evaluated once: a head hit goes
            # straight to `ready`, a row cycle is classified and parked
            # in the deferral heap with its fixed activation-ready time.
            if rescan_all:
                # Refresh moved timing windows and open rows: every
                # cached evaluation is stale, rebuild from scratch
                # (ascending bank order, like the pre-engine scan).
                rescan_all = False
                del fresh[:]
                del defer_heap[:]
                for b in range(n_banks):
                    if bstate[b] != 1:
                        continue
                    row = rows_q[b][head[b]]
                    current = open_row[b]
                    if current == row:
                        bstate[b] = 2
                        insort(ready_order, seqs_q[b][head[b]])
                        hits += 1
                    elif current is None:
                        defer_heap.append((act_allowed[b], b, -1, True, row))
                    else:
                        t_pre = pre_allowed[b]
                        if quant:
                            remainder = t_pre % tck
                            if remainder:
                                t_pre += tck - remainder
                        defer_heap.append((t_pre + trp, b, t_pre, False, row))
                heapq.heapify(defer_heap)
            elif fresh:
                for b in sorted(fresh) if len(fresh) > 1 else fresh:
                    row = rows_q[b][head[b]]
                    current = open_row[b]
                    if current == row:
                        bstate[b] = 2
                        insort(ready_order, seqs_q[b][head[b]])
                        hits += 1
                    elif current is None:
                        heappush(defer_heap, (act_allowed[b], b, -1, True, row))
                    else:
                        t_pre = pre_allowed[b]
                        if quant:
                            remainder = t_pre % tck
                            if remainder:
                                t_pre += tck - remainder
                        heappush(defer_heap, (t_pre + trp, b, t_pre, False, row))
                del fresh[:]

            # Commit every deferred activation the bus frontier has
            # reached — in bank order, matching the pre-engine scan.
            # When nothing is ready and nothing is reachable, the
            # earliest (act_ready, bank) entry is force-activated
            # beyond the frontier, exactly the seed's forced pass.
            if defer_heap:
                committable = None
                if defer_heap[0][0] <= bus_free:
                    entry = heappop(defer_heap)
                    if defer_heap and defer_heap[0][0] <= bus_free:
                        del commit_buf[:]
                        commit_buf.append(entry)
                        commit_buf.append(heappop(defer_heap))
                        while defer_heap and defer_heap[0][0] <= bus_free:
                            commit_buf.append(heappop(defer_heap))
                        commit_buf.sort(key=_ENTRY_BANK)
                        committable = commit_buf
                    else:
                        committable = (entry,)
                elif not ready_order:
                    committable = (heappop(defer_heap),)
                if committable:
                    for act_ready, b, t_pre, is_empty, row in committable:
                        if is_empty:
                            empties += 1
                        else:
                            misses += 1
                            pres += 1
                            if record:
                                commands.append(ScheduledCommand(t_pre, CommandType.PRE, bank=b))
                        bg = bg_of[b]
                        t_act = act_ready
                        if last_act != _FAR_PAST:
                            spacing = trrd_l if bg == last_act_bg else trrd_s
                            t = last_act + spacing
                            if t > t_act:
                                t_act = t
                        t = faw_ring[faw_idx] + tfaw
                        if t > t_act:
                            t_act = t
                        if quant:
                            remainder = t_act % tck
                            if remainder:
                                t_act += tck - remainder
                        faw_ring[faw_idx] = t_act
                        faw_idx = (faw_idx + 1) & 3
                        last_act = t_act
                        last_act_bg = bg
                        acts += 1
                        if record:
                            commands.append(ScheduledCommand(t_act, CommandType.ACT, bank=b, row=row))
                        open_row[b] = row
                        act_time[b] = t_act
                        cas_allowed[b] = t_act + trcd
                        pre_allowed[b] = t_act + tras
                        if auto_close:
                            streak[b] = 0
                        bstate[b] = 2
                        insort(ready_order, seqs_q[b][head[b]])

            # ---- CAS arbitration -------------------------------------------
            # Both modes walk the ready heads oldest-first (`ready_order`
            # is sorted by sequence number) and stop at the first head
            # that achieves the earliest possible issue slot — identical
            # decisions to scanning every candidate, usually after one
            # or two evaluations.
            if not mixed:
                # Homogeneous: `bound` is the earliest (quantized) slot
                # anything could get; achievers issue exactly there and
                # the oldest achiever wins.
                bound = last_cas + tccd_s
                t = bus_free - latency
                if t > bound:
                    bound = t
                if quant:
                    remainder = bound % tck
                    if remainder:
                        bound += tck - remainder
                chosen = -1
                chosen_i = -1
                best_pb = _FAR_FUTURE
                achieved = False
                i = 0
                for p in ready_order:
                    b = bank_stream[p - stream_base]
                    pb = cas_allowed[b]
                    t = last_cas_bg[bg_of[b]] + tccd_l
                    if t > pb:
                        pb = t
                    if pb <= bound:
                        chosen = b
                        chosen_i = i
                        achieved = True
                        break
                    if pb < best_pb:
                        best_pb = pb
                        chosen = b
                        chosen_i = i
                    i += 1
                if chosen < 0:
                    # Defensive: cannot happen — every non-empty FIFO
                    # head is in `ready` after the eager loop above.
                    raise RuntimeError("scheduler deadlock: no prepared bank head")
                if achieved:
                    t_cas = bound
                else:
                    t_cas = best_pb
                    if quant:
                        remainder = t_cas % tck
                        if remainder:
                            t_cas += tck - remainder
                req_read = is_read
            else:
                # Mixed: per-candidate evaluation with the turnaround
                # rule set (tRTW after a read command, tWTR_S/L after
                # write data); earliest quantized slot wins, ties to the
                # oldest request.  `floor` is the one constraint shared
                # by every candidate, so matching it ends the walk.
                floor = last_cas + tccd_s
                if quant:
                    remainder = floor % tck
                    if remainder:
                        floor += tck - remainder
                best_cas = _FAR_FUTURE
                chosen = -1
                chosen_i = -1
                req_read = True
                i = 0
                for p in ready_order:
                    b = bank_stream[p - stream_base]
                    h = head[b]
                    b_read = dirs_q[b][h]
                    bg = bg_of[b]
                    t_cas_b = cas_allowed[b]
                    t = last_cas + tccd_s
                    if t > t_cas_b:
                        t_cas_b = t
                    t = last_cas_bg[bg] + tccd_l
                    if t > t_cas_b:
                        t_cas_b = t
                    t = bus_free - (cl if b_read else cwl)
                    if t > t_cas_b:
                        t_cas_b = t
                    if b_read:
                        # write -> read: tWTR after the last write data.
                        if last_wr_data_end != _FAR_PAST:
                            spacing = twtr_l if bg == last_wr_bg else twtr_s
                            t = last_wr_data_end + spacing
                            if t > t_cas_b:
                                t_cas_b = t
                    else:
                        # read -> write: tRTW after the last read command.
                        if last_rd_cmd != _FAR_PAST:
                            t = last_rd_cmd + trtw
                            if t > t_cas_b:
                                t_cas_b = t
                    if quant:
                        remainder = t_cas_b % tck
                        if remainder:
                            t_cas_b += tck - remainder
                    if t_cas_b < best_cas:
                        best_cas = t_cas_b
                        chosen = b
                        chosen_i = i
                        req_read = b_read
                        if t_cas_b == floor:
                            break
                    i += 1
                if chosen < 0:
                    raise RuntimeError("scheduler deadlock: no prepared bank head")
                t_cas = best_cas
                latency = cl if req_read else cwl

            # ---- pop, timeline update, intake ------------------------------
            h = head[chosen]
            rq = rows_q[chosen]
            row = rq[h]
            col = cols_q[chosen][h]
            del ready_order[chosen_i]
            h += 1
            head[chosen] = h
            queued -= 1
            closing = False
            if auto_close:
                s = streak[chosen] + 1
                if s >= cap_limit:
                    closing = True
                    s = 0
                streak[chosen] = s
            if adm[chosen] == h:
                bstate[chosen] = 0
            elif not closing and rq[h] == open_row[chosen]:
                hits += 1
                insort(ready_order, seqs_q[chosen][h])
            else:
                bstate[chosen] = 1
                fresh.append(chosen)

            bg = bg_of[chosen]
            last_cas = t_cas
            last_cas_bg[bg] = t_cas
            data_end = t_cas + latency + burst
            bus_free = data_end
            last_data_end = data_end
            if mixed:
                if last_was_read is not None and last_was_read != req_read:
                    turnarounds += 1
                last_was_read = req_read
                if req_read:
                    reads += 1
                    last_rd_cmd = t_cas
                    t = t_cas + trtp
                else:
                    writes += 1
                    last_wr_data_end = data_end
                    last_wr_bg = bg
                    t = data_end + twr
            elif is_read:
                t = t_cas + trtp
            else:
                t = data_end + twr
            if t > pre_allowed[chosen]:
                pre_allowed[chosen] = t
            if record:
                kind = CommandType.RD if req_read else CommandType.WR
                commands.append(
                    ScheduledCommand(
                        t_cas, kind, bank=chosen, row=row, column=col, request_id=n_requests
                    )
                )
            n_requests += 1
            if closing:
                # Auto-precharge: close the row at its precharge-ready
                # time (tRAS / tRTP / tWR already folded into
                # `pre_allowed` above), exactly where an eager row-miss
                # PRE would land.
                t_pre = pre_allowed[chosen]
                if quant:
                    remainder = t_pre % tck
                    if remainder:
                        t_pre += tck - remainder
                if record:
                    commands.append(ScheduledCommand(t_pre, CommandType.PRE, bank=chosen))
                pres += 1
                open_row[chosen] = None
                act_allowed[chosen] = t_pre + trp
            # Inline single-slot admission: the pop freed exactly one
            # window slot and the next request is usually already
            # loaded — equivalent to (but cheaper than) intake().
            if pos < loaded and queued == queue_depth - 1:
                b = bank_stream[pos - stream_base]
                if adm[b] - head[b] < per_bank_depth:
                    if adm[b] == head[b]:
                        bstate[b] = 1
                        fresh.append(b)
                    adm[b] += 1
                    pos += 1
                    queued += 1
            else:
                intake()

        stats.requests = n_requests
        stats.page_hits = hits
        stats.page_misses = misses
        stats.page_empties = empties
        stats.activates = acts
        stats.precharges = pres
        stats.refreshes = refs
        stats.data_time_ps = n_requests * burst
        stats.makespan_ps = last_data_end
        if not mixed:
            if is_read:
                reads = n_requests
            else:
                writes = n_requests
        ref_key = (CommandType.REF_ALL if all_bank_refresh else CommandType.REF_BANK).value
        if mixed:
            counts = {
                CommandType.ACT.value: acts,
                CommandType.PRE.value: pres,
                ref_key: refs,
            }
            # Only directions that actually occurred get a CAS key, so a
            # single-direction mixed stream produces the exact dict a
            # homogeneous phase reports.
            if reads:
                counts[CommandType.RD.value] = reads
            if writes:
                counts[CommandType.WR.value] = writes
            stats.command_counts = counts
        else:
            stats.command_counts = {
                CommandType.ACT.value: acts,
                CommandType.PRE.value: pres,
                (CommandType.RD if is_read else CommandType.WR).value: n_requests,
                ref_key: refs,
            }
        # Energy tallies cost nothing extra: every counter the energy
        # model charges already exists for the scheduling statistics.
        stats.energy_tally = EnergyTally(act_pre=acts, rd=reads, wr=writes,
                                         ref=refs, makespan_ps=last_data_end)
        return EngineResult(stats=stats, commands=commands, reads=reads,
                            writes=writes, turnarounds=turnarounds)
