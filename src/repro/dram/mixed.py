"""Mixed read/write traffic: the interleaver's steady-state operation.

The paper reports write and read phases separately (their minimum sets
throughput), because in the real system the two phases run on *separate
devices* in double-buffer fashion or alternate in large blocks.  A
single-device design could also interleave the streams request by
request — writing frame k+1 while reading frame k — at the price of
data-bus turnaround penalties (tRTW between a read and a write command,
tWTR between write data and a read command).

:func:`run_mixed_phase` schedules such a mixed stream through the
shared :class:`~repro.dram.engine.SchedulingEngine` — the same per-bank
queues, eager row management and age-fair CAS arbiter as the
homogeneous :meth:`~repro.dram.controller.MemoryController.run_phase`,
with the engine's direction-turnaround rule set active;
:func:`steady_state_interleaver` builds the canonical 1:1 write/read
interleaving of two frames and reports the utilization split.  The
result quantifies how much turnaround a fine-grained single-device
design would pay, and thereby why the per-phase (block-alternating)
methodology of the paper is the right operating model.

Since the unified-engine refactor mixed runs also fill
``stats.command_counts`` and honor ``policy.record_commands``, so a
mixed schedule can be dumped with
:func:`repro.dram.trace.write_trace` and independently validated with
:class:`repro.dram.trace.TraceChecker` exactly like a homogeneous one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Tuple, Union

from repro.dram.commands import ScheduledCommand
from repro.dram.controller import ENGINE_GENERAL, ENGINE_KERNEL, \
    ControllerConfig, _check_engine
from repro.dram.engine import MixedSource, SchedulingEngine
from repro.dram.presets import DramConfig
from repro.dram.stats import PhaseStats
from repro.mapping.base import InterleaverMapping

if TYPE_CHECKING:
    from repro.dram.kernel import KernelEngine

#: A mixed request: (is_read, bank, row, column).
MixedRequest = Tuple[bool, int, int, int]


@dataclass(frozen=True)
class MixedResult:
    """Outcome of a mixed-traffic run.

    Attributes:
        stats: aggregate phase statistics (both directions combined).
        reads: number of read bursts.
        writes: number of write bursts.
        turnarounds: bus direction switches that occurred.
        commands: the scheduled command list (only populated when the
            policy sets ``record_commands``).
    """

    stats: PhaseStats
    reads: int
    writes: int
    turnarounds: int
    commands: List[ScheduledCommand] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Data-bus utilization of the whole mixed run."""
        return self.stats.utilization


def run_mixed_phase(
    config: DramConfig,
    requests: Iterable[MixedRequest],
    policy: Optional[ControllerConfig] = None,
    engine: str = ENGINE_GENERAL,
) -> MixedResult:
    """Schedule a mixed read/write request stream.

    Same engine as
    :meth:`repro.dram.controller.MemoryController.run_phase` (per-bank
    queues, eager row management, age-fair CAS arbiter) plus the
    direction-turnaround rules:

    * read -> write: ``WR`` command at least ``tRTW`` after the ``RD``;
    * write -> read: ``RD`` command at least ``tWTR_S``/``tWTR_L``
      (bank-group-discriminated) after the end of write data.

    The ``engine=`` hook mirrors the homogeneous one
    (:data:`~repro.dram.controller.ENGINE_GENERAL` /
    :data:`~repro.dram.controller.ENGINE_KERNEL`).  Mixed streams
    always schedule through the shared general core — the kernel
    delegates them by contract — so both values are valid for every
    workload shape and produce identical results.
    """
    policy = policy or ControllerConfig()
    _check_engine(engine)
    scheduler: "Union[SchedulingEngine, KernelEngine]"
    if engine == ENGINE_KERNEL:
        from repro.dram.kernel import KernelEngine

        scheduler = KernelEngine(config, policy)
    else:
        scheduler = SchedulingEngine(config, policy)
    result = scheduler.run(MixedSource(requests))
    return MixedResult(stats=result.stats, reads=result.reads,
                       writes=result.writes, turnarounds=result.turnarounds,
                       commands=result.commands)


class RowShiftedMapping(InterleaverMapping):
    """Places a mapping's frame at a different DRAM row region.

    Used to double-buffer two frames on one device: the frame being
    read lives ``row_offset`` rows above the frame being written, so
    the two streams never share pages.
    """

    def __init__(self, inner: InterleaverMapping, row_offset: int) -> None:
        super().__init__(inner.space, inner.geometry)
        if row_offset < 0:
            raise ValueError(f"row_offset must be >= 0, got {row_offset}")
        self.inner = inner
        self.row_offset = row_offset
        self.name = inner.name
        if row_offset + inner.rows_used() > inner.geometry.rows:
            raise ValueError(
                f"shifted frame needs rows up to {row_offset + inner.rows_used()} "
                f"but the device has {inner.geometry.rows}"
            )

    def address_tuple(self, i: int, j: int) -> Tuple[int, int, int]:
        """The inner mapping's address, shifted ``row_offset`` rows up."""
        bank, row, column = self.inner.address_tuple(i, j)
        return bank, row + self.row_offset, column

    def rows_used(self) -> int:
        """Rows of the *unshifted* frame (the shift is capacity-checked)."""
        return self.inner.rows_used()


def interleaved_stream(
    write_mapping: InterleaverMapping,
    read_mapping: InterleaverMapping,
    group: int = 1,
) -> Iterator[MixedRequest]:
    """1:1 interleaving of a write frame and a read frame.

    Args:
        write_mapping: mapping of the frame being written (row-wise).
        read_mapping: mapping of the frame being read (column-wise);
            usually the same mapping at a different base region.
        group: number of same-direction requests issued back to back
            before switching direction (larger groups amortize the
            turnaround penalty).
    """
    if group < 1:
        raise ValueError(f"group must be >= 1, got {group}")
    writers = iter(write_mapping.write_addresses())
    readers = iter(read_mapping.read_addresses())
    live = True
    while live:
        live = False
        for _ in range(group):
            item = next(writers, None)
            if item is not None:
                live = True
                yield (False,) + item
        for _ in range(group):
            item = next(readers, None)
            if item is not None:
                live = True
                yield (True,) + item


def steady_state_interleaver(
    config: DramConfig,
    mapping: InterleaverMapping,
    group: int = 1,
    policy: Optional[ControllerConfig] = None,
    engine: str = ENGINE_GENERAL,
) -> MixedResult:
    """Simulate the steady-state write(k+1)/read(k) operation.

    The read frame is double-buffered ``mapping.rows_used()`` rows above
    the write frame so the two streams never share pages.  ``engine``
    is the scheduler-selection hook of :func:`run_mixed_phase`.
    """
    read_mapping = RowShiftedMapping(mapping, mapping.rows_used())
    stream = interleaved_stream(mapping, read_mapping, group)
    return run_mixed_phase(config, stream, policy, engine=engine)
