"""Mixed read/write traffic: the interleaver's steady-state operation.

The paper reports write and read phases separately (their minimum sets
throughput), because in the real system the two phases run on *separate
devices* in double-buffer fashion or alternate in large blocks.  A
single-device design could also interleave the streams request by
request — writing frame k+1 while reading frame k — at the price of
data-bus turnaround penalties (tRTW between a read and a write command,
tWTR between write data and a read command).

:func:`run_mixed_phase` schedules such a mixed stream with the same
per-bank-FIFO architecture as the homogeneous scheduler and charges the
turnaround constraints;
:func:`steady_state_interleaver` builds the canonical 1:1 write/read
interleaving of two frames and reports the utilization split.  The
result quantifies how much turnaround a fine-grained single-device
design would pay, and thereby why the per-phase (block-alternating)
methodology of the paper is the right operating model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Iterator, List, Optional, Tuple

from repro.dram.controller import OP_READ, OP_WRITE, ControllerConfig
from repro.dram.presets import REFRESH_ALL_BANK, DramConfig
from repro.dram.refresh import RefreshScheduler
from repro.dram.stats import PhaseStats
from repro.mapping.base import InterleaverMapping

_FAR_PAST = -(10**15)
_FAR_FUTURE = 10**18

#: A mixed request: (is_read, bank, row, column).
MixedRequest = Tuple[bool, int, int, int]


@dataclass(frozen=True)
class MixedResult:
    """Outcome of a mixed-traffic run.

    Attributes:
        stats: aggregate phase statistics (both directions combined).
        reads: number of read bursts.
        writes: number of write bursts.
        turnarounds: bus direction switches that occurred.
    """

    stats: PhaseStats
    reads: int
    writes: int
    turnarounds: int

    @property
    def utilization(self) -> float:
        return self.stats.utilization


def run_mixed_phase(
    config: DramConfig,
    requests: Iterable[MixedRequest],
    policy: Optional[ControllerConfig] = None,
) -> MixedResult:
    """Schedule a mixed read/write request stream.

    Same architecture as
    :meth:`repro.dram.controller.MemoryController.run_phase` (per-bank
    FIFOs, eager row management, age-fair CAS arbiter) plus the
    direction-turnaround rules:

    * read -> write: ``WR`` command at least ``tRTW`` after the ``RD``;
    * write -> read: ``RD`` command at least ``tWTR_S``/``tWTR_L``
      (bank-group-discriminated) after the end of write data.
    """
    policy = policy or ControllerConfig()
    timing = config.timing
    geometry = config.geometry
    n_banks = geometry.banks
    bank_groups = geometry.bank_groups
    burst = config.burst_duration_ps
    # Same command-clock grid rule as the homogeneous scheduler: only
    # quantize when the clock is exact on the integer-ps timeline (see
    # repro.dram.controller); tck=1 degenerates to continuous slots.
    tck = timing.tck if burst % timing.tck == 0 else 1
    quant = tck > 1

    trp, trcd, tras = timing.trp, timing.trcd, timing.tras
    trrd_s, trrd_l, tfaw = timing.trrd_s, timing.trrd_l, timing.tfaw
    tccd_s, tccd_l = timing.tccd_s, timing.tccd_l
    twr, trtp, trtw = timing.twr, timing.trtp, timing.trtw
    twtr_s, twtr_l = timing.twtr_s, timing.twtr_l
    cl, cwl = timing.cl, timing.cwl

    open_row: List[Optional[int]] = [None] * n_banks
    cas_allowed = [0] * n_banks
    pre_allowed = [0] * n_banks
    act_allowed = [0] * n_banks
    prepared = [False] * n_banks

    refresh = RefreshScheduler(config, enabled=policy.refresh_enabled)
    all_bank_refresh = config.refresh_mode == REFRESH_ALL_BANK

    last_cas = _FAR_PAST
    last_cas_bg = [_FAR_PAST] * bank_groups
    last_act = _FAR_PAST
    last_act_bg = -1
    faw_ring = [_FAR_PAST] * 4
    faw_idx = 0
    bus_free = 0
    last_data_end = 0
    # Direction bookkeeping for turnaround penalties.
    last_was_read: Optional[bool] = None
    last_rd_cmd = _FAR_PAST
    last_wr_data_end = _FAR_PAST
    last_wr_bg = -1

    fifos: List[Deque[Tuple[int, int, int, bool]]] = [deque() for _ in range(n_banks)]
    queued = 0
    seq = 0
    stalled: Optional[MixedRequest] = None
    exhausted = False
    source: Iterator[MixedRequest] = iter(requests)

    stats = PhaseStats()
    hits = misses = empties = acts = pres = refs = 0
    n_requests = reads = writes = turnarounds = 0

    def refill() -> None:
        nonlocal queued, seq, stalled, exhausted
        while queued < policy.queue_depth:
            if stalled is not None:
                is_read, bank, row, col = stalled
                if len(fifos[bank]) >= policy.per_bank_depth:
                    return
                fifos[bank].append((row, col, seq, is_read))
                seq += 1
                queued += 1
                stalled = None
                continue
            if exhausted:
                return
            item = next(source, None)
            if item is None:
                exhausted = True
                return
            is_read, bank, row, col = item
            if len(fifos[bank]) >= policy.per_bank_depth:
                stalled = item
                return
            fifos[bank].append((row, col, seq, is_read))
            seq += 1
            queued += 1

    refill()

    while queued:
        # ---- refresh (same policy as the homogeneous scheduler) ------
        deadline = refresh.next_deadline_ps
        while deadline is not None and last_cas >= deadline:
            event = refresh.due(last_cas)
            if event is None:
                break
            ref_time = event.deadline_ps
            for b in event.banks:
                if open_row[b] is not None:
                    pres += 1
                    open_row[b] = None
                    prepared[b] = False
                    t_pre = pre_allowed[b]
                    if quant:
                        remainder = t_pre % tck
                        if remainder:
                            t_pre += tck - remainder
                    ready = t_pre + trp
                else:
                    ready = act_allowed[b]
                if ready > ref_time:
                    ref_time = ready
            if quant:
                remainder = ref_time % tck
                if remainder:
                    ref_time += tck - remainder
            for b in event.banks:
                open_row[b] = None
                prepared[b] = False
                act_allowed[b] = ref_time + event.duration_ps
            refs += 1
            deadline = refresh.next_deadline_ps

        # ---- eager row management with the ACT horizon ----------------
        horizon = bus_free
        any_prepared = False
        forced_bank = -1
        while True:
            deferred_ready = _FAR_FUTURE
            deferred_bank = -1
            for b in range(n_banks):
                if not fifos[b]:
                    continue
                if prepared[b]:
                    any_prepared = True
                    continue
                row = fifos[b][0][0]
                current = open_row[b]
                if current == row:
                    prepared[b] = True
                    hits += 1
                    any_prepared = True
                    continue
                if current is None:
                    act_ready = act_allowed[b]
                else:
                    t_pre = pre_allowed[b]
                    if quant:
                        remainder = t_pre % tck
                        if remainder:
                            t_pre += tck - remainder
                    act_ready = t_pre + trp
                if act_ready > horizon and b != forced_bank:
                    if act_ready < deferred_ready:
                        deferred_ready = act_ready
                        deferred_bank = b
                    continue
                if current is None:
                    empties += 1
                else:
                    misses += 1
                    pres += 1
                bg = b % bank_groups
                t_act = act_ready
                if last_act != _FAR_PAST:
                    spacing = trrd_l if bg == last_act_bg else trrd_s
                    t = last_act + spacing
                    if t > t_act:
                        t_act = t
                t = faw_ring[faw_idx] + tfaw
                if t > t_act:
                    t_act = t
                if quant:
                    remainder = t_act % tck
                    if remainder:
                        t_act += tck - remainder
                faw_ring[faw_idx] = t_act
                faw_idx = (faw_idx + 1) & 3
                last_act = t_act
                last_act_bg = bg
                acts += 1
                open_row[b] = row
                cas_allowed[b] = t_act + trcd
                pre_allowed[b] = t_act + tras
                prepared[b] = True
                any_prepared = True
            if any_prepared or deferred_bank < 0:
                break
            forced_bank = deferred_bank

        # ---- CAS arbitration with turnaround ---------------------------
        best_cas = _FAR_FUTURE
        best_seq = _FAR_FUTURE
        chosen = -1
        chosen_cas = 0
        for b in range(n_banks):
            if not prepared[b] or not fifos[b]:
                continue
            row, col, seq_b, is_read = fifos[b][0]
            bg = b % bank_groups
            latency = cl if is_read else cwl
            t_cas = cas_allowed[b]
            t = last_cas + tccd_s
            if t > t_cas:
                t_cas = t
            t = last_cas_bg[bg] + tccd_l
            if t > t_cas:
                t_cas = t
            t = bus_free - latency
            if t > t_cas:
                t_cas = t
            if is_read:
                # write -> read: wait tWTR after the last write's data.
                if last_wr_data_end != _FAR_PAST:
                    spacing = twtr_l if bg == last_wr_bg else twtr_s
                    t = last_wr_data_end + spacing
                    if t > t_cas:
                        t_cas = t
            else:
                # read -> write: tRTW after the last read command.
                if last_rd_cmd != _FAR_PAST:
                    t = last_rd_cmd + trtw
                    if t > t_cas:
                        t_cas = t
            if quant:
                remainder = t_cas % tck
                if remainder:
                    t_cas += tck - remainder
            if t_cas < best_cas or (t_cas == best_cas and seq_b < best_seq):
                best_cas = t_cas
                best_seq = seq_b
                chosen = b
                chosen_cas = t_cas
        if chosen < 0:
            raise RuntimeError("scheduler deadlock: no prepared bank head")

        row, col, _seq, is_read = fifos[chosen].popleft()
        queued -= 1
        prepared[chosen] = bool(fifos[chosen]) and fifos[chosen][0][0] == open_row[chosen]
        if prepared[chosen]:
            hits += 1

        bg = chosen % bank_groups
        latency = cl if is_read else cwl
        t_cas = chosen_cas
        last_cas = t_cas
        last_cas_bg[bg] = t_cas
        data_end = t_cas + latency + burst
        bus_free = data_end
        last_data_end = data_end
        if last_was_read is not None and last_was_read != is_read:
            turnarounds += 1
        last_was_read = is_read
        if is_read:
            reads += 1
            last_rd_cmd = t_cas
            t = t_cas + trtp
        else:
            writes += 1
            last_wr_data_end = data_end
            last_wr_bg = bg
            t = data_end + twr
        if t > pre_allowed[chosen]:
            pre_allowed[chosen] = t
        n_requests += 1
        refill()

    stats.requests = n_requests
    stats.page_hits = hits
    stats.page_misses = misses
    stats.page_empties = empties
    stats.activates = acts
    stats.precharges = pres
    stats.refreshes = refs
    stats.data_time_ps = n_requests * burst
    stats.makespan_ps = last_data_end
    return MixedResult(stats=stats, reads=reads, writes=writes,
                       turnarounds=turnarounds)


class RowShiftedMapping(InterleaverMapping):
    """Places a mapping's frame at a different DRAM row region.

    Used to double-buffer two frames on one device: the frame being
    read lives ``row_offset`` rows above the frame being written, so
    the two streams never share pages.
    """

    def __init__(self, inner: InterleaverMapping, row_offset: int):
        super().__init__(inner.space, inner.geometry)
        if row_offset < 0:
            raise ValueError(f"row_offset must be >= 0, got {row_offset}")
        self.inner = inner
        self.row_offset = row_offset
        self.name = inner.name
        if row_offset + inner.rows_used() > inner.geometry.rows:
            raise ValueError(
                f"shifted frame needs rows up to {row_offset + inner.rows_used()} "
                f"but the device has {inner.geometry.rows}"
            )

    def address_tuple(self, i: int, j: int):
        bank, row, column = self.inner.address_tuple(i, j)
        return bank, row + self.row_offset, column

    def rows_used(self) -> int:
        return self.inner.rows_used()


def interleaved_stream(
    write_mapping: InterleaverMapping,
    read_mapping: InterleaverMapping,
    group: int = 1,
) -> Iterator[MixedRequest]:
    """1:1 interleaving of a write frame and a read frame.

    Args:
        write_mapping: mapping of the frame being written (row-wise).
        read_mapping: mapping of the frame being read (column-wise);
            usually the same mapping at a different base region.
        group: number of same-direction requests issued back to back
            before switching direction (larger groups amortize the
            turnaround penalty).
    """
    if group < 1:
        raise ValueError(f"group must be >= 1, got {group}")
    writers = iter(write_mapping.write_addresses())
    readers = iter(read_mapping.read_addresses())
    live = True
    while live:
        live = False
        for _ in range(group):
            item = next(writers, None)
            if item is not None:
                live = True
                yield (False,) + item
        for _ in range(group):
            item = next(readers, None)
            if item is not None:
                live = True
                yield (True,) + item


def steady_state_interleaver(
    config: DramConfig,
    mapping: InterleaverMapping,
    group: int = 1,
    policy: Optional[ControllerConfig] = None,
) -> MixedResult:
    """Simulate the steady-state write(k+1)/read(k) operation.

    The read frame is double-buffered ``mapping.rows_used()`` rows above
    the write frame so the two streams never share pages.
    """
    read_mapping = RowShiftedMapping(mapping, mapping.rows_used())
    stream = interleaved_stream(mapping, read_mapping, group)
    return run_mixed_phase(config, stream, policy)
