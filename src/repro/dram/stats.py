"""Bandwidth and page-policy statistics for one simulated access phase.

Utilization follows the paper's definition: the fraction of the phase's
wall-clock time during which the data bus transfers payload,

    utilization = (bursts x burst_duration) / makespan

where the makespan runs from the phase start (time 0) to the end of the
last data burst.  The maximum interleaver throughput is set by the
*minimum* utilization across the write and read phases
(:func:`min_phase_utilization`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class EnergyTally:
    """Per-command tallies the energy model charges (engine-filled).

    Pure integer counters: the scheduling engine derives one of these
    from counters it already keeps in its hot loop, so command-level
    energy accounting costs nothing per request — no per-command Python
    object is ever created for it.  :func:`repro.dram.energy
    .energy_from_tally` turns a tally into an
    :class:`~repro.dram.energy.EnergyReport`, and the differential
    battery in ``tests/dram/test_energy_differential.py`` proves the
    tally exactly equals a recount over the recorded command list.

    Attributes:
        act_pre: ACT commands issued (each is charged as one ACT/PRE
            row-cycle pair; refresh-forced extra PREs ride along free,
            like DRAMPower's pairing convention).
        rd: read bursts issued.
        wr: write bursts issued.
        ref: refresh commands issued (REFab or REFpb, whichever the
            configuration's refresh mode uses).
        makespan_ps: phase start to end of last data burst — the window
            over which background power is integrated.
    """

    act_pre: int = 0
    rd: int = 0
    wr: int = 0
    ref: int = 0
    makespan_ps: int = 0

    def merge(self, other: "EnergyTally") -> "EnergyTally":
        """Combine two phases as if run back to back."""
        return EnergyTally(
            act_pre=self.act_pre + other.act_pre,
            rd=self.rd + other.rd,
            wr=self.wr + other.wr,
            ref=self.ref + other.ref,
            makespan_ps=self.makespan_ps + other.makespan_ps,
        )


@dataclass
class PhaseStats:
    """Counters collected while simulating one access phase.

    Attributes:
        requests: CAS commands issued for payload (one per burst).
        page_hits: requests served from an already-open row.
        page_misses: requests that found a different row open (PRE+ACT).
        page_empties: requests that found the bank precharged (ACT only).
        activates: ACT commands issued.
        precharges: PRE commands issued.
        refreshes: refresh commands issued.
        data_time_ps: total data-bus busy time.
        makespan_ps: time from phase start to end of last burst.
        command_counts: per-command-type issue counts.
        energy_tally: energy-model command tallies (engine-filled;
            excluded from equality so engine stats still compare equal
            to oracles that never tallied energy).
        kernel_fallback: ``True`` when a kernel-engine run delegated to
            the general engine because the selected scheduling
            discipline is not kernel-implemented (see
            :mod:`repro.dram.policy`).  An execution annotation, not a
            scheduling outcome: excluded from equality (results are
            bit-identical either way) and from store payloads.
    """

    requests: int = 0
    page_hits: int = 0
    page_misses: int = 0
    page_empties: int = 0
    activates: int = 0
    precharges: int = 0
    refreshes: int = 0
    data_time_ps: int = 0
    makespan_ps: int = 0
    command_counts: Dict[str, int] = field(default_factory=dict)
    energy_tally: Optional[EnergyTally] = field(default=None, compare=False,
                                                repr=False)
    kernel_fallback: bool = field(default=False, compare=False, repr=False)

    @property
    def utilization(self) -> float:
        """Data-bus utilization over the phase (0.0 – 1.0)."""
        if self.makespan_ps <= 0:
            return 0.0
        return self.data_time_ps / self.makespan_ps

    @property
    def hit_rate(self) -> float:
        """Fraction of requests that were page hits."""
        if self.requests == 0:
            return 0.0
        return self.page_hits / self.requests

    @property
    def miss_rate(self) -> float:
        """Fraction of requests that were page misses (conflict)."""
        if self.requests == 0:
            return 0.0
        return self.page_misses / self.requests

    def merge(self, other: "PhaseStats") -> "PhaseStats":
        """Combine two phases as if run back to back (for reporting)."""
        merged = PhaseStats(
            requests=self.requests + other.requests,
            page_hits=self.page_hits + other.page_hits,
            page_misses=self.page_misses + other.page_misses,
            page_empties=self.page_empties + other.page_empties,
            activates=self.activates + other.activates,
            precharges=self.precharges + other.precharges,
            refreshes=self.refreshes + other.refreshes,
            data_time_ps=self.data_time_ps + other.data_time_ps,
            makespan_ps=self.makespan_ps + other.makespan_ps,
        )
        if self.energy_tally is not None and other.energy_tally is not None:
            merged.energy_tally = self.energy_tally.merge(other.energy_tally)
        for counts in (self.command_counts, other.command_counts):
            for name, count in counts.items():
                merged.command_counts[name] = merged.command_counts.get(name, 0) + count
        return merged

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.requests} requests, util={self.utilization:.2%}, "
            f"hits={self.page_hits}, misses={self.page_misses}, "
            f"empties={self.page_empties}, refreshes={self.refreshes}"
        )


def min_phase_utilization(write: PhaseStats, read: PhaseStats) -> float:
    """The interleaver-throughput-limiting utilization (paper, Sec. III)."""
    return min(write.utilization, read.utilization)
