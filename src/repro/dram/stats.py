"""Bandwidth and page-policy statistics for one simulated access phase.

Utilization follows the paper's definition: the fraction of the phase's
wall-clock time during which the data bus transfers payload,

    utilization = (bursts x burst_duration) / makespan

where the makespan runs from the phase start (time 0) to the end of the
last data burst.  The maximum interleaver throughput is set by the
*minimum* utilization across the write and read phases
(:func:`min_phase_utilization`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PhaseStats:
    """Counters collected while simulating one access phase.

    Attributes:
        requests: CAS commands issued for payload (one per burst).
        page_hits: requests served from an already-open row.
        page_misses: requests that found a different row open (PRE+ACT).
        page_empties: requests that found the bank precharged (ACT only).
        activates: ACT commands issued.
        precharges: PRE commands issued.
        refreshes: refresh commands issued.
        data_time_ps: total data-bus busy time.
        makespan_ps: time from phase start to end of last burst.
        command_counts: per-command-type issue counts.
    """

    requests: int = 0
    page_hits: int = 0
    page_misses: int = 0
    page_empties: int = 0
    activates: int = 0
    precharges: int = 0
    refreshes: int = 0
    data_time_ps: int = 0
    makespan_ps: int = 0
    command_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        """Data-bus utilization over the phase (0.0 – 1.0)."""
        if self.makespan_ps <= 0:
            return 0.0
        return self.data_time_ps / self.makespan_ps

    @property
    def hit_rate(self) -> float:
        """Fraction of requests that were page hits."""
        if self.requests == 0:
            return 0.0
        return self.page_hits / self.requests

    @property
    def miss_rate(self) -> float:
        """Fraction of requests that were page misses (conflict)."""
        if self.requests == 0:
            return 0.0
        return self.page_misses / self.requests

    def merge(self, other: "PhaseStats") -> "PhaseStats":
        """Combine two phases as if run back to back (for reporting)."""
        merged = PhaseStats(
            requests=self.requests + other.requests,
            page_hits=self.page_hits + other.page_hits,
            page_misses=self.page_misses + other.page_misses,
            page_empties=self.page_empties + other.page_empties,
            activates=self.activates + other.activates,
            precharges=self.precharges + other.precharges,
            refreshes=self.refreshes + other.refreshes,
            data_time_ps=self.data_time_ps + other.data_time_ps,
            makespan_ps=self.makespan_ps + other.makespan_ps,
        )
        for counts in (self.command_counts, other.command_counts):
            for name, count in counts.items():
                merged.command_counts[name] = merged.command_counts.get(name, 0) + count
        return merged

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.requests} requests, util={self.utilization:.2%}, "
            f"hits={self.page_hits}, misses={self.page_misses}, "
            f"empties={self.page_empties}, refreshes={self.refreshes}"
        )


def min_phase_utilization(write: PhaseStats, read: PhaseStats) -> float:
    """The interleaver-throughput-limiting utilization (paper, Sec. III)."""
    return min(write.utilization, read.utilization)
