"""High-level simulation entry points.

Glues together an interleaver index space, an address mapping and the
memory controller, and returns the per-phase bandwidth utilizations
that the paper's Table I reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.dram.controller import (
    ENGINE_GENERAL,
    OP_READ,
    OP_WRITE,
    ControllerConfig,
    MemoryController,
    PhaseResult,
)
from repro.dram.presets import DramConfig
from repro.dram.stats import PhaseStats, min_phase_utilization
from repro.mapping.base import InterleaverMapping

if TYPE_CHECKING:
    from repro.dram.mixed import MixedResult


@dataclass(frozen=True)
class InterleaverSimResult:
    """Write- and read-phase outcome for one (config, mapping) pair.

    Attributes:
        config_name: DRAM configuration name (e.g. ``"DDR4-3200"``).
        mapping_name: mapping identifier (``"row-major"``/``"optimized"``).
        write: write-phase statistics.
        read: read-phase statistics.
    """

    config_name: str
    mapping_name: str
    write: PhaseStats
    read: PhaseStats

    @property
    def write_utilization(self) -> float:
        """Data-bus utilization of the write phase."""
        return self.write.utilization

    @property
    def read_utilization(self) -> float:
        """Data-bus utilization of the read phase."""
        return self.read.utilization

    @property
    def min_utilization(self) -> float:
        """The throughput-limiting utilization (paper, Sec. III)."""
        return min_phase_utilization(self.write, self.read)

    def effective_bandwidth_bytes_per_s(self, config: DramConfig) -> float:
        """Sustained interleaver bandwidth on this configuration."""
        return self.min_utilization * config.peak_bandwidth_bytes_per_s


def simulate_phase(
    config: DramConfig,
    mapping: InterleaverMapping,
    op: str,
    policy: Optional[ControllerConfig] = None,
    *,
    use_arrays: Optional[bool] = None,
    chunk_size: Optional[int] = None,
    engine: str = ENGINE_GENERAL,
) -> PhaseStats:
    """Simulate a single write or read phase.

    Args:
        config: DRAM configuration to simulate.
        mapping: interleaver-to-DRAM address mapping.
        op: :data:`~repro.dram.controller.OP_WRITE` or
            :data:`~repro.dram.controller.OP_READ`; selects both the
            command type and the traversal order (writes are row-wise,
            reads column-wise).
        policy: controller policy overrides.
        use_arrays: feed the controller columnar address chunks from the
            mapping's vectorized kernel instead of per-element tuples.
            ``None`` (the default) auto-selects: arrays whenever the
            mapping advertises a true NumPy kernel
            (``mapping.vectorized``), tuples otherwise.  Both paths
            produce identical :class:`PhaseStats` (property-tested in
            ``tests/integration/test_vectorized_equivalence.py``).
        chunk_size: bursts per address chunk on the array path
            (``None`` = the mapping's default, bounded memory at paper
            scale).
        engine: scheduling-engine selection hook
            (:data:`~repro.dram.controller.ENGINE_GENERAL` /
            :data:`~repro.dram.controller.ENGINE_KERNEL`); both produce
            bit-identical statistics.
    """
    return simulate_phase_result(config, mapping, op, policy,
                                 use_arrays=use_arrays,
                                 chunk_size=chunk_size, engine=engine).stats


def simulate_phase_result(
    config: DramConfig,
    mapping: InterleaverMapping,
    op: str,
    policy: Optional[ControllerConfig] = None,
    *,
    use_arrays: Optional[bool] = None,
    chunk_size: Optional[int] = None,
    engine: str = ENGINE_GENERAL,
) -> PhaseResult:
    """Like :func:`simulate_phase`, returning the full :class:`PhaseResult`.

    With ``policy.record_commands`` set the result carries every
    scheduled command, ready for the independent JEDEC replay checker
    (:mod:`repro.dram.trace`) — the integration tests replay one
    recorded run per Table I (config, mapping) pair.
    """
    controller = MemoryController(config, policy, engine=engine)
    if op not in (OP_WRITE, OP_READ):
        raise ValueError(f"op must be {OP_WRITE!r} or {OP_READ!r}, got {op!r}")
    if use_arrays is None:
        use_arrays = mapping.vectorized
    if use_arrays:
        kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
        addresses = (
            mapping.write_addresses_array(**kwargs)
            if op == OP_WRITE
            else mapping.read_addresses_array(**kwargs)
        )
    else:
        addresses = (
            mapping.write_addresses() if op == OP_WRITE else mapping.read_addresses()
        )
    return controller.run_phase(addresses, op)


def simulate_interleaver(
    config: DramConfig,
    mapping: InterleaverMapping,
    policy: Optional[ControllerConfig] = None,
    *,
    use_arrays: Optional[bool] = None,
    chunk_size: Optional[int] = None,
    engine: str = ENGINE_GENERAL,
) -> InterleaverSimResult:
    """Simulate both phases of one interleaver frame (Table I cell pair)."""
    write = simulate_phase(config, mapping, OP_WRITE, policy,
                           use_arrays=use_arrays, chunk_size=chunk_size,
                           engine=engine)
    read = simulate_phase(config, mapping, OP_READ, policy,
                          use_arrays=use_arrays, chunk_size=chunk_size,
                          engine=engine)
    return InterleaverSimResult(
        config_name=config.name,
        mapping_name=mapping.name,
        write=write,
        read=read,
    )


def simulate_mixed_interleaver(
    config: DramConfig,
    mapping: InterleaverMapping,
    group: int = 16,
    policy: Optional[ControllerConfig] = None,
    engine: str = ENGINE_GENERAL,
) -> "MixedResult":
    """Simulate the steady-state interleaved write(k+1)/read(k) operation.

    The single-device counterpart of :func:`simulate_interleaver`: both
    frames run through one channel with the requests interleaved in
    same-direction blocks of ``group``, so the engine's turnaround rule
    set (tRTW/tWTR) is charged.  Returns a
    :class:`~repro.dram.mixed.MixedResult`.
    """
    # Imported here to keep the simulator importable without the mixed
    # module at module-load time (mixed imports the mapping base).
    from repro.dram.mixed import steady_state_interleaver

    return steady_state_interleaver(config, mapping, group=group,
                                    policy=policy, engine=engine)
