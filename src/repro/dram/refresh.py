"""Refresh scheduling policies.

Two policies cover the five standards in the paper:

* **All-bank refresh** (DDR3, DDR4): every ``tREFI`` the controller
  precharges the whole rank and issues REFab, stalling all banks for
  ``tRFC``.  This steals a fixed few percent of bandwidth — visible in
  the paper's optimized-mapping results, which top out around 92–96 %
  on DDR3/DDR4 with refresh enabled.
* **Per-bank refresh** (DDR5 REFsb, LPDDR4/LPDDR5 REFpb): banks are
  refreshed one at a time in round-robin order every per-bank interval;
  traffic to the other banks continues, so a mapping that spreads
  accesses over all banks hides refresh almost completely (the paper's
  ~100 % DDR5/LPDDR5 results).

The policy objects only decide *which* banks to quiesce and *when*; the
controller applies the timing.  Refresh can be disabled entirely, which
is legal whenever interleaver data lives shorter than the DRAM retention
period (32–64 ms) — the paper's ">99 % consistently" experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dram.presets import REFRESH_ALL_BANK, REFRESH_PER_BANK, DramConfig


@dataclass
class RefreshEvent:
    """One refresh decision handed to the controller.

    Attributes:
        deadline_ps: nominal time the refresh is due.
        banks: flat bank indices to quiesce (all banks for REFab).
        duration_ps: time the affected banks are unavailable (tRFC or
            tRFCpb).
    """

    deadline_ps: int
    banks: List[int]
    duration_ps: int


class RefreshScheduler:
    """Generates the refresh event stream for one configuration.

    Args:
        config: the DRAM configuration (interval/duration/policy).
        enabled: when ``False``, :meth:`due` never fires.
    """

    def __init__(self, config: DramConfig, enabled: bool = True) -> None:
        self.config = config
        self.enabled = enabled
        self._interval = config.timing.trefi
        self._next_deadline = self._interval
        self._rr_bank = 0
        if config.refresh_mode == REFRESH_PER_BANK:
            self._duration = config.timing.trfc_pb
        else:
            self._duration = config.timing.trfc

    @property
    def next_deadline_ps(self) -> Optional[int]:
        """Next refresh deadline, or ``None`` when refresh is disabled."""
        return self._next_deadline if self.enabled else None

    def due(self, now_ps: int) -> Optional[RefreshEvent]:
        """Return the pending refresh event if one is due at ``now_ps``.

        Consumes the deadline: the caller must apply the event.  Call in
        a loop until ``None`` in case the simulation jumped over several
        intervals at once.
        """
        if not self.enabled or now_ps < self._next_deadline:
            return None
        deadline = self._next_deadline
        self._next_deadline += self._interval
        if self.config.refresh_mode == REFRESH_ALL_BANK:
            banks = list(range(self.config.geometry.banks))
        else:
            banks = [self._rr_bank]
            self._rr_bank = (self._rr_bank + 1) % self.config.geometry.banks
        return RefreshEvent(deadline_ps=deadline, banks=banks, duration_ps=self._duration)

    def overhead_bound(self) -> float:
        """Upper bound on the bandwidth fraction refresh can steal.

        For all-bank refresh this is ``tRFC / tREFI``; for per-bank
        refresh the same ratio applies per bank but is usually hidden by
        bank parallelism, so the bound is loose there.
        """
        if not self.enabled:
            return 0.0
        return self._duration / self._interval
