"""Cycle-accurate-equivalent DRAM channel model (DRAMSys substitute).

Public surface:

* :class:`~repro.dram.presets.DramConfig` and
  :func:`~repro.dram.presets.get_config` /
  :func:`~repro.dram.presets.all_configs` — the ten Table I devices;
* :class:`~repro.dram.controller.MemoryController` /
  :class:`~repro.dram.controller.ControllerConfig` — the scheduler;
* :func:`~repro.dram.simulator.simulate_interleaver` — one-call
  write+read phase simulation;
* :class:`~repro.dram.address.DramAddress`,
  :class:`~repro.dram.address.LinearDecoder` — addressing;
* :class:`~repro.dram.stats.PhaseStats` — results.
"""

from __future__ import annotations

from repro.dram.address import DramAddress, LinearDecoder
from repro.dram.commands import CommandType, ScheduledCommand
from repro.dram.energy import (
    EnergyParams,
    EnergyReport,
    combine_interleaver_reports,
    command_arrays,
    energy_from_commands,
    energy_from_commands_reference,
    energy_from_tally,
    energy_params_for,
    interleaver_energy,
    phase_energy,
    refresh_command_energy_pj,
)
from repro.dram.controller import (
    OP_READ,
    OP_WRITE,
    ControllerConfig,
    MemoryController,
    PhaseResult,
)
from repro.dram.engine import (
    ChunkSource,
    EngineResult,
    MixedSource,
    SchedulingEngine,
    TraceReplaySource,
    TupleSource,
    WorkloadSource,
    as_workload,
    trace_requests,
)
from repro.dram.geometry import Geometry
from repro.dram.presets import (
    REFRESH_ALL_BANK,
    REFRESH_PER_BANK,
    TABLE1_CONFIG_NAMES,
    DramConfig,
    all_configs,
    get_config,
)
from repro.dram.mixed import (
    MixedResult,
    RowShiftedMapping,
    interleaved_stream,
    run_mixed_phase,
    steady_state_interleaver,
)
from repro.dram.refresh import RefreshEvent, RefreshScheduler
from repro.dram.simulator import (
    InterleaverSimResult,
    simulate_interleaver,
    simulate_mixed_interleaver,
    simulate_phase,
    simulate_phase_result,
)
from repro.dram.stats import EnergyTally, PhaseStats, min_phase_utilization
from repro.dram.timing import TimingParams, from_datasheet
from repro.dram.trace import TraceChecker, Violation, check_phase_commands, read_trace, write_trace

__all__ = [
    "ChunkSource",
    "CommandType",
    "ControllerConfig",
    "DramAddress",
    "DramConfig",
    "EngineResult",
    "EnergyParams",
    "EnergyReport",
    "EnergyTally",
    "Geometry",
    "InterleaverSimResult",
    "LinearDecoder",
    "MemoryController",
    "MixedResult",
    "MixedSource",
    "OP_READ",
    "OP_WRITE",
    "PhaseResult",
    "SchedulingEngine",
    "TraceReplaySource",
    "TupleSource",
    "WorkloadSource",
    "PhaseStats",
    "REFRESH_ALL_BANK",
    "REFRESH_PER_BANK",
    "RefreshEvent",
    "RefreshScheduler",
    "RowShiftedMapping",
    "ScheduledCommand",
    "TABLE1_CONFIG_NAMES",
    "TimingParams",
    "TraceChecker",
    "Violation",
    "all_configs",
    "as_workload",
    "check_phase_commands",
    "combine_interleaver_reports",
    "command_arrays",
    "energy_from_commands",
    "energy_from_commands_reference",
    "energy_from_tally",
    "energy_params_for",
    "refresh_command_energy_pj",
    "interleaved_stream",
    "interleaver_energy",
    "from_datasheet",
    "get_config",
    "min_phase_utilization",
    "phase_energy",
    "simulate_interleaver",
    "simulate_mixed_interleaver",
    "read_trace",
    "run_mixed_phase",
    "steady_state_interleaver",
    "simulate_phase",
    "simulate_phase_result",
    "trace_requests",
    "write_trace",
]
