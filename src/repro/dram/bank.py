"""Per-bank state snapshots.

The controller keeps bank state in parallel lists for speed (its inner
loop runs once per DRAM burst).  :class:`BankSnapshot` is the readable
view of one bank used by tests, debugging tools and the trace replayer;
:func:`classify_access` defines the page-policy outcome vocabulary used
throughout the statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Access classification values.
PAGE_HIT = "hit"
PAGE_MISS = "miss"
PAGE_EMPTY = "empty"


@dataclass(frozen=True)
class BankSnapshot:
    """Immutable view of one bank's scheduler state.

    Attributes:
        bank: flat bank index.
        open_row: currently open row, or ``None`` when precharged.
        act_time_ps: issue time of the most recent ACT.
        cas_allowed_ps: earliest time a CAS may issue (ACT + tRCD).
        pre_allowed_ps: earliest time a PRE may issue (tRAS/tWR/tRTP).
        act_allowed_ps: earliest time an ACT may issue (tRP / refresh).
    """

    bank: int
    open_row: Optional[int]
    act_time_ps: int
    cas_allowed_ps: int
    pre_allowed_ps: int
    act_allowed_ps: int


def classify_access(open_row: Optional[int], target_row: int) -> str:
    """Classify an access against the current bank state.

    Returns:
        :data:`PAGE_HIT` when the target row is already open,
        :data:`PAGE_EMPTY` when the bank is precharged, and
        :data:`PAGE_MISS` when a different row is open.
    """
    if open_row is None:
        return PAGE_EMPTY
    if open_row == target_row:
        return PAGE_HIT
    return PAGE_MISS
