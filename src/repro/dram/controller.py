"""Event-driven, JEDEC-constraint-accurate memory controller.

The controller consumes a stream of burst-granular requests
(bank, row, column) belonging to one access phase (all writes or all
reads — the interleaver alternates full phases) and schedules the DRAM
command stream for it, honoring:

* per-bank row-cycle timing (tRCD, tRP, tRAS, tWR, tRTP),
* activate throttles across banks (tRRD_S/L, the tFAW sliding window),
* CAS-to-CAS spacing with bank-group discrimination (tCCD_S/L),
* data-bus occupancy (one burst at a time),
* refresh (all-bank or per-bank, may be disabled).

Architecture — the same one production controllers and DRAMSys use:

* Incoming requests are distributed to **per-bank FIFOs** (total
  occupancy bounded by ``queue_depth``).  Within a bank, requests are
  served strictly in order.
* Each bank machine works **eagerly**: the moment its FIFO head needs a
  different row than the open one, the PRE/ACT pair is scheduled at the
  earliest legal time — row cycles on one bank overlap data transfers
  on the others, which is precisely how staggered page misses get
  hidden.
* A **CAS arbiter** picks, among the bank heads whose row is open, the
  request whose column command can legally issue earliest (this keeps
  bank groups rotating instead of clustering same-group CAS at
  ``tCCD_L``); ties go to the oldest request.

The simulator is *event-driven*: instead of ticking every clock it
computes the earliest legal issue slot of each command directly and
quantizes it to the command-clock grid, which matches a cycle-ticking
simulator for this command mix but runs orders of magnitude faster in
Python.  Command-bus slot contention (one command per clock edge) is
the one constraint not modeled; with one CAS per burst (4+ clocks
apart) plus at most one ACT and one PRE per CAS, the command bus never
saturates for these workloads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, Iterator, List, Optional, Tuple

from repro.dram.bank import BankSnapshot
from repro.dram.commands import CommandType, ScheduledCommand
from repro.dram.presets import REFRESH_ALL_BANK, DramConfig
from repro.dram.refresh import RefreshScheduler
from repro.dram.stats import PhaseStats

#: Operation kinds accepted by :meth:`MemoryController.run_phase`.
OP_READ = "RD"
OP_WRITE = "WR"

_FAR_PAST = -(10**15)
_FAR_FUTURE = 10**18


@dataclass(frozen=True)
class ControllerConfig:
    """Tunable controller policy parameters.

    Attributes:
        queue_depth: total requests buffered across all per-bank FIFOs.
            Deep queues let bank machines start row cycles earlier and
            are what hides staggered page misses; 64 covers the longest
            JEDEC miss chain at the fastest speed grade in this project.
        per_bank_depth: cap on one bank's FIFO (bounds the skew between
            banks; also what a hardware implementation would have).
        refresh_enabled: model refresh commands (the paper's default) or
            suppress them (legal while interleaver data lives shorter
            than the retention period — the paper's >99 % experiment).
        record_commands: keep the full scheduled-command list on the
            result for inspection; costs memory, used by tests.
    """

    queue_depth: int = 64
    per_bank_depth: int = 16
    refresh_enabled: bool = True
    record_commands: bool = False

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.per_bank_depth < 1:
            raise ValueError(f"per_bank_depth must be >= 1, got {self.per_bank_depth}")


@dataclass
class PhaseResult:
    """Outcome of one simulated phase."""

    stats: PhaseStats
    commands: List[ScheduledCommand] = field(default_factory=list)


class MemoryController:
    """Schedules one access phase against one DRAM configuration.

    A fresh controller starts with all banks precharged and the refresh
    timer at zero; create one controller per phase (the interleaver's
    phases are milliseconds long, so cross-phase boundary effects are
    negligible, and the paper reports the phases separately).
    """

    def __init__(self, config: DramConfig, policy: Optional[ControllerConfig] = None):
        self.config = config
        self.policy = policy or ControllerConfig()
        geometry = config.geometry
        self._banks = geometry.banks
        self._bank_groups = geometry.bank_groups
        # Per-bank state, parallel lists for speed.
        self._open_row: List[Optional[int]] = [None] * self._banks
        self._act_time = [_FAR_PAST] * self._banks
        self._cas_allowed = [0] * self._banks
        self._pre_allowed = [0] * self._banks
        self._act_allowed = [0] * self._banks
        self._refresh = RefreshScheduler(config, enabled=self.policy.refresh_enabled)

    def bank_snapshot(self, bank: int) -> BankSnapshot:
        """Readable state of one bank (testing/debugging)."""
        return BankSnapshot(
            bank=bank,
            open_row=self._open_row[bank],
            act_time_ps=self._act_time[bank],
            cas_allowed_ps=self._cas_allowed[bank],
            pre_allowed_ps=self._pre_allowed[bank],
            act_allowed_ps=self._act_allowed[bank],
        )

    def run_phase(
        self,
        requests: Iterable[Tuple[int, int, int]],
        op: str = OP_READ,
    ) -> PhaseResult:
        """Simulate one phase and return its statistics.

        Args:
            requests: iterable of ``(bank, row, column)`` triples at
                burst granularity, in program order.
            op: :data:`OP_READ` or :data:`OP_WRITE` for the whole phase.

        Returns:
            A :class:`PhaseResult` whose ``stats.utilization`` is the
            data-bus utilization of the phase.
        """
        if op not in (OP_READ, OP_WRITE):
            raise ValueError(f"op must be {OP_READ!r} or {OP_WRITE!r}, got {op!r}")

        timing = self.config.timing
        trp = timing.trp
        trcd = timing.trcd
        tras = timing.tras
        trrd_s = timing.trrd_s
        trrd_l = timing.trrd_l
        tfaw = timing.tfaw
        tccd_s = timing.tccd_s
        tccd_l = timing.tccd_l
        twr = timing.twr
        trtp = timing.trtp
        burst = self.config.burst_duration_ps
        is_read = op == OP_READ
        latency = timing.cl if is_read else timing.cwl
        bank_groups = self._bank_groups
        n_banks = self._banks

        open_row = self._open_row
        act_time = self._act_time
        cas_allowed = self._cas_allowed
        pre_allowed = self._pre_allowed
        act_allowed = self._act_allowed

        policy = self.policy
        queue_depth = policy.queue_depth
        per_bank_depth = policy.per_bank_depth
        record = policy.record_commands
        commands: List[ScheduledCommand] = []
        stats = PhaseStats()
        refresh = self._refresh
        all_bank_refresh = self.config.refresh_mode == REFRESH_ALL_BANK

        # Global channel state.
        last_cas = _FAR_PAST            # any bank group (tCCD_S)
        last_cas_bg = [_FAR_PAST] * bank_groups
        last_act = _FAR_PAST
        last_act_bg = -1
        faw_ring = [_FAR_PAST] * 4      # issue times of the last four ACTs
        faw_idx = 0
        bus_free = 0
        last_data_end = 0

        # Per-bank FIFOs; `prepared[b]` marks that the open row matches
        # the FIFO head (the eager PRE/ACT for it already happened).
        fifos: List[Deque[Tuple[int, int, int]]] = [deque() for _ in range(n_banks)]
        prepared = [False] * n_banks
        queued = 0
        seq = 0

        source: Iterator[Tuple[int, int, int]] = iter(requests)
        stalled: Optional[Tuple[int, int, int]] = None  # head-of-line at a full bank FIFO
        exhausted = False

        n_requests = 0
        hits = misses = empties = acts = pres = refs = 0

        def refill() -> None:
            """Pull from the source until the queues are full.

            The source is consumed strictly in order; when the target
            bank's FIFO is at `per_bank_depth`, intake stalls (matching
            a real front end, and bounding inter-bank skew).
            """
            nonlocal queued, seq, stalled, exhausted
            while queued < queue_depth:
                if stalled is not None:
                    bank = stalled[0]
                    if len(fifos[bank]) >= per_bank_depth:
                        return
                    fifos[bank].append((stalled[1], stalled[2], seq))
                    seq += 1
                    queued += 1
                    stalled = None
                    continue
                if exhausted:
                    return
                item = next(source, None)
                if item is None:
                    exhausted = True
                    return
                bank, row, col = item
                if len(fifos[bank]) >= per_bank_depth:
                    stalled = (bank, row, col)
                    return
                fifos[bank].append((row, col, seq))
                seq += 1
                queued += 1

        refill()

        while queued:
            # ---- refresh ---------------------------------------------------
            deadline = refresh.next_deadline_ps
            while deadline is not None and last_cas >= deadline:
                event = refresh.due(last_cas)
                if event is None:
                    break
                ref_time = event.deadline_ps
                for b in event.banks:
                    if open_row[b] is not None:
                        t_pre = pre_allowed[b]
                        if record:
                            commands.append(ScheduledCommand(t_pre, CommandType.PRE, bank=b))
                        pres += 1
                        open_row[b] = None
                        prepared[b] = False
                        ready = t_pre + trp
                    else:
                        ready = act_allowed[b]
                    if ready > ref_time:
                        ref_time = ready
                for b in event.banks:
                    open_row[b] = None
                    prepared[b] = False
                    act_allowed[b] = ref_time + event.duration_ps
                refs += 1
                if record:
                    kind = CommandType.REF_ALL if all_bank_refresh else CommandType.REF_BANK
                    commands.append(
                        ScheduledCommand(
                            ref_time,
                            kind,
                            bank=-1 if all_bank_refresh else event.banks[0],
                        )
                    )
                deadline = refresh.next_deadline_ps

            # ---- eager per-bank row management ----------------------------
            # Every bank whose FIFO head needs a different row gets its
            # PRE/ACT scheduled now, at the earliest legal time; these
            # overlap with CAS traffic on other banks.  ACTs whose
            # bank-local earliest time lies beyond the data-bus frontier
            # (e.g. a bank parked in refresh) are *deferred*: the tRRD /
            # tFAW bookkeeping is sequential, so committing a far-future
            # ACT would push every later ACT behind it.
            horizon = bus_free
            any_prepared = False
            forced_bank = -1
            while True:
                deferred_ready = _FAR_FUTURE
                deferred_bank = -1
                for b in range(n_banks):
                    if not fifos[b]:
                        continue
                    if prepared[b]:
                        any_prepared = True
                        continue
                    row = fifos[b][0][0]
                    current = open_row[b]
                    if current == row:
                        prepared[b] = True
                        hits += 1
                        any_prepared = True
                        continue
                    if current is None:
                        t_pre = -1
                        act_ready = act_allowed[b]
                    else:
                        t_pre = pre_allowed[b]
                        act_ready = t_pre + trp
                    if act_ready > horizon and b != forced_bank:
                        if act_ready < deferred_ready:
                            deferred_ready = act_ready
                            deferred_bank = b
                        continue
                    if current is None:
                        empties += 1
                    else:
                        misses += 1
                        pres += 1
                        if record:
                            commands.append(ScheduledCommand(t_pre, CommandType.PRE, bank=b))
                    bg = b % bank_groups
                    t_act = act_ready
                    if last_act != _FAR_PAST:
                        spacing = trrd_l if bg == last_act_bg else trrd_s
                        t = last_act + spacing
                        if t > t_act:
                            t_act = t
                    t = faw_ring[faw_idx] + tfaw
                    if t > t_act:
                        t_act = t
                    faw_ring[faw_idx] = t_act
                    faw_idx = (faw_idx + 1) & 3
                    last_act = t_act
                    last_act_bg = bg
                    acts += 1
                    if record:
                        commands.append(ScheduledCommand(t_act, CommandType.ACT, bank=b, row=row))
                    open_row[b] = row
                    act_time[b] = t_act
                    cas_allowed[b] = t_act + trcd
                    pre_allowed[b] = t_act + tras
                    prepared[b] = True
                    any_prepared = True
                if any_prepared or deferred_bank < 0:
                    break
                # Nothing is serviceable: the earliest deferred bank must
                # be activated even though it lies beyond the frontier.
                forced_bank = deferred_bank

            # ---- CAS arbitration -------------------------------------------
            # `bound` is the earliest CAS slot anything could get (bus /
            # tCCD_S limited).  Among heads that achieve it, the oldest
            # request wins — this preserves stream order and prevents
            # low-index banks from hogging the bus and starving intake.
            # If nothing achieves the bound, the earliest-CAS head wins.
            bound = last_cas + tccd_s
            t = bus_free - latency
            if t > bound:
                bound = t
            best_cas = _FAR_FUTURE
            best_seq = _FAR_FUTURE
            chosen = -1
            for b in range(n_banks):
                if not prepared[b] or not fifos[b]:
                    continue
                t_cas = cas_allowed[b]
                t = last_cas + tccd_s
                if t > t_cas:
                    t_cas = t
                t = last_cas_bg[b % bank_groups] + tccd_l
                if t > t_cas:
                    t_cas = t
                t = bus_free - latency
                if t > t_cas:
                    t_cas = t
                seq_b = fifos[b][0][2]
                # t_cas >= bound always (bound is the max of the global
                # constraints included in t_cas), so == means "as early
                # as physically possible".
                if t_cas <= bound:
                    if best_cas > bound or seq_b < best_seq:
                        best_cas = t_cas
                        best_seq = seq_b
                        chosen = b
                elif best_cas > bound and (
                    t_cas < best_cas or (t_cas == best_cas and seq_b < best_seq)
                ):
                    best_cas = t_cas
                    best_seq = seq_b
                    chosen = b
            if chosen < 0:
                # Defensive: cannot happen — every non-empty FIFO head is
                # prepared by the eager loop above.
                raise RuntimeError("scheduler deadlock: no prepared bank head")

            row, col, _seqno = fifos[chosen].popleft()
            queued -= 1
            prepared[chosen] = False if not fifos[chosen] else (
                fifos[chosen][0][0] == open_row[chosen]
            )
            if prepared[chosen]:
                hits += 1

            t_cas = best_cas
            bg = chosen % bank_groups
            last_cas = t_cas
            last_cas_bg[bg] = t_cas
            data_end = t_cas + latency + burst
            bus_free = data_end
            last_data_end = data_end
            if is_read:
                t = t_cas + trtp
            else:
                t = data_end + twr
            if t > pre_allowed[chosen]:
                pre_allowed[chosen] = t
            if record:
                kind = CommandType.RD if is_read else CommandType.WR
                commands.append(
                    ScheduledCommand(
                        t_cas, kind, bank=chosen, row=row, column=col, request_id=n_requests
                    )
                )
            n_requests += 1
            refill()

        stats.requests = n_requests
        stats.page_hits = hits
        stats.page_misses = misses
        stats.page_empties = empties
        stats.activates = acts
        stats.precharges = pres
        stats.refreshes = refs
        stats.data_time_ps = n_requests * burst
        stats.makespan_ps = last_data_end
        stats.command_counts = {
            CommandType.ACT.value: acts,
            CommandType.PRE.value: pres,
            (CommandType.RD if is_read else CommandType.WR).value: n_requests,
            (CommandType.REF_ALL if all_bank_refresh else CommandType.REF_BANK).value: refs,
        }
        return PhaseResult(stats=stats, commands=commands)
