"""Event-driven, JEDEC-constraint-accurate memory controller.

The controller consumes a stream of burst-granular requests
(bank, row, column) belonging to one access phase (all writes or all
reads — the interleaver alternates full phases) and schedules the DRAM
command stream for it, honoring:

* per-bank row-cycle timing (tRCD, tRP, tRAS, tWR, tRTP),
* activate throttles across banks (tRRD_S/L, the tFAW sliding window),
* CAS-to-CAS spacing with bank-group discrimination (tCCD_S/L),
* data-bus occupancy (one burst at a time),
* refresh (all-bank or per-bank, may be disabled).

Architecture — the same one production controllers and DRAMSys use:

* Incoming requests are distributed to **per-bank FIFOs** (total
  occupancy bounded by ``queue_depth``).  Within a bank, requests are
  served strictly in order.
* Each bank machine works **eagerly**: the moment its FIFO head needs a
  different row than the open one, the PRE/ACT pair is scheduled at the
  earliest legal time — row cycles on one bank overlap data transfers
  on the others, which is precisely how staggered page misses get
  hidden.
* A **CAS arbiter** picks, among the bank heads whose row is open, the
  request whose column command can legally issue earliest (this keeps
  bank groups rotating instead of clustering same-group CAS at
  ``tCCD_L``); ties go to the oldest request.

The simulator is *event-driven*: instead of ticking every clock it
computes the earliest legal issue slot of each command directly and
quantizes it up to the command-clock grid (``timing.tck``), which
matches a cycle-ticking simulator for this command mix but runs orders
of magnitude faster in Python.  Quantization applies whenever the
command clock is exactly representable on the integer-picosecond
timeline (equivalently: a burst occupies a whole number of clocks,
true for DDR3/DDR4/DDR5-3200).  For speed grades whose clock period is
not an integer picosecond count (DDR5-6400, the LPDDR grades) the
rounded grid would *itself* be a time-base artifact — seamless bursts
would pick up a phantom gap of up to one clock — so issue slots stay
continuous there; see ``tests/dram/test_controller.py`` for the
regression tests pinning both behaviors.  Command-bus slot contention
(one command per clock edge) is the one constraint not modeled; with
one CAS per burst (4+ clocks apart) plus at most one ACT and one PRE
per CAS, the command bus never saturates for these workloads.

Request intake accepts two stream shapes (see :meth:`run_phase`):

* an iterable of ``(bank, row, column)`` tuples — the reference path;
* an iterable of columnar *chunks* ``(banks, rows, columns)`` where
  each element is an array/sequence of equal length — the vectorized
  path produced by ``InterleaverMapping.write_addresses_array`` /
  ``read_addresses_array``.  Chunks are bulk-converted once and the
  per-bank FIFOs refill from the columnar buffers by index, so the hot
  loop never materializes a Python tuple per request on intake.

Both paths feed the identical scheduler and yield identical
:class:`~repro.dram.stats.PhaseStats`, which is property-tested in
``tests/dram`` and ``tests/integration``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import chain
from typing import Deque, Iterable, List, Optional, Sequence, Tuple, Union

from repro.dram.bank import BankSnapshot
from repro.dram.commands import CommandType, ScheduledCommand
from repro.dram.presets import REFRESH_ALL_BANK, DramConfig
from repro.dram.refresh import RefreshScheduler
from repro.dram.stats import PhaseStats

#: Operation kinds accepted by :meth:`MemoryController.run_phase`.
OP_READ = "RD"
OP_WRITE = "WR"

#: One columnar request chunk: (banks, rows, columns) of equal length.
RequestChunk = Tuple[Sequence[int], Sequence[int], Sequence[int]]

#: The request-stream shapes accepted by :meth:`MemoryController.run_phase`.
RequestStream = Union[Iterable[Tuple[int, int, int]], Iterable[RequestChunk]]

_FAR_PAST = -(10**15)
_FAR_FUTURE = 10**18


@dataclass(frozen=True)
class ControllerConfig:
    """Tunable controller policy parameters.

    Attributes:
        queue_depth: total requests buffered across all per-bank FIFOs.
            Deep queues let bank machines start row cycles earlier and
            are what hides staggered page misses; 64 covers the longest
            JEDEC miss chain at the fastest speed grade in this project.
        per_bank_depth: cap on one bank's FIFO (bounds the skew between
            banks; also what a hardware implementation would have).
        refresh_enabled: model refresh commands (the paper's default) or
            suppress them (legal while interleaver data lives shorter
            than the retention period — the paper's >99 % experiment).
        record_commands: keep the full scheduled-command list on the
            result for inspection; costs memory, used by tests.
    """

    queue_depth: int = 64
    per_bank_depth: int = 16
    refresh_enabled: bool = True
    record_commands: bool = False

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.per_bank_depth < 1:
            raise ValueError(f"per_bank_depth must be >= 1, got {self.per_bank_depth}")


@dataclass
class PhaseResult:
    """Outcome of one simulated phase."""

    stats: PhaseStats
    commands: List[ScheduledCommand] = field(default_factory=list)


def _as_list(values) -> List[int]:
    """Bulk-convert one chunk column to a plain Python list."""
    tolist = getattr(values, "tolist", None)
    if tolist is not None:
        return tolist()
    return list(values)


class MemoryController:
    """Schedules one access phase against one DRAM configuration.

    A fresh controller starts with all banks precharged and the refresh
    timer at zero; create one controller per phase (the interleaver's
    phases are milliseconds long, so cross-phase boundary effects are
    negligible, and the paper reports the phases separately).
    """

    def __init__(self, config: DramConfig, policy: Optional[ControllerConfig] = None):
        self.config = config
        self.policy = policy or ControllerConfig()
        geometry = config.geometry
        self._banks = geometry.banks
        self._bank_groups = geometry.bank_groups
        # Per-bank state, parallel lists for speed.
        self._open_row: List[Optional[int]] = [None] * self._banks
        self._act_time = [_FAR_PAST] * self._banks
        self._cas_allowed = [0] * self._banks
        self._pre_allowed = [0] * self._banks
        self._act_allowed = [0] * self._banks
        self._refresh = RefreshScheduler(config, enabled=self.policy.refresh_enabled)

    def bank_snapshot(self, bank: int) -> BankSnapshot:
        """Readable state of one bank (testing/debugging)."""
        return BankSnapshot(
            bank=bank,
            open_row=self._open_row[bank],
            act_time_ps=self._act_time[bank],
            cas_allowed_ps=self._cas_allowed[bank],
            pre_allowed_ps=self._pre_allowed[bank],
            act_allowed_ps=self._act_allowed[bank],
        )

    def run_phase(
        self,
        requests: RequestStream,
        op: str = OP_READ,
    ) -> PhaseResult:
        """Simulate one phase and return its statistics.

        Args:
            requests: the request stream in program order, either as an
                iterable of ``(bank, row, column)`` triples at burst
                granularity, or as an iterable of columnar chunks
                ``(banks, rows, columns)`` whose elements are
                equal-length arrays/sequences (the vectorized fast
                path).  The two shapes are scheduled identically.
            op: :data:`OP_READ` or :data:`OP_WRITE` for the whole phase.

        Returns:
            A :class:`PhaseResult` whose ``stats.utilization`` is the
            data-bus utilization of the phase.

        Raises:
            ValueError: on an unknown ``op``, or when a request carries
                a bank index outside ``[0, geometry.banks)`` (validated
                at intake, naming the offending request).
        """
        if op not in (OP_READ, OP_WRITE):
            raise ValueError(f"op must be {OP_READ!r} or {OP_WRITE!r}, got {op!r}")

        timing = self.config.timing
        burst = self.config.burst_duration_ps
        # Command-clock grid for issue-slot quantization.  When a burst
        # is not a whole number of clocks the clock period itself was
        # rounded to fit the integer-ps timeline; quantizing to that
        # rounded grid would insert phantom gaps between seamless
        # bursts, so those grades run with a degenerate 1 ps grid
        # (quantization disabled) — see the module docstring.
        tck = timing.tck if burst % timing.tck == 0 else 1
        trp = timing.trp
        trcd = timing.trcd
        tras = timing.tras
        trrd_s = timing.trrd_s
        trrd_l = timing.trrd_l
        tfaw = timing.tfaw
        tccd_s = timing.tccd_s
        tccd_l = timing.tccd_l
        twr = timing.twr
        trtp = timing.trtp
        is_read = op == OP_READ
        latency = timing.cl if is_read else timing.cwl
        bank_groups = self._bank_groups
        n_banks = self._banks

        open_row = self._open_row
        act_time = self._act_time
        cas_allowed = self._cas_allowed
        pre_allowed = self._pre_allowed
        act_allowed = self._act_allowed

        policy = self.policy
        queue_depth = policy.queue_depth
        per_bank_depth = policy.per_bank_depth
        record = policy.record_commands
        commands: List[ScheduledCommand] = []
        stats = PhaseStats()
        refresh = self._refresh
        all_bank_refresh = self.config.refresh_mode == REFRESH_ALL_BANK

        # Global channel state.
        bg_of = [b % bank_groups for b in range(n_banks)]
        last_cas = _FAR_PAST            # any bank group (tCCD_S)
        last_cas_bg = [_FAR_PAST] * bank_groups
        last_act = _FAR_PAST
        last_act_bg = -1
        faw_ring = [_FAR_PAST] * 4      # issue times of the last four ACTs
        faw_idx = 0
        bus_free = 0
        last_data_end = 0

        # Per-bank FIFOs.  Every bank with a non-empty FIFO is in
        # exactly one of two sets: `ready` (the open row matches the
        # FIFO head — a CAS candidate) or `pending` (the head still
        # needs its row cycle).  The sets replace a per-iteration scan
        # over all banks: the eager row-management loop only runs while
        # `pending` is non-empty, and the CAS arbiter only examines
        # `ready`.
        fifos: List[Deque[Tuple[int, int, int]]] = [deque() for _ in range(n_banks)]
        pending: set = set()
        ready: set = set()
        queued = 0
        seq = 0
        # Arrival order of outstanding requests (parallel int deques —
        # no per-request tuple).  The front, after skipping entries
        # already served, is the oldest FIFO head: the CAS arbiter's
        # tie-break winner whenever it achieves the global bound.
        order_seq: Deque[int] = deque()
        order_bank: Deque[int] = deque()

        stalled: Optional[Tuple[int, int, int]] = None  # head-of-line at a full bank FIFO
        exhausted = False
        intake = 0                      # requests pulled from the source so far

        # ---- source normalization: tuples or columnar chunks ----------
        raw = iter(requests)
        first = next(raw, None)
        if first is None:
            exhausted = True
            chunked = False
            source = raw
        else:
            chunked = hasattr(first[0], "__len__")
            source = chain((first,), raw)

        # Columnar buffers of the current chunk (chunked mode only).
        buf_banks: List[int] = []
        buf_rows: List[int] = []
        buf_cols: List[int] = []
        buf_pos = 0
        buf_len = 0

        def load_chunk() -> bool:
            """Pull, convert and validate the next non-empty chunk."""
            nonlocal buf_banks, buf_rows, buf_cols, buf_pos, buf_len
            nonlocal exhausted, intake
            while True:
                item = next(source, None)
                if item is None:
                    exhausted = True
                    return False
                banks_col, rows_col, cols_col = item
                banks = _as_list(banks_col)
                if not banks:
                    continue
                rows = _as_list(rows_col)
                cols = _as_list(cols_col)
                if len(rows) != len(banks) or len(cols) != len(banks):
                    raise ValueError(
                        f"request chunk columns disagree in length: "
                        f"{len(banks)} banks, {len(rows)} rows, {len(cols)} columns"
                    )
                if min(banks) < 0 or max(banks) >= n_banks:
                    for k, bank in enumerate(banks):
                        if not 0 <= bank < n_banks:
                            raise ValueError(
                                f"request #{intake + k} (bank={bank}, row={rows[k]}, "
                                f"column={cols[k]}): bank out of range [0, {n_banks})"
                            )
                buf_banks, buf_rows, buf_cols = banks, rows, cols
                buf_pos = 0
                buf_len = len(banks)
                intake += buf_len
                return True

        def refill_tuples() -> None:
            """Pull (bank, row, column) tuples until the queues are full.

            The source is consumed strictly in order; when the target
            bank's FIFO is at `per_bank_depth`, intake stalls (matching
            a real front end, and bounding inter-bank skew).
            """
            nonlocal queued, seq, stalled, exhausted, intake, fresh_pending
            while queued < queue_depth:
                if stalled is not None:
                    bank = stalled[0]
                    fifo = fifos[bank]
                    if len(fifo) >= per_bank_depth:
                        return
                    if not fifo:
                        pending.add(bank)
                        fresh_pending = True
                    fifo.append((stalled[1], stalled[2], seq))
                    order_seq.append(seq)
                    order_bank.append(bank)
                    seq += 1
                    queued += 1
                    stalled = None
                    continue
                if exhausted:
                    return
                item = next(source, None)
                if item is None:
                    exhausted = True
                    return
                bank, row, col = item
                if bank < 0 or bank >= n_banks:
                    raise ValueError(
                        f"request #{intake} (bank={bank}, row={row}, column={col}): "
                        f"bank out of range [0, {n_banks})"
                    )
                intake += 1
                fifo = fifos[bank]
                if len(fifo) >= per_bank_depth:
                    stalled = (bank, row, col)
                    return
                if not fifo:
                    pending.add(bank)
                    fresh_pending = True
                fifo.append((row, col, seq))
                order_seq.append(seq)
                order_bank.append(bank)
                seq += 1
                queued += 1

        def refill_chunks() -> None:
            """Like :func:`refill_tuples`, but indexing columnar buffers."""
            nonlocal queued, seq, stalled, buf_pos, fresh_pending
            while queued < queue_depth:
                if stalled is not None:
                    bank = stalled[0]
                    fifo = fifos[bank]
                    if len(fifo) >= per_bank_depth:
                        return
                    if not fifo:
                        pending.add(bank)
                        fresh_pending = True
                    fifo.append((stalled[1], stalled[2], seq))
                    order_seq.append(seq)
                    order_bank.append(bank)
                    seq += 1
                    queued += 1
                    stalled = None
                    continue
                if buf_pos >= buf_len:
                    if exhausted or not load_chunk():
                        return
                bank = buf_banks[buf_pos]
                row = buf_rows[buf_pos]
                col = buf_cols[buf_pos]
                buf_pos += 1
                fifo = fifos[bank]
                if len(fifo) >= per_bank_depth:
                    stalled = (bank, row, col)
                    return
                if not fifo:
                    pending.add(bank)
                    fresh_pending = True
                fifo.append((row, col, seq))
                order_seq.append(seq)
                order_bank.append(bank)
                seq += 1
                queued += 1

        refill = refill_chunks if chunked else refill_tuples

        n_requests = 0
        hits = misses = empties = acts = pres = refs = 0
        quant = tck > 1

        # Eager-block skip state.  A pending bank's activation-ready
        # time is fixed while it stays pending (its pre/act windows only
        # move on its own ACT, its own pop, or refresh), and the bus
        # frontier only advances — so once every pending bank is known
        # to be deferred beyond `deferred_floor`, the row-management
        # block is a provable no-op until the frontier reaches that
        # floor or the pending set changes (`fresh_pending`).
        fresh_pending = False
        deferred_floor = _FAR_FUTURE

        refill()

        # Cached refresh deadline: `next_deadline_ps` only moves when an
        # event is consumed, so the cache is re-read after the refresh
        # block instead of on every iteration.
        deadline = refresh.next_deadline_ps

        while queued:
            # ---- refresh ---------------------------------------------------
            while deadline is not None and last_cas >= deadline:
                event = refresh.due(last_cas)
                if event is None:
                    break
                ref_time = event.deadline_ps
                for b in event.banks:
                    if open_row[b] is not None:
                        t_pre = pre_allowed[b]
                        if quant:
                            remainder = t_pre % tck
                            if remainder:
                                t_pre += tck - remainder
                        if record:
                            commands.append(ScheduledCommand(t_pre, CommandType.PRE, bank=b))
                        pres += 1
                        open_row[b] = None
                        bank_free_at = t_pre + trp
                    else:
                        bank_free_at = act_allowed[b]
                    if bank_free_at > ref_time:
                        ref_time = bank_free_at
                if quant:
                    remainder = ref_time % tck
                    if remainder:
                        ref_time += tck - remainder
                for b in event.banks:
                    open_row[b] = None
                    ready.discard(b)
                    if fifos[b]:
                        pending.add(b)
                    act_allowed[b] = ref_time + event.duration_ps
                fresh_pending = True  # cached deferral times are stale now
                refs += 1
                if record:
                    kind = CommandType.REF_ALL if all_bank_refresh else CommandType.REF_BANK
                    commands.append(
                        ScheduledCommand(
                            ref_time,
                            kind,
                            bank=-1 if all_bank_refresh else event.banks[0],
                        )
                    )
                deadline = refresh.next_deadline_ps

            # ---- eager per-bank row management ----------------------------
            # Every bank whose FIFO head needs a different row gets its
            # PRE/ACT scheduled now, at the earliest legal time; these
            # overlap with CAS traffic on other banks.  ACTs whose
            # bank-local earliest time lies beyond the data-bus frontier
            # (e.g. a bank parked in refresh) are *deferred*: the tRRD /
            # tFAW bookkeeping is sequential, so committing a far-future
            # ACT would push every later ACT behind it.
            if pending and (fresh_pending or deferred_floor <= bus_free or not ready):
                fresh_pending = False
                horizon = bus_free
                forced_bank = -1
                while True:
                    deferred_ready = _FAR_FUTURE
                    deferred_bank = -1
                    for b in sorted(pending) if len(pending) > 1 else tuple(pending):
                        row = fifos[b][0][0]
                        current = open_row[b]
                        if current == row:
                            pending.discard(b)
                            ready.add(b)
                            hits += 1
                            continue
                        if current is None:
                            t_pre = -1
                            act_ready = act_allowed[b]
                        else:
                            t_pre = pre_allowed[b]
                            if quant:
                                remainder = t_pre % tck
                                if remainder:
                                    t_pre += tck - remainder
                            act_ready = t_pre + trp
                        if act_ready > horizon and b != forced_bank:
                            if act_ready < deferred_ready:
                                deferred_ready = act_ready
                                deferred_bank = b
                            continue
                        if current is None:
                            empties += 1
                        else:
                            misses += 1
                            pres += 1
                            if record:
                                commands.append(ScheduledCommand(t_pre, CommandType.PRE, bank=b))
                        bg = bg_of[b]
                        t_act = act_ready
                        if last_act != _FAR_PAST:
                            spacing = trrd_l if bg == last_act_bg else trrd_s
                            t = last_act + spacing
                            if t > t_act:
                                t_act = t
                        t = faw_ring[faw_idx] + tfaw
                        if t > t_act:
                            t_act = t
                        if quant:
                            remainder = t_act % tck
                            if remainder:
                                t_act += tck - remainder
                        faw_ring[faw_idx] = t_act
                        faw_idx = (faw_idx + 1) & 3
                        last_act = t_act
                        last_act_bg = bg
                        acts += 1
                        if record:
                            commands.append(ScheduledCommand(t_act, CommandType.ACT, bank=b, row=row))
                        open_row[b] = row
                        act_time[b] = t_act
                        cas_allowed[b] = t_act + trcd
                        pre_allowed[b] = t_act + tras
                        pending.discard(b)
                        ready.add(b)
                    if ready or deferred_bank < 0:
                        deferred_floor = deferred_ready
                        break
                    # Nothing is serviceable: the earliest deferred bank
                    # must be activated even though it lies beyond the
                    # frontier.
                    forced_bank = deferred_bank

            # ---- CAS arbitration -------------------------------------------
            # `bound` is the earliest (quantized) CAS slot anything could
            # get (bus / tCCD_S limited).  A head *achieves* the bound iff
            # its per-bank readiness — CAS-allowed and same-group tCCD_L —
            # is within it, and every achiever's issue slot is then exactly
            # `bound`, so the arbiter compares raw readiness instead of
            # quantizing each candidate.  Among achievers the oldest
            # request wins — this preserves stream order and prevents
            # low-index banks from hogging the bus and starving intake.
            # If nothing achieves the bound, the earliest-ready head wins
            # (ties by age on the raw readiness time).
            bound = last_cas + tccd_s
            t = bus_free - latency
            if t > bound:
                bound = t
            if quant:
                remainder = bound % tck
                if remainder:
                    bound += tck - remainder
            chosen = -1

            # Oldest-head fast path: drop already-served entries off the
            # arrival queue; the front is then the oldest FIFO head.  If
            # its row is open and its CAS achieves the bound it wins the
            # arbitration outright (lowest sequence number among bound
            # achievers), skipping the candidate scan.
            while order_seq:
                b = order_bank[0]
                fifo = fifos[b]
                if fifo and fifo[0][2] == order_seq[0]:
                    break
                order_seq.popleft()
                order_bank.popleft()
            oldest_bank = order_bank[0]
            if oldest_bank in ready:
                pb = cas_allowed[oldest_bank]
                t = last_cas_bg[bg_of[oldest_bank]] + tccd_l
                if t > pb:
                    pb = t
                if pb <= bound:
                    chosen = oldest_bank
                    t_cas = bound

            if chosen < 0:
                bg_limits = [t + tccd_l for t in last_cas_bg]
                best_pb = _FAR_FUTURE
                best_seq = _FAR_FUTURE
                achieved = False
                for b in ready:
                    pb = cas_allowed[b]
                    t = bg_limits[bg_of[b]]
                    if t > pb:
                        pb = t
                    if pb <= bound:
                        seq_b = fifos[b][0][2]
                        if not achieved or seq_b < best_seq:
                            achieved = True
                            best_seq = seq_b
                            chosen = b
                    elif not achieved:
                        seq_b = fifos[b][0][2]
                        if pb < best_pb or (pb == best_pb and seq_b < best_seq):
                            best_pb = pb
                            best_seq = seq_b
                            chosen = b
                if chosen < 0:
                    # Defensive: cannot happen — every non-empty FIFO head
                    # is in `ready` after the eager loop above.
                    raise RuntimeError("scheduler deadlock: no prepared bank head")
                if achieved:
                    t_cas = bound
                else:
                    t_cas = best_pb
                    if quant:
                        remainder = t_cas % tck
                        if remainder:
                            t_cas += tck - remainder

            fifo = fifos[chosen]
            row, col, _seqno = fifo.popleft()
            queued -= 1
            if not fifo:
                ready.discard(chosen)
            elif fifo[0][0] == open_row[chosen]:
                hits += 1
            else:
                ready.discard(chosen)
                pending.add(chosen)
                fresh_pending = True

            bg = bg_of[chosen]
            last_cas = t_cas
            last_cas_bg[bg] = t_cas
            data_end = t_cas + latency + burst
            bus_free = data_end
            last_data_end = data_end
            if is_read:
                t = t_cas + trtp
            else:
                t = data_end + twr
            if t > pre_allowed[chosen]:
                pre_allowed[chosen] = t
            if record:
                kind = CommandType.RD if is_read else CommandType.WR
                commands.append(
                    ScheduledCommand(
                        t_cas, kind, bank=chosen, row=row, column=col, request_id=n_requests
                    )
                )
            n_requests += 1
            # Inline single-slot intake: the pop above freed exactly one
            # queue slot and the next request is usually available in the
            # current chunk buffers — equivalent to (but cheaper than) a
            # full refill() call.  Any other state falls through to it.
            if stalled is None and buf_pos < buf_len and queued == queue_depth - 1:
                bank = buf_banks[buf_pos]
                row = buf_rows[buf_pos]
                col = buf_cols[buf_pos]
                buf_pos += 1
                fifo = fifos[bank]
                if len(fifo) >= per_bank_depth:
                    stalled = (bank, row, col)
                else:
                    if not fifo:
                        pending.add(bank)
                        fresh_pending = True
                    fifo.append((row, col, seq))
                    order_seq.append(seq)
                    order_bank.append(bank)
                    seq += 1
                    queued += 1
            else:
                refill()

        stats.requests = n_requests
        stats.page_hits = hits
        stats.page_misses = misses
        stats.page_empties = empties
        stats.activates = acts
        stats.precharges = pres
        stats.refreshes = refs
        stats.data_time_ps = n_requests * burst
        stats.makespan_ps = last_data_end
        stats.command_counts = {
            CommandType.ACT.value: acts,
            CommandType.PRE.value: pres,
            (CommandType.RD if is_read else CommandType.WR).value: n_requests,
            (CommandType.REF_ALL if all_bank_refresh else CommandType.REF_BANK).value: refs,
        }
        return PhaseResult(stats=stats, commands=commands)
