"""Event-driven, JEDEC-constraint-accurate memory controller.

The controller consumes a stream of burst-granular requests
(bank, row, column) belonging to one access phase (all writes or all
reads — the interleaver alternates full phases) and schedules the DRAM
command stream for it, honoring:

* per-bank row-cycle timing (tRCD, tRP, tRAS, tWR, tRTP),
* activate throttles across banks (tRRD_S/L, the tFAW sliding window),
* CAS-to-CAS spacing with bank-group discrimination (tCCD_S/L),
* data-bus occupancy (one burst at a time),
* refresh (all-bank or per-bank, may be disabled).

Architecture — the same one production controllers and DRAMSys use:

* Incoming requests are distributed to **per-bank FIFOs** (total
  occupancy bounded by ``queue_depth``).  Within a bank, requests are
  served strictly in order.
* Each bank machine works **eagerly**: the moment its FIFO head needs a
  different row than the open one, the PRE/ACT pair is scheduled at the
  earliest legal time — row cycles on one bank overlap data transfers
  on the others, which is precisely how staggered page misses get
  hidden.
* A **CAS arbiter** picks, among the bank heads whose row is open, the
  request whose column command can legally issue earliest (this keeps
  bank groups rotating instead of clustering same-group CAS at
  ``tCCD_L``); ties go to the oldest request.

Since the unified-engine refactor the scheduler itself lives in
:mod:`repro.dram.engine` — :class:`MemoryController` is a thin adapter
that normalizes the request stream into a
:class:`~repro.dram.engine.WorkloadSource` and runs the shared
:class:`~repro.dram.engine.SchedulingEngine` (the same core that powers
:func:`repro.dram.mixed.run_mixed_phase` and trace replay).  The
engine is *event-driven*: instead of ticking every clock it computes
the earliest legal issue slot of each command directly and quantizes it
up to the command-clock grid (``timing.tck``), which matches a
cycle-ticking simulator for this command mix but runs orders of
magnitude faster in Python.  Quantization applies whenever the command
clock is exactly representable on the integer-picosecond timeline
(equivalently: a burst occupies a whole number of clocks, true for
DDR3/DDR4/DDR5-3200).  For speed grades whose clock period is not an
integer picosecond count (DDR5-6400, the LPDDR grades) the rounded grid
would *itself* be a time-base artifact — seamless bursts would pick up
a phantom gap of up to one clock — so issue slots stay continuous
there; see ``tests/dram/test_controller_intake.py`` for the regression
tests pinning both behaviors.  Command-bus slot contention (one command
per clock edge) is the one constraint not modeled; with one CAS per
burst (4+ clocks apart) plus at most one ACT and one PRE per CAS, the
command bus never saturates for these workloads.

Request intake accepts two stream shapes (see :meth:`run_phase`):

* an iterable of ``(bank, row, column)`` tuples — the reference path;
* an iterable of columnar *chunks* ``(banks, rows, columns)`` where
  each element is an array/sequence of equal length — the vectorized
  path produced by ``InterleaverMapping.write_addresses_array`` /
  ``read_addresses_array``.  Chunks are bulk-partitioned into the
  engine's array-backed per-bank queues, so the hot loop never
  materializes a Python tuple per request on intake.

Both paths feed the identical scheduler and yield identical
:class:`~repro.dram.stats.PhaseStats`, which is property-tested in
``tests/dram`` and ``tests/integration``; bit-identical equivalence to
the pre-engine scheduler is proven by the differential battery in
``tests/dram/test_engine_differential.py``.

Two interchangeable arbiter implementations sit behind the adapter:
the reference :class:`~repro.dram.engine.SchedulingEngine`
(:data:`ENGINE_GENERAL`) and the batch-advance
:class:`~repro.dram.kernel.KernelEngine` (:data:`ENGINE_KERNEL`),
selected per controller or per :meth:`~MemoryController.run_phase`
call via the ``engine=`` hook.  The two share one bank-state table by
reference, so they can be alternated mid-controller with warm rows
intact, and they produce bit-identical results (the kernel's contract;
see :mod:`repro.dram.kernel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple, Union

from repro.dram.bank import BankSnapshot
from repro.dram.commands import ScheduledCommand
from repro.dram.engine import OP_READ, OP_WRITE, SchedulingEngine, as_workload
from repro.dram.policy import (
    POLICY_BANK_PARTITION,
    POLICY_CLOSED_PAGE,
    POLICY_FRFCFS_CAP,
    POLICY_NAMES,
    POLICY_OPEN_PAGE,
    check_discipline,
)
from repro.dram.presets import DramConfig
from repro.dram.stats import PhaseStats

if TYPE_CHECKING:
    from repro.dram.kernel import KernelEngine

#: One columnar request chunk: (banks, rows, columns) of equal length.
RequestChunk = Tuple[Sequence[int], Sequence[int], Sequence[int]]

#: The request-stream shapes accepted by :meth:`MemoryController.run_phase`.
RequestStream = Union[Iterable[Tuple[int, int, int]], Iterable[RequestChunk]]

#: ``engine=`` hook value: the reference oldest-first-walk scheduler.
ENGINE_GENERAL = "general"

#: ``engine=`` hook value: the batch-advance kernel (bit-identical).
ENGINE_KERNEL = "kernel"

#: All values the ``engine=`` hooks accept.
ENGINE_NAMES = (ENGINE_GENERAL, ENGINE_KERNEL)

__all__ = [
    "ENGINE_GENERAL",
    "ENGINE_KERNEL",
    "ENGINE_NAMES",
    "OP_READ",
    "OP_WRITE",
    "POLICY_BANK_PARTITION",
    "POLICY_CLOSED_PAGE",
    "POLICY_FRFCFS_CAP",
    "POLICY_NAMES",
    "POLICY_OPEN_PAGE",
    "ControllerConfig",
    "MemoryController",
    "PhaseResult",
    "RequestChunk",
    "RequestStream",
]


@dataclass(frozen=True)
class ControllerConfig:
    """Tunable controller policy parameters.

    Attributes:
        queue_depth: total requests buffered across all per-bank FIFOs.
            Deep queues let bank machines start row cycles earlier and
            are what hides staggered page misses; 64 covers the longest
            JEDEC miss chain at the fastest speed grade in this project.
        per_bank_depth: cap on one bank's FIFO (bounds the skew between
            banks; also what a hardware implementation would have).
        refresh_enabled: model refresh commands (the paper's default) or
            suppress them (legal while interleaver data lives shorter
            than the retention period — the paper's >99 % experiment).
        record_commands: keep the full scheduled-command list on the
            result for inspection; costs memory, used by tests.
        discipline: page-management discipline (one of
            :data:`~repro.dram.policy.POLICY_NAMES`); the default
            :data:`~repro.dram.policy.POLICY_OPEN_PAGE` is the engine's
            original behavior, bit for bit.
        cap: row-hit streak cap under
            :data:`~repro.dram.policy.POLICY_FRFCFS_CAP` (ignored by
            the other disciplines); ``cap=1`` equals closed-page.
    """

    queue_depth: int = 64
    per_bank_depth: int = 16
    refresh_enabled: bool = True
    record_commands: bool = False
    discipline: str = POLICY_OPEN_PAGE
    cap: int = 4

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.per_bank_depth < 1:
            raise ValueError(f"per_bank_depth must be >= 1, got {self.per_bank_depth}")
        check_discipline(self.discipline)
        if self.cap < 1:
            raise ValueError(f"cap must be >= 1, got {self.cap}")


@dataclass
class PhaseResult:
    """Outcome of one simulated phase."""

    stats: PhaseStats
    commands: List[ScheduledCommand] = field(default_factory=list)


class MemoryController:
    """Schedules one access phase against one DRAM configuration.

    A fresh controller starts with all banks precharged and the refresh
    timer at zero; create one controller per phase (the interleaver's
    phases are milliseconds long, so cross-phase boundary effects are
    negligible, and the paper reports the phases separately).

    This class is an adapter over the shared
    :class:`~repro.dram.engine.SchedulingEngine`; the engine's bank
    state lives for the controller's lifetime, so consecutive
    :meth:`run_phase` calls see warm rows exactly as before the
    refactor.  With ``engine=`` (constructor default or per
    :meth:`run_phase` call) the batch-advance
    :class:`~repro.dram.kernel.KernelEngine` schedules instead — it
    aliases the same bank-state table, so mixing the two across phases
    keeps warm rows coherent and results bit-identical.
    """

    def __init__(self, config: DramConfig,
                 policy: Optional[ControllerConfig] = None,
                 engine: str = ENGINE_GENERAL) -> None:
        _check_engine(engine)
        self.config = config
        self.policy = policy or ControllerConfig()
        self.engine = engine
        self._engine = SchedulingEngine(config, self.policy)
        self._kernel: Optional["KernelEngine"] = None

    def bank_snapshot(self, bank: int) -> BankSnapshot:
        """Readable state of one bank (testing/debugging)."""
        return self._engine.bank_snapshot(bank)

    def _scheduler(
            self,
            engine: Optional[str]) -> "Union[SchedulingEngine, KernelEngine]":
        """The engine implementation one run should use.

        ``None`` falls back to the controller-level default.  The
        kernel is built lazily on first use and wraps (and shares bank
        state with) the resident general engine.
        """
        name = self.engine if engine is None else engine
        _check_engine(name)
        if name == ENGINE_GENERAL:
            return self._engine
        if self._kernel is None:
            # Imported here: the kernel module imports this one for the
            # policy type, so a top-level import would be circular.
            from repro.dram.kernel import KernelEngine

            self._kernel = KernelEngine(self.config, self.policy,
                                        general=self._engine)
        return self._kernel

    def run_phase(
        self,
        requests: RequestStream,
        op: str = OP_READ,
        engine: Optional[str] = None,
    ) -> PhaseResult:
        """Simulate one phase and return its statistics.

        Args:
            requests: the request stream in program order, either as an
                iterable of ``(bank, row, column)`` triples at burst
                granularity, or as an iterable of columnar chunks
                ``(banks, rows, columns)`` whose elements are
                equal-length arrays/sequences (the vectorized fast
                path).  The two shapes are scheduled identically.
            op: :data:`OP_READ` or :data:`OP_WRITE` for the whole phase.
            engine: :data:`ENGINE_GENERAL`, :data:`ENGINE_KERNEL`, or
                ``None`` for the controller's constructor-time default.
                Both engines produce bit-identical results; the kernel
                is faster on large phases.

        Returns:
            A :class:`PhaseResult` whose ``stats.utilization`` is the
            data-bus utilization of the phase.

        Raises:
            ValueError: on an unknown ``op`` or ``engine``, or when a
                request carries a bank index outside
                ``[0, geometry.banks)`` (validated at intake, naming
                the offending request).
        """
        result = self._scheduler(engine).run(as_workload(requests), op=op)
        return PhaseResult(stats=result.stats, commands=result.commands)


def _check_engine(engine: str) -> None:
    """Reject unknown ``engine=`` hook values with the known set named."""
    if engine not in ENGINE_NAMES:
        raise ValueError(
            f"engine must be one of {ENGINE_NAMES}, got {engine!r}")
