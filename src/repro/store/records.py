"""Typed result-record schema of the content-addressed store.

Every sweep in this repository — ``table1``, ``mixed``, ``energy``,
``e2e`` and ``campaign`` — decomposes into independent cells described
by frozen dataclasses of primitives.  This module is the single place
where those descriptions and their results cross the JSON boundary:

* a **config dict** is the canonical JSON-friendly description of one
  cell (the content-address basis) — :func:`phase_task_config`,
  :func:`mixed_task_config`, :func:`e2e_cell_config`,
  :func:`campaign_cell_config`;
* a **payload dict** is the JSON form of the cell's result —
  :func:`phase_stats_to_payload` / :func:`phase_stats_from_payload` and
  friends;
* :func:`derive_key` hashes ``(kind, schema version, config)`` into the
  store's content address, so two cells share an entry exactly when
  their full configuration is identical.

Round-trips are **bit-identical**: every payload value is an int, a
str, or a float serialized through :func:`json.dumps` (whose
``repr``-based float formatting is exact — ``float(repr(x)) == x`` for
every finite ``x``), so a loaded record compares ``==`` to the object
that was stored, exact float equality included.  The batteries in
``tests/store/test_records.py`` pin that for every record kind.

Versioning: bump :data:`SCHEMA_VERSION` whenever a payload layout or a
config-dict field changes — the version participates in the content
address, so stale entries from older code *miss* instead of
resurfacing.  The campaign kind additionally folds in
:data:`repro.system.campaign.CACHE_VERSION`, the pre-store cache's
evaluation version, preserving its bump-on-semantics-change contract.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, cast

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import GilbertElliottParams
from repro.dram.controller import ControllerConfig
from repro.dram.policy import POLICY_FRFCFS_CAP, POLICY_OPEN_PAGE
from repro.dram.energy import EnergyReport
from repro.dram.simulator import InterleaverSimResult
from repro.dram.stats import EnergyTally, PhaseStats
from repro.interleaver.two_stage import TwoStageConfig
from repro.system.adaptive import (
    AdaptiveCell,
    AdaptiveResult,
    RareEventCell,
    RareEventResult,
    ScenarioCell,
    ScenarioResult,
)
from repro.system.campaign import CACHE_VERSION, CampaignCell, CellResult
from repro.system.downlink import DownlinkResult
from repro.system.e2e import E2ECell, E2EResult
from repro.system.parallel import InterleaverTask, MixedTask, PhaseTask
from repro.channel.burst_stats import BurstProfile
from repro.channel.codeword import DecodingReport
from repro.dram.mixed import MixedResult

#: JSON-friendly dictionary (config and payload shape).
JSONDict = Dict[str, Any]

#: Bump when any record layout or config-dict field changes: the
#: version participates in every content address, so entries written by
#: older code miss instead of being misread.
SCHEMA_VERSION = 2

#: Mapping registry keys whose mapping display name equals the key —
#: the precondition for reassembling an
#: :class:`~repro.dram.simulator.InterleaverSimResult` from two cached
#: phase records byte-identically (``simulate_interleaver`` stamps the
#: result with ``mapping.name``; for these keys that is the key
#: itself).  Ablation variants ("no-tiling", ...) all construct an
#: ``OptimizedMapping`` whose display name differs from the registry
#: key, so full-frame reuse skips them and simulates.
FRAME_MAPPINGS = frozenset({"row-major", "optimized"})

#: Record kinds known to the store (one namespace per result type).
KIND_PHASE = "phase"
KIND_MIXED = "mixed"
KIND_E2E = "e2e"
KIND_CAMPAIGN = "campaign"
KIND_ADAPTIVE = "adaptive"
KIND_RARE_EVENT = "rare-event"
KIND_SCENARIO = "scenario"
KIND_JOB = "job"


def canonical_json(value: Any) -> str:
    """Serialize ``value`` to the canonical JSON the content address hashes.

    Sorted keys and tight separators make the encoding unique for a
    given structure; ``allow_nan=False`` fails loud instead of emitting
    the non-RFC ``NaN``/``Infinity`` tokens.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def derive_key(kind: str, config: JSONDict) -> str:
    """Content address of a record: hash of (kind, schema, config).

    Args:
        kind: record namespace (:data:`KIND_PHASE` … :data:`KIND_JOB`).
        config: canonical cell description (JSON-friendly primitives).

    Returns:
        A 32-hex-digit sha256 prefix — the same truncation the
        campaign cache used, with a collision guard at load time
        (stored configs are compared to the requested one).
    """
    payload = {"kind": kind, "schema": SCHEMA_VERSION, "config": config}
    digest = hashlib.sha256(canonical_json(payload).encode("ascii"))
    return digest.hexdigest()[:32]


# ---------------------------------------------------------------------------
# config dicts — the content-address basis of each sweep's cell
# ---------------------------------------------------------------------------


def policy_config(policy: Optional[ControllerConfig]) -> Optional[JSONDict]:
    """Canonical description of a controller policy (``None`` passes through).

    The scheduling discipline folds in **omit-when-default** style: the
    ``discipline`` key appears only for a non-default discipline, and
    the ``cap`` key only under :data:`~repro.dram.policy
    .POLICY_FRFCFS_CAP` (the one discipline that reads it).  Open-page
    policies therefore serialize to the exact pre-policy-zoo dict, so
    every content address derived before the discipline field existed
    stays byte-identical and existing caches stay warm — pinned by
    ``tests/store/test_policy_store_keys.py``.
    """
    if policy is None:
        return None
    config: JSONDict = {
        "queue_depth": policy.queue_depth,
        "per_bank_depth": policy.per_bank_depth,
        "refresh_enabled": policy.refresh_enabled,
        "record_commands": policy.record_commands,
    }
    if policy.discipline != POLICY_OPEN_PAGE:
        config["discipline"] = policy.discipline
        if policy.discipline == POLICY_FRFCFS_CAP:
            config["cap"] = policy.cap
    return config


def policy_from_config(data: Optional[JSONDict]) -> Optional[ControllerConfig]:
    """Inverse of :func:`policy_config`."""
    if data is None:
        return None
    return ControllerConfig(
        queue_depth=int(data["queue_depth"]),
        per_bank_depth=int(data["per_bank_depth"]),
        refresh_enabled=bool(data["refresh_enabled"]),
        record_commands=bool(data["record_commands"]),
        discipline=str(data.get("discipline", POLICY_OPEN_PAGE)),
        cap=int(data.get("cap", 4)),
    )


def phase_task_config(task: PhaseTask) -> JSONDict:
    """Canonical description of one phase simulation cell.

    The shared currency of cross-sweep reuse: ``table1`` persists its
    phases under this config, and any later sweep needing the same
    (config, mapping, op, n, policy) phase — the energy table's
    write/read halves, an ablation variant — hits the same entry.
    """
    return {
        "config_name": task.config_name,
        "mapping": task.mapping,
        "op": task.op,
        "n": task.n,
        "policy": policy_config(task.policy),
        "use_arrays": task.use_arrays,
    }


def interleaver_phase_task(task: InterleaverTask, op: str) -> PhaseTask:
    """The phase cell a full-frame interleaver task decomposes into.

    ``simulate_interleaver`` is exactly two ``simulate_phase`` calls
    with ``use_arrays=None``, so an :class:`~repro.system.parallel
    .InterleaverTask` reads and writes the *same* store entries a
    :class:`~repro.system.parallel.PhaseTask` of the matching direction
    does — this function is where the two key spaces are glued
    together.

    Args:
        task: the full write+read work item.
        op: which half (:data:`~repro.dram.controller.OP_WRITE` or
            :data:`~repro.dram.controller.OP_READ`).
    """
    return PhaseTask(config_name=task.config_name, mapping=task.mapping,
                     op=op, n=task.n, policy=task.policy, use_arrays=None)


def mixed_task_config(task: MixedTask) -> JSONDict:
    """Canonical description of one steady-state mixed-traffic cell."""
    return {
        "config_name": task.config_name,
        "mapping": task.mapping,
        "n": task.n,
        "group": task.group,
        "policy": policy_config(task.policy),
    }


def e2e_cell_config(cell: E2ECell) -> JSONDict:
    """Canonical description of one joint downlink -> DRAM cell."""
    return {
        "p_g2b": cell.channel.p_g2b,
        "p_b2g": cell.channel.p_b2g,
        "p_bad": cell.channel.p_bad,
        "p_good": cell.channel.p_good,
        "triangle_n": cell.interleaver.triangle_n,
        "symbols_per_element": cell.interleaver.symbols_per_element,
        "codeword_symbols": cell.interleaver.codeword_symbols,
        "n_symbols": cell.code.n_symbols,
        "t_correctable": cell.code.t_correctable,
        "config_name": cell.config_name,
        "mapping": cell.mapping,
        "seed": cell.seed,
        "frames": cell.frames,
        "policy": policy_config(cell.policy),
    }


def e2e_cell_from_config(data: JSONDict) -> E2ECell:
    """Inverse of :func:`e2e_cell_config`."""
    return E2ECell(
        channel=GilbertElliottParams(
            p_g2b=float(data["p_g2b"]),
            p_b2g=float(data["p_b2g"]),
            p_bad=float(data["p_bad"]),
            p_good=float(data["p_good"]),
        ),
        interleaver=TwoStageConfig(
            triangle_n=int(data["triangle_n"]),
            symbols_per_element=int(data["symbols_per_element"]),
            codeword_symbols=int(data["codeword_symbols"]),
        ),
        code=CodewordConfig(
            n_symbols=int(data["n_symbols"]),
            t_correctable=int(data["t_correctable"]),
        ),
        config_name=str(data["config_name"]),
        mapping=str(data["mapping"]),
        seed=int(data["seed"]),
        frames=int(data["frames"]),
        policy=policy_from_config(
            cast(Optional[JSONDict], data["policy"])),
    )


def campaign_cell_config(cell: CampaignCell) -> JSONDict:
    """Canonical description of one Monte Carlo campaign cell.

    Folds in :data:`repro.system.campaign.CACHE_VERSION` — the
    campaign evaluation's own version — so bumping either version
    retires stale entries.
    """
    config = dict(cell.to_dict())
    config["cache_version"] = CACHE_VERSION
    return config


def campaign_cell_from_config(data: JSONDict) -> CampaignCell:
    """Inverse of :func:`campaign_cell_config`."""
    return CampaignCell.from_dict(data)


def adaptive_cell_config(cell: AdaptiveCell) -> JSONDict:
    """Canonical description of one adaptive-stopping cell.

    Folds in :data:`repro.system.campaign.CACHE_VERSION` like the
    naive campaign kind — adaptive results embed a
    :class:`~repro.system.campaign.CellResult`, so a campaign
    evaluation-semantics bump must retire these entries too.
    """
    config = dict(cell.to_dict())
    config["cache_version"] = CACHE_VERSION
    return config


def adaptive_cell_from_config(data: JSONDict) -> AdaptiveCell:
    """Inverse of :func:`adaptive_cell_config`."""
    return AdaptiveCell.from_dict(data)


def rare_event_cell_config(cell: RareEventCell) -> JSONDict:
    """Canonical description of one importance-sampled cell."""
    config = dict(cell.to_dict())
    config["cache_version"] = CACHE_VERSION
    return config


def rare_event_cell_from_config(data: JSONDict) -> RareEventCell:
    """Inverse of :func:`rare_event_cell_config`."""
    return RareEventCell.from_dict(data)


def scenario_cell_config(cell: ScenarioCell) -> JSONDict:
    """Canonical description of one time-varying channel scenario cell."""
    config = dict(cell.to_dict())
    config["cache_version"] = CACHE_VERSION
    return config


def scenario_cell_from_config(data: JSONDict) -> ScenarioCell:
    """Inverse of :func:`scenario_cell_config`."""
    return ScenarioCell.from_dict(data)


# ---------------------------------------------------------------------------
# payload serializers — bit-identical JSON round-trips per result type
# ---------------------------------------------------------------------------


def energy_tally_to_payload(tally: EnergyTally) -> JSONDict:
    """JSON form of an :class:`~repro.dram.stats.EnergyTally` (pure ints)."""
    return {
        "act_pre": tally.act_pre,
        "rd": tally.rd,
        "wr": tally.wr,
        "ref": tally.ref,
        "makespan_ps": tally.makespan_ps,
    }


def energy_tally_from_payload(data: JSONDict) -> EnergyTally:
    """Inverse of :func:`energy_tally_to_payload`."""
    return EnergyTally(
        act_pre=int(data["act_pre"]),
        rd=int(data["rd"]),
        wr=int(data["wr"]),
        ref=int(data["ref"]),
        makespan_ps=int(data["makespan_ps"]),
    )


def phase_stats_to_payload(stats: PhaseStats) -> JSONDict:
    """JSON form of a :class:`~repro.dram.stats.PhaseStats`.

    The energy tally — excluded from dataclass equality but the input
    of every downstream energy report — is persisted alongside, so an
    ``energy`` run can reuse a phase a ``table1`` run simulated.
    """
    return {
        "requests": stats.requests,
        "page_hits": stats.page_hits,
        "page_misses": stats.page_misses,
        "page_empties": stats.page_empties,
        "activates": stats.activates,
        "precharges": stats.precharges,
        "refreshes": stats.refreshes,
        "data_time_ps": stats.data_time_ps,
        "makespan_ps": stats.makespan_ps,
        "command_counts": dict(stats.command_counts),
        "energy_tally": (None if stats.energy_tally is None
                         else energy_tally_to_payload(stats.energy_tally)),
    }


def phase_stats_from_payload(data: JSONDict) -> PhaseStats:
    """Inverse of :func:`phase_stats_to_payload`."""
    tally = cast(Optional[JSONDict], data["energy_tally"])
    return PhaseStats(
        requests=int(data["requests"]),
        page_hits=int(data["page_hits"]),
        page_misses=int(data["page_misses"]),
        page_empties=int(data["page_empties"]),
        activates=int(data["activates"]),
        precharges=int(data["precharges"]),
        refreshes=int(data["refreshes"]),
        data_time_ps=int(data["data_time_ps"]),
        makespan_ps=int(data["makespan_ps"]),
        command_counts={str(name): int(count) for name, count
                        in cast(JSONDict, data["command_counts"]).items()},
        energy_tally=(None if tally is None
                      else energy_tally_from_payload(tally)),
    )


def interleaver_result_from_phases(task: InterleaverTask, write: PhaseStats,
                                   read: PhaseStats) -> InterleaverSimResult:
    """Assemble a full-frame result from two cached phase records.

    The mapping display name equals the registry key for the Table I
    mappings (``"row-major"``/``"optimized"``), which are the only
    mapping keys the full-frame sweeps use — so reassembly is
    byte-identical to :func:`~repro.dram.simulator.simulate_interleaver`
    output for the same cell.
    """
    return InterleaverSimResult(
        config_name=task.config_name,
        mapping_name=task.mapping,
        write=write,
        read=read,
    )


def mixed_result_to_payload(result: MixedResult) -> JSONDict:
    """JSON form of a :class:`~repro.dram.mixed.MixedResult`.

    Recorded command lists are never persisted — the store refuses
    cells whose policy sets ``record_commands`` (see
    :meth:`~repro.store.store.ResultStore.load_mixed`), so the empty
    command list round-trips exactly.
    """
    return {
        "stats": phase_stats_to_payload(result.stats),
        "reads": result.reads,
        "writes": result.writes,
        "turnarounds": result.turnarounds,
    }


def mixed_result_from_payload(data: JSONDict) -> MixedResult:
    """Inverse of :func:`mixed_result_to_payload`."""
    return MixedResult(
        stats=phase_stats_from_payload(cast(JSONDict, data["stats"])),
        reads=int(data["reads"]),
        writes=int(data["writes"]),
        turnarounds=int(data["turnarounds"]),
    )


def burst_profile_to_payload(profile: BurstProfile) -> JSONDict:
    """JSON form of a :class:`~repro.channel.burst_stats.BurstProfile`."""
    return {
        "total_symbols": profile.total_symbols,
        "error_symbols": profile.error_symbols,
        "burst_count": profile.burst_count,
        "max_burst": profile.max_burst,
        "mean_burst": profile.mean_burst,
    }


def burst_profile_from_payload(data: JSONDict) -> BurstProfile:
    """Inverse of :func:`burst_profile_to_payload`."""
    return BurstProfile(
        total_symbols=int(data["total_symbols"]),
        error_symbols=int(data["error_symbols"]),
        burst_count=int(data["burst_count"]),
        max_burst=int(data["max_burst"]),
        mean_burst=float(data["mean_burst"]),
    )


def decoding_report_to_payload(report: DecodingReport) -> JSONDict:
    """JSON form of a :class:`~repro.channel.codeword.DecodingReport`."""
    return {
        "codewords": report.codewords,
        "failed": report.failed,
        "corrected_symbols": report.corrected_symbols,
        "residual_symbol_errors": report.residual_symbol_errors,
    }


def decoding_report_from_payload(data: JSONDict) -> DecodingReport:
    """Inverse of :func:`decoding_report_to_payload`."""
    return DecodingReport(
        codewords=int(data["codewords"]),
        failed=int(data["failed"]),
        corrected_symbols=int(data["corrected_symbols"]),
        residual_symbol_errors=int(data["residual_symbol_errors"]),
    )


def downlink_result_to_payload(result: DownlinkResult) -> JSONDict:
    """JSON form of a :class:`~repro.system.downlink.DownlinkResult`."""
    return {
        "channel_profile": burst_profile_to_payload(result.channel_profile),
        "interleaved": decoding_report_to_payload(result.interleaved),
        "baseline": decoding_report_to_payload(result.baseline),
        "max_errors_interleaved": result.max_errors_interleaved,
        "max_errors_baseline": result.max_errors_baseline,
    }


def downlink_result_from_payload(data: JSONDict) -> DownlinkResult:
    """Inverse of :func:`downlink_result_to_payload`."""
    return DownlinkResult(
        channel_profile=burst_profile_from_payload(
            cast(JSONDict, data["channel_profile"])),
        interleaved=decoding_report_from_payload(
            cast(JSONDict, data["interleaved"])),
        baseline=decoding_report_from_payload(
            cast(JSONDict, data["baseline"])),
        max_errors_interleaved=int(data["max_errors_interleaved"]),
        max_errors_baseline=int(data["max_errors_baseline"]),
    )


def energy_report_to_payload(report: EnergyReport) -> JSONDict:
    """JSON form of an :class:`~repro.dram.energy.EnergyReport`."""
    return {
        "activation_nj": report.activation_nj,
        "burst_nj": report.burst_nj,
        "refresh_nj": report.refresh_nj,
        "background_nj": report.background_nj,
        "payload_bytes": report.payload_bytes,
        "makespan_ps": report.makespan_ps,
    }


def energy_report_from_payload(data: JSONDict) -> EnergyReport:
    """Inverse of :func:`energy_report_to_payload`."""
    return EnergyReport(
        activation_nj=float(data["activation_nj"]),
        burst_nj=float(data["burst_nj"]),
        refresh_nj=float(data["refresh_nj"]),
        background_nj=float(data["background_nj"]),
        payload_bytes=int(data["payload_bytes"]),
        makespan_ps=int(data["makespan_ps"]),
    )


def campaign_result_to_payload(result: CellResult) -> JSONDict:
    """JSON form of a campaign :class:`~repro.system.campaign.CellResult`."""
    return result.to_dict()


def campaign_result_from_payload(data: JSONDict) -> CellResult:
    """Inverse of :func:`campaign_result_to_payload`."""
    return CellResult.from_dict(data)


def adaptive_result_to_payload(result: AdaptiveResult) -> JSONDict:
    """JSON form of an :class:`~repro.system.adaptive.AdaptiveResult`."""
    return result.to_dict()


def adaptive_result_from_payload(data: JSONDict) -> AdaptiveResult:
    """Inverse of :func:`adaptive_result_to_payload`."""
    return AdaptiveResult.from_dict(data)


def rare_event_result_to_payload(result: RareEventResult) -> JSONDict:
    """JSON form of a :class:`~repro.system.adaptive.RareEventResult`.

    The payload stores the exact accumulator moments (floats serialize
    through ``repr`` and round-trip exactly), so a loaded record
    compares ``==`` to the freshly computed one.
    """
    return result.to_dict()


def rare_event_result_from_payload(data: JSONDict) -> RareEventResult:
    """Inverse of :func:`rare_event_result_to_payload`."""
    return RareEventResult.from_dict(data)


def scenario_result_to_payload(result: ScenarioResult) -> JSONDict:
    """JSON form of a :class:`~repro.system.adaptive.ScenarioResult`."""
    return result.to_dict()


def scenario_result_from_payload(data: JSONDict) -> ScenarioResult:
    """Inverse of :func:`scenario_result_to_payload`."""
    return ScenarioResult.from_dict(data)


def e2e_result_to_payload(result: E2EResult) -> JSONDict:
    """JSON form of an :class:`~repro.system.e2e.E2EResult`.

    Everything the joint cell produced — channel comparison, both DRAM
    phase statistics (tallies included), per-frame latencies and the
    frame energy report — so a loaded record compares ``==`` to the
    freshly computed one.
    """
    return {
        "cell": e2e_cell_config(result.cell),
        "downlink": downlink_result_to_payload(result.downlink),
        "write": phase_stats_to_payload(result.write),
        "read": phase_stats_to_payload(result.read),
        "write_latencies_ps": list(result.write_latencies_ps),
        "read_latencies_ps": list(result.read_latencies_ps),
        "energy": energy_report_to_payload(result.energy),
    }


def e2e_result_from_payload(data: JSONDict) -> E2EResult:
    """Inverse of :func:`e2e_result_to_payload`."""
    return E2EResult(
        cell=e2e_cell_from_config(cast(JSONDict, data["cell"])),
        downlink=downlink_result_from_payload(
            cast(JSONDict, data["downlink"])),
        write=phase_stats_from_payload(cast(JSONDict, data["write"])),
        read=phase_stats_from_payload(cast(JSONDict, data["read"])),
        write_latencies_ps=tuple(
            int(value) for value in
            cast(List[Any], data["write_latencies_ps"])),
        read_latencies_ps=tuple(
            int(value) for value in
            cast(List[Any], data["read_latencies_ps"])),
        energy=energy_report_from_payload(cast(JSONDict, data["energy"])),
    )
