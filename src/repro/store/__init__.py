"""Content-addressed result store, shared by every sweep.

The package has four layers, bottom up:

* :mod:`repro.store.records` — the typed, versioned schema: canonical
  config dicts (content-address basis) and bit-identical JSON payload
  round-trips for every sweep's result type.
* :mod:`repro.store.store` — :class:`~repro.store.store.ResultStore`,
  the atomic on-disk document store all five sweeps (``table1``,
  ``mixed``, ``energy``, ``e2e``, ``campaign``) write through and read
  from.
* :mod:`repro.store.export` — the one file-opening/export helper every
  CLI ``--json``/``--csv``/``--out`` writer funnels through.
* :mod:`repro.store.jobs` / :mod:`repro.store.server` — the
  ``repro serve`` job engine: persistent, resumable, content-addressed
  campaign jobs over the store, behind a stdlib HTTP API.
"""

from __future__ import annotations

from repro.store.export import open_export, write_csv_rows, write_json_document
from repro.store.jobs import DEFAULT_GRID_SPEC, JobEngine, JobRecord, grid_from_spec
from repro.store.records import SCHEMA_VERSION, canonical_json, derive_key
from repro.store.server import ReproServer, create_server
from repro.store.store import ResultStore

__all__ = [
    "DEFAULT_GRID_SPEC",
    "JobEngine",
    "JobRecord",
    "ReproServer",
    "ResultStore",
    "SCHEMA_VERSION",
    "canonical_json",
    "create_server",
    "derive_key",
    "grid_from_spec",
    "open_export",
    "write_csv_rows",
    "write_json_document",
]
