"""``repro serve``: a zero-dependency HTTP API over the job engine.

Built entirely on ``http.server`` (stdlib, threading server), the
API lets many clients share one warm result store instead of each
re-simulating — the "simulate once, serve many" face of the store.

Routes::

    GET  /healthz              liveness probe
    GET  /jobs                 all persisted jobs with progress
    POST /jobs                 submit a grid spec (JSON body, {} = the
                               default 162-cell campaign grid) —
                               idempotent, starts/resumes execution
    GET  /jobs/<id>            progress snapshot of one job
    GET  /jobs/<id>/results    incremental per-cell results (completed
                               cells so far, in grid order)
    GET  /jobs/<id>/table      the finished campaign report, text/plain,
                               byte-identical to ``repro campaign
                               --no-chart`` (409 until the job is done)

All state lives in the store: killing the server loses nothing, and a
restarted server resumes any unfinished job on resubmission of its
spec (same content-addressed id).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.store.jobs import JobEngine, JobRecord
from repro.store.store import ResultStore


class ReproServer(ThreadingHTTPServer):
    """The HTTP server, carrying the shared :class:`JobEngine`.

    Attributes:
        engine: the job engine every handler thread talks to.
    """

    #: Handler threads die with the process; jobs persist in the store.
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], engine: JobEngine) -> None:
        """Bind to ``address`` and serve ``engine``."""
        super().__init__(address, RequestHandler)
        self.engine = engine


def create_server(store_root: str, host: str = "127.0.0.1", port: int = 0,
                  jobs: Optional[int] = None) -> ReproServer:
    """Build a ready-to-serve :class:`ReproServer`.

    Args:
        store_root: result-store directory (created if missing).
        host: bind address.
        port: bind port (``0`` = ephemeral; read
            ``server.server_address`` for the chosen one).
        jobs: worker processes per running job.
    """
    engine = JobEngine(ResultStore(store_root), jobs=jobs)
    return ReproServer((host, port), engine)


class RequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the job engine (one instance per request)."""

    #: Advertised in responses; keep in lockstep with the package.
    server_version = "repro-serve/1"

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request logging (timestamped noise on stderr)."""

    @property
    def engine(self) -> JobEngine:
        """The shared job engine of the owning server."""
        server = self.server
        assert isinstance(server, ReproServer)
        return server.engine

    def _send_json(self, code: int, document: Any) -> None:
        """Write one JSON response with the store's canonical settings."""
        body = json.dumps(document, sort_keys=True,
                          allow_nan=False).encode("utf-8") + b"\n"
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, code: int, text: str) -> None:
        """Write one plain-text response."""
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _job_or_404(self, job_id: str) -> Optional[JobRecord]:
        """Resolve a job id, answering 404 when it is unknown."""
        record = self.engine.get(job_id)
        if record is None:
            self._send_json(404, {"error": f"unknown job {job_id}"})
        return record

    def do_GET(self) -> None:
        """Serve the read-only routes."""
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts == ["healthz"]:
            self._send_json(200, {"status": "ok"})
            return
        if parts == ["jobs"]:
            statuses = [self.engine.status(record)
                        for record in self.engine.list_jobs()]
            self._send_json(200, {"jobs": statuses})
            return
        if len(parts) == 2 and parts[0] == "jobs":
            record = self._job_or_404(parts[1])
            if record is not None:
                self._send_json(200, self.engine.status(record))
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "results":
            record = self._job_or_404(parts[1])
            if record is not None:
                results = self.engine.results(record)
                self._send_json(200, {
                    "job": record.job_id,
                    "total": len(results),
                    "completed": sum(1 for r in results if r is not None),
                    "cells": [r.to_dict() for r in results if r is not None],
                })
            return
        if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "table":
            record = self._job_or_404(parts[1])
            if record is not None:
                table = self.engine.table(record)
                if table is None:
                    self._send_json(409, {"error": "job not complete"})
                else:
                    self._send_text(200, table + "\n")
            return
        self._send_json(404, {"error": f"no route {self.path}"})

    def do_POST(self) -> None:
        """Serve job submission (idempotent: same spec, same job)."""
        parts = [part for part in self.path.split("?")[0].split("/") if part]
        if parts != ["jobs"]:
            self._send_json(404, {"error": f"no route {self.path}"})
            return
        length = int(self.headers.get("Content-Length") or "0")
        body = self.rfile.read(length) if length else b""
        try:
            spec = json.loads(body) if body.strip() else {}
        except ValueError:
            self._send_json(400, {"error": "request body is not JSON"})
            return
        if not isinstance(spec, dict):
            self._send_json(400, {"error": "grid spec must be a JSON object"})
            return
        try:
            record = self.engine.submit(spec)
        except ValueError as error:
            self._send_json(400, {"error": str(error)})
            return
        self.engine.start(record)
        self._send_json(202, self.engine.status(record))
