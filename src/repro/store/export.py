"""The one place CLI exports open files.

Every ``--json``/``--csv``/``--out`` path in the CLI funnels through
:func:`open_export`, which fixes two long-standing paper cuts in one
move:

* **CSV newline discipline** — the :mod:`csv` module documents that
  writer streams must be opened with ``newline=""``; the previous
  ``open(path, "w")`` writers produced corrupted ``\\r\\r\\n`` rows on
  Windows.  JSON and plain-text exports are unaffected by the setting
  (they write ``"\\n"`` explicitly), so one opener serves all formats.
* **missing parent directories** — ``--json out/run7/cells.json`` used
  to die with a raw ``FileNotFoundError`` traceback; the opener now
  creates intermediate directories first.

The row-level helpers (:func:`write_json_document`, :func:`write_csv_rows`)
are the store-level exporters the sweep commands share, so every export
carries the same canonical JSON settings (sorted keys,
``allow_nan=False``) as the store documents themselves.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Dict, IO, Iterable, Sequence


def open_export(path: str) -> IO[str]:
    """Open ``path`` for writing an export, creating parent directories.

    Returns a text stream opened with ``newline=""`` — required for
    :mod:`csv` writers, harmless for JSON/plain text — usable as a
    context manager exactly like :func:`open`.

    Args:
        path: destination file; intermediate directories are created.
    """
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return open(path, "w", newline="")


def write_json_document(path: str, document: Any) -> None:
    """Write one JSON document with the store's canonical settings.

    Sorted keys, two-space indent, a trailing newline, and
    ``allow_nan=False`` so non-RFC ``Infinity``/``NaN`` tokens fail
    loud at export time instead of breaking downstream parsers.

    Args:
        path: destination file (parents created).
        document: any JSON-serializable value.
    """
    with open_export(path) as stream:
        json.dump(document, stream, indent=2, sort_keys=True,
                  allow_nan=False)
        stream.write("\n")


def write_csv_rows(path: str, fieldnames: Sequence[str],
                   rows: Iterable[Dict[str, Any]]) -> None:
    """Write one CSV table (header + rows) through the export opener.

    Args:
        path: destination file (parents created).
        fieldnames: column order of the header.
        rows: one dict per row, keyed by field name.
    """
    with open_export(path) as stream:
        writer = csv.DictWriter(stream, fieldnames=list(fieldnames))
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
