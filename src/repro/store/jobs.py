"""Campaign job engine: persistent, resumable grid runs over the store.

A *job* is one campaign grid submitted for asynchronous execution.  Its
identity is content-addressed — the job id is the store key of its
normalized grid specification — so submitting the same grid twice
yields the same job, and "resubmit after a crash" is indistinguishable
from "resume".  No timestamps, counters or other mutable bookkeeping
exist anywhere: progress is derived by counting the per-cell results
the campaign engine has already persisted in the store, which makes the
engine correct across interruptions, server restarts and concurrent
submissions by construction.

The execution path is exactly the CLI's: cells run through
:func:`repro.system.campaign.run_campaign` with the shared
:class:`~repro.store.store.ResultStore` and ``resume=True``, on the
same process pool.  A warm store therefore serves a job's cells without
recomputation regardless of whether a previous ``repro campaign``
invocation, a crashed job or another client paid for them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import coherence_params
from repro.interleaver.two_stage import TwoStageConfig
from repro.store.records import KIND_JOB, JSONDict, derive_key
from repro.store.store import ResultStore
from repro.system.campaign import (
    CampaignCell,
    CellResult,
    campaign_grid,
    campaign_report,
    run_campaign,
    summarize_campaign,
)

#: Grid specification defaults — field for field the defaults of
#: ``repro campaign`` (the 162-cell grid: 3 fades x 3 fractions x 3
#: triangle sizes x 6 seeds), so a spec of ``{}`` submitted to the
#: server runs exactly what the bare CLI command runs.
DEFAULT_GRID_SPEC: JSONDict = {
    "fade_symbols": [40.0, 60.0, 90.0],
    "fade_fraction": [0.002, 0.004, 0.008],
    "p_bad": 0.7,
    "p_good": 0.0,
    "triangle_n": [15, 32, 48],
    "symbols_per_element": 4,
    "codeword_symbols": 24,
    "t_correctable": 2,
    "seeds": 6,
    "seed_base": 2024,
    "frames": 400,
}


def normalize_spec(spec: JSONDict) -> JSONDict:
    """Merge a partial grid spec with the defaults and coerce types.

    Normalization makes job identity robust: ``{"frames": 400}`` and
    ``{}`` and ``{"frames": 400.0}`` all canonicalize to the same spec,
    hence the same content-addressed job id.

    Args:
        spec: any subset of :data:`DEFAULT_GRID_SPEC` keys.

    Raises:
        ValueError: on unknown keys or malformed values.
    """
    unknown = set(spec) - set(DEFAULT_GRID_SPEC)
    if unknown:
        known = ", ".join(sorted(DEFAULT_GRID_SPEC))
        raise ValueError(
            f"unknown grid spec keys {sorted(unknown)}; known: {known}")
    merged = dict(DEFAULT_GRID_SPEC)
    merged.update(spec)
    try:
        return {
            "fade_symbols": [float(x) for x in list(merged["fade_symbols"])],
            "fade_fraction": [float(x) for x in list(merged["fade_fraction"])],
            "p_bad": float(merged["p_bad"]),
            "p_good": float(merged["p_good"]),
            "triangle_n": [int(x) for x in list(merged["triangle_n"])],
            "symbols_per_element": int(merged["symbols_per_element"]),
            "codeword_symbols": int(merged["codeword_symbols"]),
            "t_correctable": int(merged["t_correctable"]),
            "seeds": int(merged["seeds"]),
            "seed_base": int(merged["seed_base"]),
            "frames": int(merged["frames"]),
        }
    except (TypeError, ValueError) as error:
        raise ValueError(f"malformed grid spec: {error}") from None


def grid_from_spec(spec: JSONDict) -> List[CampaignCell]:
    """Build the campaign cell grid a (partial) spec describes.

    The single grid builder shared by ``repro campaign`` and the job
    engine, so the CLI and the server can never drift apart on what the
    default grid means.

    Args:
        spec: any subset of :data:`DEFAULT_GRID_SPEC` keys
            (:func:`normalize_spec` fills the rest).

    Raises:
        ValueError: on unknown keys, malformed values, or grid
            parameters the simulators reject (bad fade statistics,
            non-positive seeds/frames, inconsistent geometry).
    """
    merged = normalize_spec(spec)
    if merged["seeds"] < 1 or merged["frames"] < 1:
        raise ValueError("seeds and frames must be >= 1")
    channels = [
        coherence_params(length, fraction, p_bad=merged["p_bad"],
                         p_good=merged["p_good"])
        for length in merged["fade_symbols"]
        for fraction in merged["fade_fraction"]
    ]
    interleavers = [
        TwoStageConfig(triangle_n=n,
                       symbols_per_element=merged["symbols_per_element"],
                       codeword_symbols=merged["codeword_symbols"])
        for n in merged["triangle_n"]
    ]
    codes = [CodewordConfig(n_symbols=merged["codeword_symbols"],
                            t_correctable=merged["t_correctable"])]
    seeds = range(merged["seed_base"], merged["seed_base"] + merged["seeds"])
    return campaign_grid(channels, interleavers, codes, seeds,
                         merged["frames"])


@dataclass(frozen=True)
class JobRecord:
    """One submitted campaign grid.

    Attributes:
        job_id: content-addressed identity (store key of the
            normalized spec).
        spec: the normalized grid specification.
        cells: the grid, in deterministic
            :func:`~repro.system.campaign.campaign_grid` order.
    """

    job_id: str
    spec: JSONDict
    cells: Tuple[CampaignCell, ...]


class JobEngine:
    """Submit, execute and observe campaign jobs over one store.

    Thread-safe: the HTTP server calls in from concurrent handler
    threads.  Execution itself happens on one background thread per
    active job (the heavy lifting is in ``run_campaign``'s process
    pool, so one coordinating thread per job suffices).
    """

    def __init__(self, store: ResultStore,
                 jobs: Optional[int] = None) -> None:
        """Create an engine over ``store``.

        Args:
            store: the shared result store (cells and job records).
            jobs: worker processes per running job (see
                :func:`repro.system.parallel.resolve_jobs`).
        """
        self.store = store
        self.jobs = jobs
        self._threads: Dict[str, threading.Thread] = {}
        self._lock = threading.Lock()

    def submit(self, spec: JSONDict) -> JobRecord:
        """Register a grid (idempotently) and return its job record.

        Does not start execution — pair with :meth:`start`.  The job
        record is persisted in the store, so a restarted server lists
        and resumes jobs submitted before the restart.

        Raises:
            ValueError: when the spec is unknown-keyed or malformed.
        """
        cells = grid_from_spec(spec)
        normalized = normalize_spec(spec)
        job_id = derive_key(KIND_JOB, normalized)
        self.store.write(KIND_JOB, normalized, {"total": len(cells)})
        return JobRecord(job_id=job_id, spec=normalized, cells=tuple(cells))

    def get(self, job_id: str) -> Optional[JobRecord]:
        """Look a persisted job up by id (``None`` when unknown)."""
        for config, _payload in self.store.list_entries(KIND_JOB):
            if derive_key(KIND_JOB, config) == job_id:
                return JobRecord(job_id=job_id, spec=config,
                                 cells=tuple(grid_from_spec(config)))
        return None

    def list_jobs(self) -> List[JobRecord]:
        """All persisted jobs, in deterministic (key-sorted) order."""
        records = []
        for config, _payload in self.store.list_entries(KIND_JOB):
            records.append(
                JobRecord(job_id=derive_key(KIND_JOB, config), spec=config,
                          cells=tuple(grid_from_spec(config))))
        return records

    def start(self, record: JobRecord) -> bool:
        """Begin (or resume) executing a job in the background.

        Returns ``True`` when a worker thread was launched, ``False``
        when the job is already running or already complete — starting
        is idempotent, like everything else here.
        """
        with self._lock:
            thread = self._threads.get(record.job_id)
            if thread is not None and thread.is_alive():
                return False
            if self.completed(record) >= len(record.cells):
                return False
            thread = threading.Thread(target=self.run, args=(record,),
                                      daemon=True)
            self._threads[record.job_id] = thread
            thread.start()
            return True

    def run(self, record: JobRecord) -> List[CellResult]:
        """Execute a job synchronously (the worker-thread body).

        Runs the grid through the standard campaign engine with
        ``resume=True`` over the shared store: cells persisted by
        earlier runs — interrupted jobs, prior CLI invocations, other
        sweeps' clients — are reused, the rest are simulated and
        persisted the moment they finish.
        """
        return run_campaign(list(record.cells), jobs=self.jobs,
                            store=self.store, resume=True)

    def completed(self, record: JobRecord) -> int:
        """Cells of the job that already have a persisted result."""
        return self.store.campaign_progress(list(record.cells))

    def running(self, record: JobRecord) -> bool:
        """Whether a worker thread is currently executing the job."""
        thread = self._threads.get(record.job_id)
        return thread is not None and thread.is_alive()

    def status(self, record: JobRecord) -> JSONDict:
        """Progress snapshot of a job (the ``GET /jobs/<id>`` body)."""
        completed = self.completed(record)
        total = len(record.cells)
        return {
            "job": record.job_id,
            "total": total,
            "completed": completed,
            "done": completed >= total,
            "running": self.running(record),
            "spec": record.spec,
        }

    def results(self, record: JobRecord) -> List[Optional[CellResult]]:
        """Per-cell results in grid order (``None`` = not finished yet).

        The incremental-results primitive: pollers receive every cell
        completed so far while the rest of the grid is still running.
        """
        return [self.store.load_campaign(cell) for cell in record.cells]

    def table(self, record: JobRecord) -> Optional[str]:
        """The finished job's campaign report, or ``None`` if incomplete.

        Byte-identical to what ``repro campaign --no-chart`` prints for
        the same grid — the server and the CLI share
        :func:`~repro.system.campaign.campaign_report`.
        """
        results = self.results(record)
        complete = [result for result in results if result is not None]
        if len(complete) < len(record.cells):
            return None
        return campaign_report(complete, summarize_campaign(complete))
