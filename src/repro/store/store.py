"""Content-addressed on-disk result store shared by every sweep.

One flat directory of atomic JSON documents, one per simulation cell,
named ``<kind>-<key>.json`` where ``key`` is the
:func:`~repro.store.records.derive_key` hash of the cell's canonical
configuration.  The layout generalizes the campaign engine's per-cell
cache (PR 2) to every sweep kind and keeps its two guarantees:

* **atomic writes** — documents land via a temp file and
  :func:`os.replace`, so a killed run never leaves torn entries;
* **never trust a hash alone** — every read compares the stored
  configuration against the requested one, so hash collisions and
  hand-edited files recompute instead of corrupting results.

Error discipline (the PR 7 bugfix): an *absent* entry is the normal
cache-miss case and stays quiet, but an *unreadable* entry — permission
error, corrupt JSON, a directory squatting on the path — warns once to
stderr before recomputing, so store corruption is visible instead of
silently burning CPU.

Cross-sweep reuse happens at the key level: a ``table1`` run persists
each phase under its :func:`~repro.store.records.phase_task_config`
key, and a later ``energy`` run finds the write/read pair of the same
(config, mapping, n) cell via :meth:`ResultStore.load_interleaver`
without re-entering the scheduling engine (see
:data:`~repro.store.records.FRAME_MAPPINGS` for the applicability
guard).
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Optional, Set, Tuple

from repro.dram.controller import OP_READ, OP_WRITE
from repro.dram.mixed import MixedResult
from repro.dram.simulator import InterleaverSimResult
from repro.dram.stats import PhaseStats
from repro.store.records import (
    FRAME_MAPPINGS,
    KIND_ADAPTIVE,
    KIND_CAMPAIGN,
    KIND_E2E,
    KIND_MIXED,
    KIND_PHASE,
    KIND_RARE_EVENT,
    KIND_SCENARIO,
    JSONDict,
    SCHEMA_VERSION,
    adaptive_cell_config,
    adaptive_result_from_payload,
    adaptive_result_to_payload,
    campaign_cell_config,
    campaign_result_from_payload,
    campaign_result_to_payload,
    derive_key,
    e2e_cell_config,
    e2e_result_from_payload,
    e2e_result_to_payload,
    interleaver_phase_task,
    interleaver_result_from_phases,
    mixed_result_from_payload,
    mixed_result_to_payload,
    mixed_task_config,
    phase_stats_from_payload,
    phase_stats_to_payload,
    phase_task_config,
    rare_event_cell_config,
    rare_event_result_from_payload,
    rare_event_result_to_payload,
    scenario_cell_config,
    scenario_result_from_payload,
    scenario_result_to_payload,
)
from repro.system.adaptive import (
    AdaptiveCell,
    AdaptiveResult,
    RareEventCell,
    RareEventResult,
    ScenarioCell,
    ScenarioResult,
)
from repro.system.campaign import CampaignCell, CellResult
from repro.system.e2e import E2ECell, E2EResult
from repro.system.parallel import InterleaverTask, MixedTask, PhaseTask


class ResultStore:
    """A directory of content-addressed simulation results.

    Cheap to construct and picklable in spirit (it holds only a path
    and a warning set), so it can be threaded through sweep functions
    without ceremony.  All writes are atomic; all reads verify the
    stored configuration against the requested one.

    Attributes:
        root: the store directory (created on construction).
    """

    def __init__(self, root: str) -> None:
        """Open (and create if missing) the store rooted at ``root``."""
        self.root = root
        self._warned: Set[str] = set()
        os.makedirs(root, exist_ok=True)

    # -- generic document layer --------------------------------------

    def entry_path(self, kind: str, key: str) -> str:
        """Path of the document holding ``(kind, key)``."""
        return os.path.join(self.root, f"{kind}-{key}.json")

    def write(self, kind: str, config: JSONDict, payload: JSONDict) -> str:
        """Persist one result document atomically; returns its key.

        Args:
            kind: record namespace (``"phase"``, ``"campaign"``, ...).
            config: canonical cell description (the content-address
                basis, stored alongside for collision detection).
            payload: the JSON-friendly result body.
        """
        key = derive_key(kind, config)
        path = self.entry_path(kind, key)
        document = {
            "kind": kind,
            "schema": SCHEMA_VERSION,
            "config": config,
            "payload": payload,
        }
        tmp = path + ".tmp"
        with open(tmp, "w") as stream:
            json.dump(document, stream, sort_keys=True, allow_nan=False)
        os.replace(tmp, path)  # atomic: a killed run never leaves torn entries
        return key

    def read(self, kind: str, config: JSONDict) -> Optional[JSONDict]:
        """Load the payload stored for ``(kind, config)``, if trustworthy.

        Returns ``None`` — meaning "recompute" — in three cases, with
        different verbosity:

        * the entry is **absent** (normal cache miss): quiet;
        * the entry is **unreadable** (permission error, corrupt JSON,
          a directory at the path): warns once per path to stderr;
        * the entry is **foreign** (schema/kind/config mismatch after a
          hash collision or hand edit): quiet, by the never-trust-a-hash
          rule.
        """
        path = self.entry_path(kind, derive_key(kind, config))
        try:
            with open(path) as stream:
                document = json.load(stream)
        except FileNotFoundError:
            return None  # entry absent: the normal cache-miss case
        except (OSError, ValueError) as error:
            self._warn_unreadable(path, error)
            return None
        if not isinstance(document, dict):
            self._warn_unreadable(path, ValueError("not a JSON object"))
            return None
        if (document.get("kind") != kind
                or document.get("schema") != SCHEMA_VERSION
                or document.get("config") != config):
            return None  # stale or colliding entry: recompute, quietly
        payload = document.get("payload")
        if not isinstance(payload, dict):
            self._warn_unreadable(path, ValueError("payload missing"))
            return None
        return payload

    def _warn_unreadable(self, path: str, error: Exception) -> None:
        """Report an unreadable entry once per path, then stay quiet."""
        if path in self._warned:
            return
        self._warned.add(path)
        print(f"warning: result store entry {path} is unreadable "
              f"({error}); recomputing", file=sys.stderr)

    def list_entries(self, kind: str) -> List[Tuple[JSONDict, JSONDict]]:
        """All readable ``(config, payload)`` pairs of one kind.

        Used by the job engine to enumerate persisted jobs.  Entries
        are returned in sorted filename order (deterministic across
        runs); unreadable or foreign files are skipped with the same
        warn-once discipline as :meth:`read`.
        """
        prefix = f"{kind}-"
        entries: List[Tuple[JSONDict, JSONDict]] = []
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return entries
        for name in names:
            if not name.startswith(prefix) or not name.endswith(".json"):
                continue
            path = os.path.join(self.root, name)
            try:
                with open(path) as stream:
                    document = json.load(stream)
            except (OSError, ValueError) as error:
                self._warn_unreadable(path, error)
                continue
            if (not isinstance(document, dict)
                    or document.get("kind") != kind
                    or document.get("schema") != SCHEMA_VERSION):
                continue
            config = document.get("config")
            payload = document.get("payload")
            if isinstance(config, dict) and isinstance(payload, dict):
                entries.append((config, payload))
        return entries

    # -- typed layer: one load/store pair per sweep kind ---------------

    def store_phase(self, task: PhaseTask, stats: PhaseStats) -> None:
        """Persist one phase simulation result."""
        self.write(KIND_PHASE, phase_task_config(task),
                   phase_stats_to_payload(stats))

    def load_phase(self, task: PhaseTask) -> Optional[PhaseStats]:
        """Load a phase result, or ``None`` on a miss."""
        payload = self.read(KIND_PHASE, phase_task_config(task))
        if payload is None:
            return None
        try:
            return phase_stats_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None  # foreign payload shape: recompute
        except AttributeError:
            return None

    def store_interleaver(self, task: InterleaverTask,
                          result: InterleaverSimResult) -> None:
        """Persist a full-frame result as its two phase records.

        Decomposing instead of storing the pair as one blob is what
        makes reuse *cross-sweep*: the write/read records land under
        the exact keys a ``table1`` run uses, so either sweep can warm
        the other.  Mappings whose display name differs from their
        registry key (see :data:`~repro.store.records.FRAME_MAPPINGS`)
        are not persisted — reassembly could not reproduce their
        ``mapping_name`` byte-identically.
        """
        if task.mapping not in FRAME_MAPPINGS:
            return
        self.store_phase(interleaver_phase_task(task, OP_WRITE), result.write)
        self.store_phase(interleaver_phase_task(task, OP_READ), result.read)

    def load_interleaver(self, task: InterleaverTask
                         ) -> Optional[InterleaverSimResult]:
        """Assemble a full-frame result from two cached phase records.

        Hits only when *both* phases of the cell are present (a prior
        ``table1`` or ``energy`` run persisted them) and the mapping is
        reassembly-safe; any miss returns ``None`` and the caller
        simulates.
        """
        if task.mapping not in FRAME_MAPPINGS:
            return None
        write = self.load_phase(interleaver_phase_task(task, OP_WRITE))
        if write is None:
            return None
        read = self.load_phase(interleaver_phase_task(task, OP_READ))
        if read is None:
            return None
        return interleaver_result_from_phases(task, write, read)

    def store_mixed(self, task: MixedTask, result: MixedResult) -> None:
        """Persist one mixed-traffic result.

        Cells whose policy records per-command traces are skipped: the
        command list is a debugging artifact the JSON schema
        deliberately omits, and serving a recorded run from the store
        would silently drop it.
        """
        if task.policy is not None and task.policy.record_commands:
            return
        self.write(KIND_MIXED, mixed_task_config(task),
                   mixed_result_to_payload(result))

    def load_mixed(self, task: MixedTask) -> Optional[MixedResult]:
        """Load a mixed-traffic result, or ``None`` on a miss."""
        if task.policy is not None and task.policy.record_commands:
            return None
        payload = self.read(KIND_MIXED, mixed_task_config(task))
        if payload is None:
            return None
        try:
            return mixed_result_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def store_e2e(self, cell: E2ECell, result: E2EResult) -> None:
        """Persist one end-to-end co-simulation result."""
        self.write(KIND_E2E, e2e_cell_config(cell),
                   e2e_result_to_payload(result))

    def load_e2e(self, cell: E2ECell) -> Optional[E2EResult]:
        """Load an end-to-end result, or ``None`` on a miss."""
        payload = self.read(KIND_E2E, e2e_cell_config(cell))
        if payload is None:
            return None
        try:
            return e2e_result_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None

    def store_campaign(self, result: CellResult) -> None:
        """Persist one Monte Carlo campaign cell result."""
        self.write(KIND_CAMPAIGN, campaign_cell_config(result.cell),
                   campaign_result_to_payload(result))

    def load_campaign(self, cell: CampaignCell) -> Optional[CellResult]:
        """Load a campaign cell result, or ``None`` on a miss."""
        payload = self.read(KIND_CAMPAIGN, campaign_cell_config(cell))
        if payload is None:
            return None
        try:
            result = campaign_result_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None
        if result.cell != cell:
            return None  # embedded cell drifted from the config: recompute
        return result

    def store_adaptive(self, result: AdaptiveResult) -> None:
        """Persist one adaptive-stopping cell result."""
        self.write(KIND_ADAPTIVE, adaptive_cell_config(result.cell),
                   adaptive_result_to_payload(result))

    def load_adaptive(self, cell: AdaptiveCell) -> Optional[AdaptiveResult]:
        """Load an adaptive-stopping result, or ``None`` on a miss."""
        payload = self.read(KIND_ADAPTIVE, adaptive_cell_config(cell))
        if payload is None:
            return None
        try:
            result = adaptive_result_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None
        if result.cell != cell:
            return None  # embedded cell drifted from the config: recompute
        return result

    def store_rare_event(self, result: RareEventResult) -> None:
        """Persist one importance-sampled cell result."""
        self.write(KIND_RARE_EVENT, rare_event_cell_config(result.cell),
                   rare_event_result_to_payload(result))

    def load_rare_event(self, cell: RareEventCell
                        ) -> Optional[RareEventResult]:
        """Load an importance-sampled result, or ``None`` on a miss."""
        payload = self.read(KIND_RARE_EVENT, rare_event_cell_config(cell))
        if payload is None:
            return None
        try:
            result = rare_event_result_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None
        if result.cell != cell:
            return None
        return result

    def store_scenario(self, result: ScenarioResult) -> None:
        """Persist one time-varying channel scenario result."""
        self.write(KIND_SCENARIO, scenario_cell_config(result.cell),
                   scenario_result_to_payload(result))

    def load_scenario(self, cell: ScenarioCell) -> Optional[ScenarioResult]:
        """Load a scenario result, or ``None`` on a miss."""
        payload = self.read(KIND_SCENARIO, scenario_cell_config(cell))
        if payload is None:
            return None
        try:
            result = scenario_result_from_payload(payload)
        except (KeyError, TypeError, ValueError):
            return None
        if result.cell != cell:
            return None
        return result

    def campaign_progress(self, cells: List[CampaignCell]) -> int:
        """How many of ``cells`` already have a stored result.

        The job engine's progress counter: derived entirely from the
        store contents, so it is correct across interruptions, restarts
        and concurrent writers without any mutable bookkeeping.
        """
        count = 0
        config_keys: Dict[str, bool] = {}
        for cell in cells:
            key = derive_key(KIND_CAMPAIGN, campaign_cell_config(cell))
            if key in config_keys:
                present = config_keys[key]
            else:
                present = os.path.exists(self.entry_path(KIND_CAMPAIGN, key))
                config_keys[key] = present
            if present:
                count += 1
        return count
