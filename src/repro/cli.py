"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1``    — regenerate the paper's Table I (any subset of configs)
* ``mixed``     — steady-state interleaved read/write utilization
* ``policy``    — utilization across the scheduling-policy zoo
  (config x discipline grid; see :mod:`repro.dram.policy`)
* ``ablation``  — per-optimization ablation of the optimized mapping
* ``energy``    — per-frame energy table and the provisioning Pareto chart
* ``fig1``      — render the Fig. 1 mapping panels as text
* ``downlink``  — run the optical-downlink reliability comparison
* ``campaign``  — Monte Carlo downlink campaign over a fade/geometry
  grid; ``--ci-width``/``--ci-rel`` switch to adaptive stopping,
  ``--rare-event`` to importance sampling, ``--scenario`` to
  time-varying channel trajectories (``contact-pass``, ``weather``
  cloud-attenuation traces, ``multi-pass`` contact windows)
* ``e2e``       — joint downlink -> DRAM co-simulation table (FER +
  utilization + per-frame latency percentiles + energy per cell)
* ``provision`` — size a DRAM system for a target line rate
* ``serve``     — HTTP job API over a shared result store (submit a
  campaign grid, poll progress, stream incremental results)
* ``trace``     — record a phase's command trace and replay-check it
* ``configs``   — list the built-in device configurations
* ``lint``      — run the repo-specific static analyzer (R001–R006)

Simulation grids (``table1``, ``mixed``, ``ablation``, ``energy``,
``e2e``)
accept ``--jobs N`` to fan the (config x mapping x phase) work items
out over N worker processes (``--jobs 0`` = all cores); results are
identical to a serial run.  ``table1``, ``mixed``, ``energy``, ``e2e``
and ``campaign`` also accept ``--store DIR``, the shared
content-addressed result store: cells already persisted by *any*
earlier run — the same command, a different sweep over the same
(config, mapping, n) cells, or the ``serve`` job engine — are reused
instead of re-simulated, byte-identically.  ``table1``, ``mixed``,
``ablation`` and ``energy`` additionally accept ``--kernel`` to
schedule through the batch-advance kernel engine
(:mod:`repro.dram.kernel`): results and store keys are bit-identical
to the reference arbiter, only faster, so kernel and reference runs
share cache entries freely.  ``table1``, ``mixed``, ``energy`` and
``e2e`` accept ``--policy DISCIPLINE`` (plus ``--cap K`` for
``frfcfs-cap``) to swap the scheduling discipline; the default
``open-page`` reproduces the historical behaviour bit-for-bit.

Every command prints plain text and exits non-zero on bad arguments, so
the CLI is scriptable from shell pipelines.
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Any, Dict, List, Optional

import numpy as np

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import GilbertElliottParams, coherence_params
from repro.dram.controller import (
    ENGINE_GENERAL,
    ENGINE_KERNEL,
    POLICY_NAMES,
    POLICY_OPEN_PAGE,
    ControllerConfig,
)
from repro.dram.presets import TABLE1_CONFIG_NAMES, all_configs, get_config
from repro.dram.simulator import simulate_interleaver
from repro.interleaver.triangular import RectangularIndexSpace, TriangularIndexSpace
from repro.interleaver.two_stage import TwoStageConfig
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping
from repro.store.export import open_export, write_csv_rows
from repro.store.jobs import grid_from_spec
from repro.store.store import ResultStore
from repro.system.adaptive import (
    AdaptiveCell,
    RareEventCell,
    ScenarioCell,
    contact_pass_segments,
    default_proposal,
    format_adaptive,
    format_rare_event,
    format_scenario,
    multi_pass_segments,
    weather_segments,
)
from repro.system.campaign import (
    campaign_report,
    export_csv,
    export_json,
    run_campaign,
    summarize_campaign,
)
from repro.system.downlink import OpticalDownlink
from repro.system.parallel import (
    AdaptiveTask,
    RareEventTask,
    ScenarioTask,
    run_adaptive_tasks,
    run_rare_event_tasks,
    run_scenario_tasks,
)
from repro.system.sweep import (
    ablation_factories,
    format_e2e_table,
    format_energy_table,
    format_mixed_table,
    format_policy_table,
    format_table1,
    run_e2e_table,
    run_energy_table,
    run_mixed_table,
    run_policy_table,
    run_table1,
    sweep_ablation,
)
from repro.system.throughput import (
    PARETO_CSV_FIELDS,
    PROVISION_CSV_FIELDS,
    energy_pareto,
    pareto_csv_rows,
    provision,
    provision_csv_rows,
    throughput_report,
)
from repro.units import gbit_per_s
from repro.viz import (
    render_adaptive_savings,
    render_campaign_gains,
    render_e2e_latency,
    render_energy_pareto,
    render_figure1,
)


def _add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the simulation grid "
                             "(0 = all cores, default 1 = serial)")


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", action="store_true",
                        help="schedule through the batch-advance kernel "
                             "engine instead of the reference arbiter "
                             "(bit-identical results, faster; shares "
                             "store entries with reference runs)")


def _engine_from(args: argparse.Namespace) -> str:
    """The ``engine=`` hook value a CLI invocation selected."""
    return ENGINE_KERNEL if getattr(args, "kernel", False) else ENGINE_GENERAL


def _add_policy_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--policy", choices=POLICY_NAMES,
                        default=POLICY_OPEN_PAGE, metavar="DISCIPLINE",
                        help="scheduling discipline "
                             f"({', '.join(POLICY_NAMES)}; default "
                             f"{POLICY_OPEN_PAGE}, the paper's operating "
                             "point and bit-identical to pre-policy runs)")
    parser.add_argument("--cap", type=int, default=4, metavar="K",
                        help="row-hit streak cap under frfcfs-cap "
                             "(default 4; ignored by other disciplines)")


def _policy_error(args: argparse.Namespace) -> Optional[str]:
    """Validate the ``--policy``/``--cap`` combination; message on error."""
    if getattr(args, "cap", 4) < 1:
        return f"--cap must be >= 1, got {args.cap}"
    return None


def _policy_from(args: argparse.Namespace) -> ControllerConfig:
    """The controller policy a CLI invocation selected."""
    return ControllerConfig(refresh_enabled=not getattr(args, "no_refresh",
                                                        False),
                            discipline=getattr(args, "policy",
                                               POLICY_OPEN_PAGE),
                            cap=getattr(args, "cap", 4))


def _add_store_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", metavar="DIR",
                        help="shared content-addressed result store: reuse "
                             "cells any earlier run persisted, write back "
                             "the rest (created if missing)")


def _open_store(args: argparse.Namespace) -> Optional[ResultStore]:
    return ResultStore(args.store) if args.store else None


def _add_table1(subparsers: Any) -> None:
    parser = subparsers.add_parser("table1", help="regenerate Table I")
    parser.add_argument("--n", type=int, default=256,
                        help="triangle dimension (default 256)")
    parser.add_argument("--no-refresh", action="store_true",
                        help="disable refresh (the paper's >99%% experiment)")
    parser.add_argument("--configs", nargs="*", metavar="NAME",
                        help="subset of configurations (default: all ten)")
    _add_policy_arguments(parser)
    _add_jobs_argument(parser)
    _add_store_argument(parser)
    _add_kernel_argument(parser)
    parser.set_defaults(func=_cmd_table1)


def _cmd_table1(args: argparse.Namespace) -> int:
    names = tuple(args.configs) if args.configs else TABLE1_CONFIG_NAMES
    unknown = set(names) - set(TABLE1_CONFIG_NAMES)
    if unknown:
        print(f"error: unknown configurations {sorted(unknown)}", file=sys.stderr)
        return 2
    policy_error = _policy_error(args)
    if policy_error:
        print(f"error: {policy_error}", file=sys.stderr)
        return 2
    policy = _policy_from(args)
    rows = run_table1(n=args.n, config_names=names, policy=policy,
                      jobs=args.jobs, store=_open_store(args),
                      engine=_engine_from(args))
    print(format_table1(rows))
    return 0


def _add_mixed(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "mixed",
        help="steady-state interleaved read/write utilization (single device)")
    parser.add_argument("--n", type=int, default=256,
                        help="triangle dimension (default 256)")
    parser.add_argument("--group", type=int, default=16,
                        help="same-direction requests issued back to back "
                             "before switching (default 16)")
    parser.add_argument("--no-refresh", action="store_true",
                        help="disable refresh (the paper's >99%% experiment)")
    parser.add_argument("--configs", nargs="*", metavar="NAME",
                        help="subset of configurations (default: all ten)")
    _add_policy_arguments(parser)
    _add_jobs_argument(parser)
    _add_store_argument(parser)
    _add_kernel_argument(parser)
    parser.set_defaults(func=_cmd_mixed)


def _cmd_mixed(args: argparse.Namespace) -> int:
    names = tuple(args.configs) if args.configs else TABLE1_CONFIG_NAMES
    unknown = set(names) - set(TABLE1_CONFIG_NAMES)
    if unknown:
        print(f"error: unknown configurations {sorted(unknown)}", file=sys.stderr)
        return 2
    if args.group < 1:
        print("error: --group must be >= 1", file=sys.stderr)
        return 2
    policy_error = _policy_error(args)
    if policy_error:
        print(f"error: {policy_error}", file=sys.stderr)
        return 2
    policy = _policy_from(args)
    rows = run_mixed_table(n=args.n, config_names=names, group=args.group,
                           policy=policy, jobs=args.jobs,
                           store=_open_store(args),
                           engine=_engine_from(args))
    print(format_mixed_table(rows))
    return 0


def _add_ablation(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "ablation", help="ablate the three mapping optimizations (Sec. II)")
    parser.add_argument("--n", type=int, default=256,
                        help="triangle dimension (default 256)")
    parser.add_argument("--configs", nargs="*", metavar="NAME",
                        help="configurations (default: DDR4-3200 LPDDR4-4266)")
    parser.add_argument("--variants", nargs="*", metavar="VARIANT",
                        help="subset of ablation variants (default: all)")
    _add_jobs_argument(parser)
    _add_kernel_argument(parser)
    parser.set_defaults(func=_cmd_ablation)


def _cmd_ablation(args: argparse.Namespace) -> int:
    names = tuple(args.configs) if args.configs else ("DDR4-3200", "LPDDR4-4266")
    unknown = set(names) - set(TABLE1_CONFIG_NAMES)
    if unknown:
        print(f"error: unknown configurations {sorted(unknown)}", file=sys.stderr)
        return 2
    known_variants = ablation_factories()
    variants = tuple(args.variants) if args.variants else tuple(known_variants)
    unknown = set(variants) - set(known_variants)
    if unknown:
        print(f"error: unknown variants {sorted(unknown)}; "
              f"known: {sorted(known_variants)}", file=sys.stderr)
        return 2
    points = sweep_ablation(config_names=names, n=args.n, variants=variants,
                            jobs=args.jobs, engine=_engine_from(args))
    print(f"{'configuration':14s} {'variant':18s} {'write':>8s} {'read':>8s} {'min':>8s}")
    for point in points:
        print(f"{point.config_name:14s} {point.variant:18s} "
              f"{point.write_utilization:8.2%} {point.read_utilization:8.2%} "
              f"{point.min_utilization:8.2%}")
    return 0


def _add_energy(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "energy",
        help="per-frame energy accounting and the provisioning Pareto chart")
    parser.add_argument("--n", type=int, default=256,
                        help="triangle dimension (default 256)")
    parser.add_argument("--no-refresh", action="store_true",
                        help="disable refresh (the paper's >99%% experiment)")
    parser.add_argument("--configs", nargs="*", metavar="NAME",
                        help="subset of configurations (default: all ten)")
    parser.add_argument("--max-channels", type=int, default=4, metavar="K",
                        help="channel counts spanned by the Pareto report "
                             "(default 4)")
    parser.add_argument("--no-pareto", action="store_true",
                        help="print only the energy table, skip the "
                             "provisioning Pareto chart")
    parser.add_argument("--csv", metavar="PATH",
                        help="write one CSV row per provisioning Pareto "
                             "point")
    _add_policy_arguments(parser)
    _add_jobs_argument(parser)
    _add_store_argument(parser)
    _add_kernel_argument(parser)
    parser.set_defaults(func=_cmd_energy)


def _cmd_energy(args: argparse.Namespace) -> int:
    names = tuple(args.configs) if args.configs else TABLE1_CONFIG_NAMES
    unknown = set(names) - set(TABLE1_CONFIG_NAMES)
    if unknown:
        print(f"error: unknown configurations {sorted(unknown)}", file=sys.stderr)
        return 2
    if args.max_channels < 1:
        print("error: --max-channels must be >= 1", file=sys.stderr)
        return 2
    if args.csv and args.no_pareto:
        print("error: --csv exports the Pareto points, which --no-pareto "
              "skips", file=sys.stderr)
        return 2
    policy_error = _policy_error(args)
    if policy_error:
        print(f"error: {policy_error}", file=sys.stderr)
        return 2
    policy = _policy_from(args)
    rows = run_energy_table(n=args.n, config_names=names, policy=policy,
                            jobs=args.jobs, store=_open_store(args),
                            engine=_engine_from(args))
    print(format_energy_table(rows))
    if not args.no_pareto:
        cells = [
            (throughput_report(get_config(row.config_name), row.result),
             row.combined)
            for row in rows
        ]
        points = energy_pareto(cells, max_channels=args.max_channels)
        print()
        print(render_energy_pareto(points))
        if args.csv:
            write_csv_rows(args.csv, PARETO_CSV_FIELDS,
                           pareto_csv_rows(points))
    return 0


def _add_policy(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "policy",
        help="sweep the scheduling-policy axis: every configuration "
             "under every page-management discipline")
    parser.add_argument("--n", type=int, default=256,
                        help="triangle dimension (default 256)")
    parser.add_argument("--no-refresh", action="store_true",
                        help="disable refresh (the paper's >99%% experiment)")
    parser.add_argument("--configs", nargs="*", metavar="NAME",
                        help="subset of configurations (default: all ten)")
    parser.add_argument("--disciplines", nargs="*", metavar="DISCIPLINE",
                        help=f"subset of disciplines (default: all of "
                             f"{', '.join(POLICY_NAMES)})")
    parser.add_argument("--mapping", choices=("row-major", "optimized"),
                        default="optimized",
                        help="Table I mapping every cell uses "
                             "(default optimized)")
    parser.add_argument("--cap", type=int, default=4, metavar="K",
                        help="row-hit streak cap of the frfcfs-cap cells "
                             "(default 4)")
    _add_jobs_argument(parser)
    _add_store_argument(parser)
    _add_kernel_argument(parser)
    parser.set_defaults(func=_cmd_policy)


def _cmd_policy(args: argparse.Namespace) -> int:
    names = tuple(args.configs) if args.configs else TABLE1_CONFIG_NAMES
    unknown = set(names) - set(TABLE1_CONFIG_NAMES)
    if unknown:
        print(f"error: unknown configurations {sorted(unknown)}", file=sys.stderr)
        return 2
    disciplines = (tuple(args.disciplines) if args.disciplines
                   else POLICY_NAMES)
    unknown = set(disciplines) - set(POLICY_NAMES)
    if unknown:
        print(f"error: unknown disciplines {sorted(unknown)}; "
              f"known: {list(POLICY_NAMES)}", file=sys.stderr)
        return 2
    policy_error = _policy_error(args)
    if policy_error:
        print(f"error: {policy_error}", file=sys.stderr)
        return 2
    base = ControllerConfig(refresh_enabled=not args.no_refresh,
                            cap=args.cap)
    rows = run_policy_table(n=args.n, config_names=names,
                            disciplines=disciplines, mapping=args.mapping,
                            policy=base, jobs=args.jobs,
                            store=_open_store(args),
                            engine=_engine_from(args))
    print(format_policy_table(rows))
    return 0


def _add_fig1(subparsers: Any) -> None:
    parser = subparsers.add_parser("fig1", help="render the Fig. 1 panels")
    parser.add_argument("--size", type=int, default=8,
                        help="index-space excerpt size (default 8)")
    parser.add_argument("--config", default=None,
                        help="use a real device geometry instead of the "
                             "2-bank figure-scale one")
    parser.set_defaults(func=_cmd_fig1)


def _cmd_fig1(args: argparse.Namespace) -> int:
    if args.config:
        try:
            geometry = get_config(args.config).geometry
        except KeyError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        from repro.dram.geometry import Geometry
        geometry = Geometry(bank_groups=2, banks_per_group=1, rows=256,
                            columns=32, bus_width_bits=64, burst_length=8)
    space = RectangularIndexSpace(args.size, args.size)
    print(render_figure1(space, geometry))
    return 0


def _add_downlink(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "downlink", help="optical-downlink reliability with/without interleaving")
    parser.add_argument("--frames", type=int, default=40)
    parser.add_argument("--triangle-n", type=int, default=48)
    parser.add_argument("--fade-symbols", type=float, default=60.0,
                        help="mean fade length in symbols")
    parser.add_argument("--fade-fraction", type=float, default=0.004)
    parser.add_argument("--seed", type=int, default=2024)
    parser.set_defaults(func=_cmd_downlink)


def _cmd_downlink(args: argparse.Namespace) -> int:
    if args.fade_symbols <= 1 or not 0 < args.fade_fraction < 1:
        print("error: fade-symbols must be >1 and fade-fraction in (0,1)",
              file=sys.stderr)
        return 2
    downlink = OpticalDownlink(
        TwoStageConfig(triangle_n=args.triangle_n, symbols_per_element=4,
                       codeword_symbols=24),
        CodewordConfig(n_symbols=24, t_correctable=2),
        GilbertElliottParams(
            p_g2b=args.fade_fraction / (1 - args.fade_fraction) / args.fade_symbols,
            p_b2g=1.0 / args.fade_symbols,
            p_bad=0.7,
        ),
        rng=np.random.default_rng(args.seed),
    )
    result = downlink.run(args.frames)
    print(f"channel errors: {result.channel_profile.error_symbols} "
          f"(longest burst {result.channel_profile.max_burst})")
    print(f"code-word failures without interleaver: {result.baseline.failed}"
          f" / {result.baseline.codewords}")
    print(f"code-word failures with    interleaver: {result.interleaved.failed}"
          f" / {result.interleaved.codewords}")
    gain = result.gain
    print(f"gain: {'inf' if math.isinf(gain) else f'{gain:.1f}x'}")
    return 0


def _add_campaign(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "campaign",
        help="Monte Carlo downlink campaign over a (fade x geometry x seed) grid")
    parser.add_argument("--fade-symbols", type=float, nargs="+",
                        default=[40.0, 60.0, 90.0], metavar="L",
                        help="mean fade lengths in symbols (default 40 60 90)")
    parser.add_argument("--fade-fraction", type=float, nargs="+",
                        default=[0.002, 0.004, 0.008], metavar="F",
                        help="long-run fade fractions (default .002 .004 .008)")
    parser.add_argument("--p-bad", type=float, default=0.7,
                        help="symbol error probability inside fades (default 0.7)")
    parser.add_argument("--p-good", type=float, default=0.0,
                        help="symbol error probability outside fades (default 0)")
    parser.add_argument("--triangle-n", type=int, nargs="+",
                        default=[15, 32, 48], metavar="N",
                        help="triangular stage dimensions (default 15 32 48; "
                             "the frame must hold whole code-word groups)")
    parser.add_argument("--symbols-per-element", type=int, default=4)
    parser.add_argument("--codeword-symbols", type=int, default=24)
    parser.add_argument("--t-correctable", type=int, default=2)
    parser.add_argument("--seeds", type=int, default=6, metavar="K",
                        help="seeds per configuration (default 6)")
    parser.add_argument("--seed-base", type=int, default=2024,
                        help="first seed of each configuration (default 2024)")
    parser.add_argument("--frames", type=int, default=400,
                        help="frames per cell (default 400); in adaptive "
                             "mode the per-cell frame *budget*, in scenario "
                             "mode the frames per trajectory segment")
    parser.add_argument("--ci-width", type=float, metavar="W",
                        help="adaptive stopping: run each cell until the "
                             "interleaved arm's 95%% Wilson half-width is "
                             "<= W (or the --frames budget is spent)")
    parser.add_argument("--ci-rel", type=float, metavar="R",
                        help="adaptive stopping, relative target: stop once "
                             "the half-width is <= R x the observed failure "
                             "rate (combinable with --ci-width)")
    parser.add_argument("--batch-frames", type=int, default=128, metavar="B",
                        help="adaptive mode: frames between half-width "
                             "checks (default 128; any value is "
                             "bit-identical, only the stop point moves)")
    parser.add_argument("--rare-event", action="store_true",
                        help="estimate CWER by importance sampling on a "
                             "fade-boosted proposal chain (deep-fade cells)")
    parser.add_argument("--boost", type=float, default=8.0,
                        help="rare-event mode: fade tilt factor of the "
                             "proposal chain (default 8)")
    parser.add_argument("--scenario",
                        choices=("contact-pass", "weather", "multi-pass"),
                        help="run a time-varying channel scenario instead "
                             "of the static grid: contact-pass follows one "
                             "elevation profile, weather a cloud-"
                             "attenuation trace, multi-pass several "
                             "elevation passes in a row (--fade-symbols/"
                             "--fade-fraction set the zenith / clear-sky "
                             "anchor)")
    parser.add_argument("--passes", type=int, default=3, metavar="P",
                        help="multi-pass scenario: contact passes in the "
                             "window (default 3)")
    parser.add_argument("--attenuations-db", type=float, nargs="+",
                        metavar="A",
                        help="weather scenario: cloud attenuation steps in "
                             "dB (default: a 0->6->0 dB cloud transit)")
    parser.add_argument("--json", metavar="PATH",
                        help="write cells + summaries as JSON")
    parser.add_argument("--csv", metavar="PATH",
                        help="write one CSV row per cell")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="per-cell result store (always written); "
                             "synonym of --store kept from the PR 2 cache")
    parser.add_argument("--resume", action="store_true",
                        help="reuse store entries from an earlier run "
                             "(requires --cache-dir or --store)")
    parser.add_argument("--no-chart", action="store_true",
                        help="skip the gain-vs-fade chart")
    _add_jobs_argument(parser)
    _add_store_argument(parser)
    parser.set_defaults(func=_cmd_campaign)


def _campaign_spec(args: argparse.Namespace) -> Dict[str, Any]:
    """The grid spec of a ``campaign`` invocation (see ``grid_from_spec``)."""
    return {
        "fade_symbols": args.fade_symbols,
        "fade_fraction": args.fade_fraction,
        "p_bad": args.p_bad,
        "p_good": args.p_good,
        "triangle_n": args.triangle_n,
        "symbols_per_element": args.symbols_per_element,
        "codeword_symbols": args.codeword_symbols,
        "t_correctable": args.t_correctable,
        "seeds": args.seeds,
        "seed_base": args.seed_base,
        "frames": args.frames,
    }


def _campaign_mode_error(args: argparse.Namespace) -> Optional[str]:
    """Validate the estimator-mode flag combination; message on error."""
    adaptive = args.ci_width is not None or args.ci_rel is not None
    modes = sum((adaptive, bool(args.rare_event), bool(args.scenario)))
    if modes > 1:
        return ("--ci-width/--ci-rel, --rare-event and --scenario select "
                "mutually exclusive estimators")
    if args.ci_width is not None and args.ci_width <= 0:
        return f"--ci-width must be positive, got {args.ci_width}"
    if args.ci_rel is not None and args.ci_rel <= 0:
        return f"--ci-rel must be positive, got {args.ci_rel}"
    if args.batch_frames < 1:
        return f"--batch-frames must be >= 1, got {args.batch_frames}"
    if args.boost < 1.0:
        return f"--boost must be >= 1, got {args.boost}"
    if (args.rare_event or args.scenario) and (args.json or args.csv):
        return ("--json/--csv exports cover the naive and adaptive "
                "estimators only")
    return None


def _cmd_campaign_adaptive(args: argparse.Namespace,
                           store: Optional[ResultStore]) -> int:
    try:
        grid = grid_from_spec(_campaign_spec(args))
        cells = [
            AdaptiveCell(channel=cell.channel, interleaver=cell.interleaver,
                         code=cell.code, seed=cell.seed,
                         max_frames=cell.frames, ci_width=args.ci_width,
                         ci_rel=args.ci_rel, batch_frames=args.batch_frames)
            for cell in grid
        ]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    results = run_adaptive_tasks([AdaptiveTask(cell) for cell in cells],
                                 jobs=args.jobs, store=store)
    print(format_adaptive(results))
    if not args.no_chart:
        print()
        print(render_adaptive_savings(results))
    cell_results = [outcome.result for outcome in results]
    if args.json:
        with open_export(args.json) as stream:
            export_json(cell_results, summarize_campaign(cell_results),
                        stream)
    if args.csv:
        with open_export(args.csv) as stream:
            export_csv(cell_results, stream)
    return 0


def _cmd_campaign_rare_event(args: argparse.Namespace,
                             store: Optional[ResultStore]) -> int:
    try:
        grid = grid_from_spec(_campaign_spec(args))
        cells = [
            RareEventCell(channel=cell.channel,
                          proposal=default_proposal(cell.channel, args.boost),
                          interleaver=cell.interleaver, code=cell.code,
                          seed=cell.seed, frames=cell.frames)
            for cell in grid
        ]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    results = run_rare_event_tasks([RareEventTask(cell) for cell in cells],
                                   jobs=args.jobs, store=store)
    print(format_rare_event(results))
    return 0


def _scenario_segments(args: argparse.Namespace) -> Any:
    """Build the trajectory a ``--scenario`` invocation selected.

    ``--fade-symbols``/``--fade-fraction`` anchor the *benign* end of
    every trajectory — the zenith for the elevation scenarios, the
    clear sky for the weather one.

    Raises:
        ValueError: on anchor statistics or step values the builders
            reject.
    """
    if args.scenario == "weather":
        attenuations = (tuple(args.attenuations_db)
                        if args.attenuations_db is not None else None)
        kwargs = {} if attenuations is None else {
            "attenuations_db": attenuations}
        return weather_segments(
            frames_per_segment=args.frames,
            clear_fade_symbols=args.fade_symbols[0],
            clear_fade_fraction=args.fade_fraction[0],
            p_bad=args.p_bad,
            p_good=args.p_good,
            **kwargs,
        )
    if args.scenario == "multi-pass":
        return multi_pass_segments(
            passes=args.passes,
            frames_per_segment=args.frames,
            zenith_fade_symbols=args.fade_symbols[0],
            zenith_fade_fraction=args.fade_fraction[0],
            p_bad=args.p_bad,
            p_good=args.p_good,
        )
    return contact_pass_segments(
        frames_per_segment=args.frames,
        zenith_fade_symbols=args.fade_symbols[0],
        zenith_fade_fraction=args.fade_fraction[0],
        p_bad=args.p_bad,
        p_good=args.p_good,
    )


def _cmd_campaign_scenario(args: argparse.Namespace,
                           store: Optional[ResultStore]) -> int:
    try:
        segments = _scenario_segments(args)
        cells = [
            ScenarioCell(
                segments=segments,
                interleaver=TwoStageConfig(
                    triangle_n=triangle_n,
                    symbols_per_element=args.symbols_per_element,
                    codeword_symbols=args.codeword_symbols,
                ),
                code=CodewordConfig(n_symbols=args.codeword_symbols,
                                    t_correctable=args.t_correctable),
                seed=args.seed_base + offset,
            )
            for triangle_n in args.triangle_n
            for offset in range(args.seeds)
        ]
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    results = run_scenario_tasks([ScenarioTask(cell) for cell in cells],
                                 jobs=args.jobs, store=store)
    blocks = []
    for triangle_n in args.triangle_n:
        group = [result for result in results
                 if result.cell.interleaver.triangle_n == triangle_n]
        blocks.append(f"triangle_n={triangle_n} "
                      f"({args.scenario}, {args.seeds} seed(s))\n"
                      + format_scenario(group))
    print("\n\n".join(blocks))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.seeds < 1 or args.frames < 1:
        print("error: --seeds and --frames must be >= 1", file=sys.stderr)
        return 2
    mode_error = _campaign_mode_error(args)
    if mode_error:
        print(f"error: {mode_error}", file=sys.stderr)
        return 2
    store_root = args.store or args.cache_dir
    if args.resume and not store_root:
        print("error: --resume requires --cache-dir or --store",
              file=sys.stderr)
        return 2
    store = ResultStore(store_root) if store_root else None
    # The non-naive estimators follow the store-native contract (hits
    # always reused when a store is given), like every other task grid;
    # --resume is the naive path's original opt-in kept for
    # compatibility.
    if args.ci_width is not None or args.ci_rel is not None:
        return _cmd_campaign_adaptive(args, store)
    if args.rare_event:
        return _cmd_campaign_rare_event(args, store)
    if args.scenario:
        return _cmd_campaign_scenario(args, store)
    try:
        cells = grid_from_spec(_campaign_spec(args))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    results = run_campaign(cells, jobs=args.jobs, store=store,
                           resume=args.resume)
    summaries = summarize_campaign(results)
    print(campaign_report(results, summaries))
    if not args.no_chart:
        print()
        print(render_campaign_gains(summaries))
    if args.json:
        with open_export(args.json) as stream:
            export_json(results, summaries, stream)
    if args.csv:
        with open_export(args.csv) as stream:
            export_csv(results, stream)
    return 0


def _add_e2e(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "e2e",
        help="joint downlink -> DRAM co-simulation: FER, utilization, "
             "per-frame latency percentiles and energy per cell")
    parser.add_argument("--n", type=int, default=32,
                        help="triangle dimension; the frame must hold whole "
                             "code-word groups — 15, 32 and 48 qualify at "
                             "the defaults (default 32)")
    parser.add_argument("--frames", type=int, default=40,
                        help="frames co-simulated per cell (default 40)")
    parser.add_argument("--fade-symbols", type=float, default=60.0,
                        help="mean fade length in symbols (default 60)")
    parser.add_argument("--fade-fraction", type=float, default=0.004,
                        help="long-run fade fraction (default 0.004)")
    parser.add_argument("--p-bad", type=float, default=0.7,
                        help="symbol error probability inside fades (default 0.7)")
    parser.add_argument("--p-good", type=float, default=0.0,
                        help="symbol error probability outside fades (default 0)")
    parser.add_argument("--symbols-per-element", type=int, default=4)
    parser.add_argument("--codeword-symbols", type=int, default=24)
    parser.add_argument("--t-correctable", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--no-refresh", action="store_true",
                        help="disable refresh (the paper's >99%% experiment)")
    parser.add_argument("--configs", nargs="*", metavar="NAME",
                        help="subset of configurations (default: all ten)")
    parser.add_argument("--no-chart", action="store_true",
                        help="skip the latency-percentile chart")
    _add_policy_arguments(parser)
    _add_jobs_argument(parser)
    _add_store_argument(parser)
    parser.set_defaults(func=_cmd_e2e)


def _cmd_e2e(args: argparse.Namespace) -> int:
    names = tuple(args.configs) if args.configs else TABLE1_CONFIG_NAMES
    unknown = set(names) - set(TABLE1_CONFIG_NAMES)
    if unknown:
        print(f"error: unknown configurations {sorted(unknown)}", file=sys.stderr)
        return 2
    if args.frames < 1:
        print("error: --frames must be >= 1", file=sys.stderr)
        return 2
    policy_error = _policy_error(args)
    if policy_error:
        print(f"error: {policy_error}", file=sys.stderr)
        return 2
    policy = _policy_from(args)
    try:
        channel = coherence_params(args.fade_symbols, args.fade_fraction,
                                   p_bad=args.p_bad, p_good=args.p_good)
        rows = run_e2e_table(
            n=args.n, config_names=names, frames=args.frames, channel=channel,
            symbols_per_element=args.symbols_per_element,
            codeword_symbols=args.codeword_symbols,
            t_correctable=args.t_correctable, seed=args.seed, policy=policy,
            jobs=args.jobs, store=_open_store(args))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    first = rows[0].result
    print(f"e2e: {len(rows)} cells, {args.frames} frames each, "
          f"{first.downlink.interleaved.codewords} code words per arm")
    print(format_e2e_table(rows))
    if not args.no_chart:
        print()
        print(render_e2e_latency(rows))
    return 0


def _add_provision(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "provision", help="size a DRAM system for a target line rate")
    parser.add_argument("--target-gbit", type=float, default=100.0)
    parser.add_argument("--n", type=int, default=256)
    parser.add_argument("--configs", nargs="*", metavar="NAME")
    parser.add_argument("--csv", metavar="PATH",
                        help="write one CSV row per ranked choice")
    parser.set_defaults(func=_cmd_provision)


def _cmd_provision(args: argparse.Namespace) -> int:
    if args.target_gbit <= 0:
        print("error: target-gbit must be positive", file=sys.stderr)
        return 2
    names = tuple(args.configs) if args.configs else TABLE1_CONFIG_NAMES
    unknown = set(names) - set(TABLE1_CONFIG_NAMES)
    if unknown:
        print(f"error: unknown configurations {sorted(unknown)}", file=sys.stderr)
        return 2
    space = TriangularIndexSpace(args.n)
    reports = []
    for name in names:
        config = get_config(name)
        for mapping in (RowMajorMapping(space, config.geometry),
                        OptimizedMapping(space, config.geometry, prefer_tall=False)):
            reports.append(
                throughput_report(config, simulate_interleaver(config, mapping)))
    choices = provision(reports, args.target_gbit)
    print(f"{'rank':4s} {'configuration':14s} {'mapping':10s} "
          f"{'channels':>8s} {'raw Gbit/s':>11s} {'oversizing':>11s}")
    for rank, choice in enumerate(choices, start=1):
        report = choice.report
        print(f"{rank:4d} {report.config_name:14s} {report.mapping_name:10s} "
              f"{choice.channels:8d} {choice.total_peak_gbit:11.0f} "
              f"{choice.oversizing_factor:10.2f}x")
    if args.csv:
        write_csv_rows(args.csv, PROVISION_CSV_FIELDS,
                       provision_csv_rows(choices))
    return 0


def _add_serve(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="HTTP job API over a shared result store: submit campaign "
             "grids, poll progress, stream incremental results")
    parser.add_argument("--store", metavar="DIR", required=True,
                        help="result-store directory shared with the batch "
                             "commands (created if missing)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8765,
                        help="bind port; 0 picks an ephemeral one "
                             "(default 8765)")
    _add_jobs_argument(parser)
    parser.set_defaults(func=_cmd_serve)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.store.server import create_server

    try:
        server = create_server(args.store, host=args.host, port=args.port,
                               jobs=args.jobs)
    except OSError as error:
        print(f"error: cannot bind {args.host}:{args.port} ({error})",
              file=sys.stderr)
        return 2
    host, port = server.server_address[0], server.server_address[1]
    print(f"serving on http://{host}:{port} (store: {args.store})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass  # clean shutdown; jobs persist in the store
    finally:
        server.server_close()
    return 0


def _add_trace(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "trace",
        help="record a phase's DRAM command trace, dump it, replay-check it")
    parser.add_argument("--config", default="DDR4-3200", metavar="NAME",
                        help="DRAM configuration (default DDR4-3200)")
    parser.add_argument("--mapping", choices=("row-major", "optimized"),
                        default="optimized")
    parser.add_argument("--phase", choices=("write", "read"), default="read",
                        help="which access phase to schedule (default read)")
    parser.add_argument("--n", type=int, default=64,
                        help="triangle dimension (default 64)")
    parser.add_argument("--no-refresh", action="store_true",
                        help="disable refresh during the phase")
    parser.add_argument("--out", metavar="PATH",
                        help="write the command trace to this file")
    parser.add_argument("--replay", metavar="PATH",
                        help="instead of scheduling a phase, read a trace "
                             "file, re-schedule its request stream through "
                             "the engine and check both schedules")
    parser.set_defaults(func=_cmd_trace)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.dram.engine import SchedulingEngine, TraceReplaySource
    from repro.dram.simulator import simulate_phase_result
    from repro.dram.trace import check_phase_commands, read_trace, write_trace
    from repro.dram.controller import OP_READ, OP_WRITE

    try:
        config = get_config(args.config)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    policy = ControllerConfig(refresh_enabled=not args.no_refresh,
                              record_commands=True)

    if args.replay:
        try:
            with open(args.replay) as stream:
                commands = read_trace(stream)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        original_violations = check_phase_commands(config, commands)
        engine = SchedulingEngine(config, policy)
        result = engine.run(TraceReplaySource(commands))
        replay_violations = check_phase_commands(config, result.commands)
        print(f"trace: {len(commands)} commands, "
              f"{result.stats.requests} data bursts "
              f"({result.reads} reads, {result.writes} writes)")
        print(f"original violations: {len(original_violations)}")
        print(f"re-scheduled: {len(result.commands)} commands, "
              f"utilization {result.stats.utilization:.2%}, "
              f"violations: {len(replay_violations)}")
        for violation in (original_violations + replay_violations)[:10]:
            print(f"  {violation}")
        if args.out:
            with open_export(args.out) as stream:
                write_trace(result.commands, stream)
            print(f"re-scheduled trace written to {args.out}")
        return 1 if original_violations or replay_violations else 0

    op = OP_WRITE if args.phase == "write" else OP_READ
    space = TriangularIndexSpace(args.n)
    if args.mapping == "row-major":
        mapping = RowMajorMapping(space, config.geometry)
    else:
        mapping = OptimizedMapping(space, config.geometry, prefer_tall=False)
    result = simulate_phase_result(config, mapping, op, policy)
    violations = check_phase_commands(config, result.commands)
    print(f"{config.name} {mapping.name} {args.phase}: "
          f"{result.stats.requests} requests, "
          f"{len(result.commands)} commands, "
          f"utilization {result.stats.utilization:.2%}")
    print(f"replay-check violations: {len(violations)}")
    for violation in violations[:10]:
        print(f"  {violation}")
    if args.out:
        with open_export(args.out) as stream:
            count = write_trace(result.commands, stream)
        print(f"trace written to {args.out} ({count} commands)")
    return 1 if violations else 0


def _add_lint(subparsers: Any) -> None:
    parser = subparsers.add_parser(
        "lint",
        help="run the repo-specific static analyzer (proof-discipline "
             "rules R001-R006)")
    parser.add_argument("paths", nargs="*", default=["src"], metavar="PATH",
                        help="files/directories to analyze (default: src)")
    parser.add_argument("--select", nargs="*", metavar="RULE",
                        help="subset of rule ids to run (default: all)")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON report")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.set_defaults(func=_cmd_lint)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import list_rules_text, run_lint

    if args.list_rules:
        print(list_rules_text())
        return 0
    select = tuple(args.select) if args.select else None
    return run_lint(args.paths, select=select, json_output=args.json)


def _add_configs(subparsers: Any) -> None:
    parser = subparsers.add_parser("configs", help="list device configurations")
    parser.set_defaults(func=_cmd_configs)


def _cmd_configs(_args: argparse.Namespace) -> int:
    print(f"{'name':14s} {'banks':>5s} {'groups':>6s} {'page':>6s} "
          f"{'burst':>6s} {'peak':>11s} {'refresh':>9s}")
    for config in all_configs():
        geometry = config.geometry
        print(f"{config.name:14s} {geometry.banks:5d} {geometry.bank_groups:6d} "
              f"{geometry.row_bytes // 1024:5d}K {geometry.burst_bytes:5d}B "
              f"{gbit_per_s(config.peak_bandwidth_bytes_per_s):8.1f}Gb/s "
              f"{config.refresh_mode:>9s}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Triangular block interleavers on DRAM (DATE 2024 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_table1(subparsers)
    _add_mixed(subparsers)
    _add_policy(subparsers)
    _add_ablation(subparsers)
    _add_energy(subparsers)
    _add_fig1(subparsers)
    _add_downlink(subparsers)
    _add_campaign(subparsers)
    _add_e2e(subparsers)
    _add_provision(subparsers)
    _add_serve(subparsers)
    _add_trace(subparsers)
    _add_configs(subparsers)
    _add_lint(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
