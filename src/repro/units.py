"""Time, frequency and data-rate unit helpers.

The whole simulator works on an integer *picosecond* timeline.  Integer
picoseconds are exact for every JEDEC speed grade used in this project
(all command clocks are integer-divisible into picoseconds at the
resolution that matters for bandwidth accounting) and avoid the gradual
drift that floating-point nanoseconds accumulate over millions of
commands.

Conventions used throughout the code base:

* ``*_ps``  -- a duration or timestamp in picoseconds (``int``).
* ``*_ns``  -- a duration in nanoseconds (``float``), only at API
  boundaries and in datasheet-style preset definitions.
* ``*_mtps`` -- a transfer rate in mega-transfers per second (``int``),
  the usual "DDR4-3200" style figure.
"""

from __future__ import annotations

PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_S = 1_000_000_000_000


def ns_to_ps(value_ns: float) -> int:
    """Convert nanoseconds to integer picoseconds (round to nearest)."""
    return round(value_ns * PS_PER_NS)


def us_to_ps(value_us: float) -> int:
    """Convert microseconds to integer picoseconds (round to nearest)."""
    return round(value_us * PS_PER_US)


def ms_to_ps(value_ms: float) -> int:
    """Convert milliseconds to integer picoseconds (round to nearest)."""
    return round(value_ms * PS_PER_MS)


def ps_to_ns(value_ps: int) -> float:
    """Convert picoseconds to nanoseconds."""
    return value_ps / PS_PER_NS


def clock_period_ps(data_rate_mtps: int) -> int:
    """Command-clock period for a double-data-rate device.

    A DDR device transfers two data beats per command clock, so a
    ``DDR4-3200`` part (3200 MT/s) runs a 1600 MHz command clock with a
    period of 625 ps.

    Args:
        data_rate_mtps: data rate in mega-transfers per second.

    Returns:
        The command-clock period in picoseconds.
    """
    if data_rate_mtps <= 0:
        raise ValueError(f"data rate must be positive, got {data_rate_mtps}")
    # period = 1 / (rate/2 transfers per second) = 2e12 ps / rate_mtps*1e6
    return round(2 * PS_PER_S / (data_rate_mtps * 1_000_000))


def beat_period_ps(data_rate_mtps: int) -> float:
    """Duration of a single data beat (one transfer) in picoseconds."""
    if data_rate_mtps <= 0:
        raise ValueError(f"data rate must be positive, got {data_rate_mtps}")
    return PS_PER_S / (data_rate_mtps * 1_000_000)


def burst_duration_ps(data_rate_mtps: int, burst_length: int) -> int:
    """Time the data bus is occupied by one burst, in picoseconds.

    Args:
        data_rate_mtps: data rate in mega-transfers per second.
        burst_length: number of beats per burst (e.g. 8 for DDR4 BL8).
    """
    if burst_length <= 0:
        raise ValueError(f"burst length must be positive, got {burst_length}")
    return round(burst_length * beat_period_ps(data_rate_mtps))


def peak_bandwidth_bytes_per_s(data_rate_mtps: int, bus_width_bits: int) -> float:
    """Theoretical peak bandwidth of a channel in bytes per second."""
    if bus_width_bits <= 0 or bus_width_bits % 8:
        raise ValueError(f"bus width must be a positive multiple of 8, got {bus_width_bits}")
    return data_rate_mtps * 1_000_000 * (bus_width_bits // 8)


def gbit_per_s(bytes_per_s: float) -> float:
    """Convert bytes per second into gigabits per second."""
    return bytes_per_s * 8 / 1e9


def quantize_up(time_ps: int, period_ps: int) -> int:
    """Round ``time_ps`` up to the next multiple of ``period_ps``.

    Command issue times are quantized to the command-clock grid so the
    event-driven simulator matches a cycle-ticking simulator on command
    placement.
    """
    if period_ps <= 0:
        raise ValueError(f"period must be positive, got {period_ps}")
    remainder = time_ps % period_ps
    if remainder == 0:
        return time_ps
    return time_ps + (period_ps - remainder)


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2; raises on non-powers of two."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
