"""Functional interleaver implementations (index math and data paths)."""

from __future__ import annotations

from repro.interleaver.triangular import (
    RectangularIndexSpace,
    TriangularIndexSpace,
    interleaver_delay,
    triangle_size_for_elements,
)

__all__ = [
    "RectangularIndexSpace",
    "TriangularIndexSpace",
    "interleaver_delay",
    "triangle_size_for_elements",
]
