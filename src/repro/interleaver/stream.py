"""Symbol-stream helpers.

The communication-system layers work on streams of small fixed-width
symbols (the paper's motivating system uses 3-bit soft symbols).  A
stream is represented as a 1-D :class:`numpy.ndarray` of unsigned
integers; these helpers generate, frame and pack such streams.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np
from numpy.typing import NDArray


def random_symbols(count: int, bits_per_symbol: int = 3,
                   rng: Optional[np.random.Generator] = None) -> NDArray[np.uint16]:
    """Uniform random symbol stream.

    Args:
        count: number of symbols.
        bits_per_symbol: symbol width in bits (1..16).
        rng: optional numpy generator for reproducibility.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not 1 <= bits_per_symbol <= 16:
        raise ValueError(f"bits_per_symbol must be in [1, 16], got {bits_per_symbol}")
    rng = rng or np.random.default_rng()
    return rng.integers(0, 1 << bits_per_symbol, size=count, dtype=np.uint16)


def sequential_symbols(count: int,
                       bits_per_symbol: int = 16) -> NDArray[np.uint16]:
    """Stream of ramp symbols (identity payload for tracing tests).

    Values wrap at the symbol width so the stream stays representable;
    with the default 16-bit width streams up to 65536 symbols are
    collision-free, which is what the data-path identity tests use.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if not 1 <= bits_per_symbol <= 16:
        raise ValueError(f"bits_per_symbol must be in [1, 16], got {bits_per_symbol}")
    return (np.arange(count, dtype=np.uint32) & ((1 << bits_per_symbol) - 1)).astype(np.uint16)


def pad_to(symbols: NDArray[Any], length: int,
           fill: int = 0) -> NDArray[Any]:
    """Pad a stream with ``fill`` symbols up to ``length``."""
    if length < symbols.size:
        raise ValueError(f"cannot pad {symbols.size} symbols down to {length}")
    if length == symbols.size:
        return symbols.copy()
    padded = np.full(length, fill, dtype=symbols.dtype)
    padded[: symbols.size] = symbols
    return padded


def symbols_per_burst(burst_bytes: int, bits_per_symbol: int) -> int:
    """How many symbols fit into one DRAM burst.

    The paper's example: a 512-bit burst carries 170 three-bit symbols
    (with 2 bits unused).
    """
    if burst_bytes <= 0:
        raise ValueError(f"burst_bytes must be positive, got {burst_bytes}")
    if bits_per_symbol <= 0:
        raise ValueError(f"bits_per_symbol must be positive, got {bits_per_symbol}")
    return burst_bytes * 8 // bits_per_symbol


def frame_count(total_symbols: int, frame_symbols: int) -> int:
    """Number of full frames in a stream (the tail is discarded)."""
    if frame_symbols <= 0:
        raise ValueError(f"frame_symbols must be positive, got {frame_symbols}")
    return total_symbols // frame_symbols
