"""Triangular block interleaver index spaces and traversal orders.

A triangular block interleaver stores the symbols of multiple
consecutive code words in the upper-left half of an ``N x N`` square:
cell ``(i, j)`` exists when ``i + j < N``.  Symbols are **written
row-wise** (row ``i`` holds ``N - i`` symbols) and **read column-wise**
(column ``j`` holds ``N - j`` symbols).  A symbol written at ``(i, j)``
therefore leaves the interleaver after a delay that grows with the
distance between its write and read positions, which is what disperses
burst errors over many code words.

At the DRAM level each cell of the index space is one *burst* (the
paper's two-stage construction packs symbols of distinct code words
into a burst with a small SRAM interleaver first — see
:mod:`repro.interleaver.two_stage`), so these index spaces are reused
unchanged by the address mappings in :mod:`repro.mapping`.

A rectangular index space is provided as well; it backs the paper's
Fig. 1 illustrations (which show a rectangular excerpt) and the classic
rectangular block interleaver used in the SRAM pre-stage.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, Iterator, Protocol, Tuple

if TYPE_CHECKING:
    import numpy as np
    from numpy.typing import ArrayLike, NDArray

#: Bytes one pipeline cell occupies at its widest point: the three
#: int64 address columns (bank, row, column) the mapping stage emits
#: per coordinate.  The coordinate stage itself is narrower (two
#: columns), so budgeting against the address width bounds the whole
#: pipeline.
CELL_BYTES = 24

#: Byte budget one in-flight chunk targets.  6 MiB sits on the flat
#: part of the throughput-vs-chunk-size curve (see
#: ``benchmarks/bench_chunk_size.py``): large enough to amortize NumPy
#: per-chunk call overhead, small enough that paper-scale runs
#: (12.5 M cells) stay in bounded memory and chunks stay cache-friendly.
DEFAULT_CHUNK_BYTES = 6 << 20


def chunk_cells(target_bytes: int = DEFAULT_CHUNK_BYTES) -> int:
    """Cells per chunk for an in-flight byte budget.

    Sizing by bytes instead of a fixed element count keeps the memory
    footprint of the address pipeline independent of how wide its
    columns are.

    Args:
        target_bytes: byte budget one chunk may occupy at the
            pipeline's widest point (:data:`CELL_BYTES` per cell).

    Raises:
        ValueError: when the budget is not positive.
    """
    if target_bytes <= 0:
        raise ValueError(f"target_bytes must be > 0, got {target_bytes}")
    return max(1, target_bytes // CELL_BYTES)


#: Default traversal chunk size (cells) for the vectorized coordinate
#: iterators — the byte budget above expressed in cells (exactly
#: ``1 << 18`` for the 6 MiB default, pinned by the chunking tests so
#: chunk boundaries — and therefore results — never drift).
DEFAULT_COORD_CHUNK = chunk_cells()

#: One columnar coordinate chunk: equal-length ``(i, j)`` index arrays.
CoordChunk = Tuple["NDArray[Any]", "NDArray[Any]"]


class IndexSpace(Protocol):
    """Structural interface of the interleaver index spaces.

    The shared surface of :class:`TriangularIndexSpace` and
    :class:`RectangularIndexSpace` that the interleaver and mapping
    layers program against.  Runtime duck typing is looser — a space
    offering only ``num_elements``/``contains`` and the traversal
    iterators still works through the generic fallback paths — but
    production code types against the full protocol.
    """

    @property
    def height(self) -> int:
        """Number of rows of the space's bounding box."""
        ...

    @property
    def width(self) -> int:
        """Number of columns of the space's bounding box."""
        ...

    @property
    def num_elements(self) -> int:
        """Number of cells in the space."""
        ...

    def row_length(self, i: int) -> int:
        """Number of cells in row ``i``."""
        ...

    def col_length(self, j: int) -> int:
        """Number of cells in column ``j``."""
        ...

    def contains(self, i: int, j: int) -> bool:
        """Whether cell ``(i, j)`` lies inside the space."""
        ...

    def row_offset(self, i: int) -> int:
        """Row-major linear index of cell ``(i, 0)``."""
        ...

    def linear_index(self, i: int, j: int) -> int:
        """Row-major linear index of cell ``(i, j)``."""
        ...

    def from_linear(self, index: int) -> Tuple[int, int]:
        """Inverse of :meth:`linear_index`."""
        ...

    def write_order(self) -> Iterator[Tuple[int, int]]:
        """Cells in write order."""
        ...

    def read_order(self) -> Iterator[Tuple[int, int]]:
        """Cells in read order."""
        ...

    def linear_indices(self, i: ArrayLike, j: ArrayLike) -> NDArray[Any]:
        """Vectorized :meth:`linear_index` over coordinate arrays."""
        ...

    def write_coord_chunks(
            self,
            chunk_size: int = DEFAULT_COORD_CHUNK) -> Iterator[CoordChunk]:
        """Write-order coordinates as columnar array chunks."""
        ...

    def read_coord_chunks(
            self,
            chunk_size: int = DEFAULT_COORD_CHUNK) -> Iterator[CoordChunk]:
        """Read-order coordinates as columnar array chunks."""
        ...


class TriangularIndexSpace:
    """Upper-left triangular half of an ``N x N`` square.

    Cell ``(i, j)`` is valid iff ``0 <= i``, ``0 <= j`` and
    ``i + j < N``.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"interleaver dimension must be >= 1, got {n}")
        self.n = n

    # -- geometry -----------------------------------------------------

    @property
    def height(self) -> int:
        """Number of (non-empty) rows."""
        return self.n

    @property
    def width(self) -> int:
        """Length of the longest row (row 0)."""
        return self.n

    @property
    def num_elements(self) -> int:
        """Total number of cells: N (N + 1) / 2."""
        return self.n * (self.n + 1) // 2

    def row_length(self, i: int) -> int:
        """Number of cells in row ``i``."""
        self._check_row(i)
        return self.n - i

    def col_length(self, j: int) -> int:
        """Number of cells in column ``j``."""
        if not 0 <= j < self.n:
            raise ValueError(f"column {j} out of range [0, {self.n})")
        return self.n - j

    def contains(self, i: int, j: int) -> bool:
        """Whether ``(i, j)`` is a valid cell."""
        return 0 <= i and 0 <= j and i + j < self.n

    # -- row-major linearization (the SRAM-style baseline layout) ------

    def row_offset(self, i: int) -> int:
        """Linear index of cell ``(i, 0)`` in row-major packing.

        Rows are packed back to back, so the offset of row ``i`` is the
        sum of the lengths of rows ``0 .. i-1``:
        ``i * N - i (i - 1) / 2``.
        """
        self._check_row(i)
        return i * self.n - i * (i - 1) // 2

    def linear_index(self, i: int, j: int) -> int:
        """Row-major linear index of cell ``(i, j)``."""
        if not self.contains(i, j):
            raise ValueError(f"({i}, {j}) outside triangle of size {self.n}")
        return self.row_offset(i) + j

    def from_linear(self, index: int) -> Tuple[int, int]:
        """Inverse of :meth:`linear_index`."""
        if not 0 <= index < self.num_elements:
            raise ValueError(f"linear index {index} out of range [0, {self.num_elements})")
        # Row i satisfies row_offset(i) <= index < row_offset(i + 1).
        # Solving i*N - i(i-1)/2 <= index for i gives a closed form; a
        # float seed plus a local fix-up avoids precision traps.
        n = self.n
        i = int(n + 0.5 - math.sqrt((n + 0.5) ** 2 - 2 * index))
        i = max(0, min(i, n - 1))
        while i + 1 < n and self.row_offset(i + 1) <= index:
            i += 1
        while i > 0 and self.row_offset(i) > index:
            i -= 1
        return i, index - self.row_offset(i)

    # -- traversal orders ----------------------------------------------

    def write_order(self) -> Iterator[Tuple[int, int]]:
        """Cells in write (row-wise) order."""
        n = self.n
        for i in range(n):
            for j in range(n - i):
                yield i, j

    def read_order(self) -> Iterator[Tuple[int, int]]:
        """Cells in read (column-wise) order."""
        n = self.n
        for j in range(n):
            for i in range(n - j):
                yield i, j

    # -- vectorized traversal (columnar coordinate chunks) -------------

    def linear_indices(self, i: ArrayLike, j: ArrayLike) -> NDArray[Any]:
        """Vectorized :meth:`linear_index` over coordinate arrays.

        Args:
            i, j: integer arrays (or scalars) of equal shape.

        Returns:
            ``int64`` array of row-major linear indices.

        Raises:
            ValueError: if any coordinate lies outside the triangle.
        """
        import numpy as np

        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        if ((i < 0) | (j < 0) | (i + j >= self.n)).any():
            raise ValueError(f"coordinates outside triangle of size {self.n}")
        return i * self.n - i * (i - 1) // 2 + j

    def write_coord_chunks(
            self,
            chunk_size: int = DEFAULT_COORD_CHUNK) -> Iterator[CoordChunk]:
        """Write-order (row-wise) coordinates as ``(i, j)`` array chunks.

        Yields ``int64`` array pairs covering the same cells, in the
        same order, as :meth:`write_order`; each chunk holds whole rows
        and at least ``chunk_size`` cells (except the last).
        """
        import numpy as np

        yield from _row_wise_chunks(np, self.n, lambda i: self.n - i, chunk_size,
                                    major_is_row=True)

    def read_coord_chunks(
            self,
            chunk_size: int = DEFAULT_COORD_CHUNK) -> Iterator[CoordChunk]:
        """Read-order (column-wise) coordinates as ``(i, j)`` array chunks."""
        import numpy as np

        yield from _row_wise_chunks(np, self.n, lambda j: self.n - j, chunk_size,
                                    major_is_row=False)

    def _check_row(self, i: int) -> None:
        if not 0 <= i < self.n:
            raise ValueError(f"row {i} out of range [0, {self.n})")

    def __repr__(self) -> str:
        return f"TriangularIndexSpace(n={self.n})"


class RectangularIndexSpace:
    """Dense ``height x width`` index space (classic block interleaver)."""

    def __init__(self, height: int, width: int) -> None:
        if height < 1 or width < 1:
            raise ValueError(f"dimensions must be >= 1, got {height} x {width}")
        self.height = height
        self.width = width

    @property
    def num_elements(self) -> int:
        """Total number of cells: height x width."""
        return self.height * self.width

    def row_length(self, i: int) -> int:
        """Number of cells in row ``i`` (always ``width``)."""
        if not 0 <= i < self.height:
            raise ValueError(f"row {i} out of range [0, {self.height})")
        return self.width

    def col_length(self, j: int) -> int:
        """Number of cells in column ``j`` (always ``height``)."""
        if not 0 <= j < self.width:
            raise ValueError(f"column {j} out of range [0, {self.width})")
        return self.height

    def contains(self, i: int, j: int) -> bool:
        """Whether ``(i, j)`` is a valid cell."""
        return 0 <= i < self.height and 0 <= j < self.width

    def row_offset(self, i: int) -> int:
        """Linear index of cell ``(i, 0)`` in row-major packing."""
        if not 0 <= i < self.height:
            raise ValueError(f"row {i} out of range [0, {self.height})")
        return i * self.width

    def linear_index(self, i: int, j: int) -> int:
        """Row-major linear index of cell ``(i, j)``."""
        if not self.contains(i, j):
            raise ValueError(f"({i}, {j}) outside {self.height} x {self.width} space")
        return i * self.width + j

    def from_linear(self, index: int) -> Tuple[int, int]:
        """Inverse of :meth:`linear_index`."""
        if not 0 <= index < self.num_elements:
            raise ValueError(f"linear index {index} out of range [0, {self.num_elements})")
        return divmod(index, self.width)

    def write_order(self) -> Iterator[Tuple[int, int]]:
        """Row-wise traversal (the write phase's program order)."""
        for i in range(self.height):
            for j in range(self.width):
                yield i, j

    def read_order(self) -> Iterator[Tuple[int, int]]:
        """Column-wise traversal (the read phase's program order)."""
        for j in range(self.width):
            for i in range(self.height):
                yield i, j

    # -- vectorized traversal (columnar coordinate chunks) -------------

    def linear_indices(self, i: ArrayLike, j: ArrayLike) -> NDArray[Any]:
        """Vectorized :meth:`linear_index` over coordinate arrays."""
        import numpy as np

        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        if ((i < 0) | (i >= self.height) | (j < 0) | (j >= self.width)).any():
            raise ValueError(f"coordinates outside {self.height} x {self.width} space")
        return i * self.width + j

    def write_coord_chunks(
            self,
            chunk_size: int = DEFAULT_COORD_CHUNK) -> Iterator[CoordChunk]:
        """Write-order coordinates as ``(i, j)`` array chunks."""
        import numpy as np

        total = self.num_elements
        for start in range(0, total, chunk_size):
            linear = np.arange(start, min(start + chunk_size, total), dtype=np.int64)
            yield linear // self.width, linear % self.width

    def read_coord_chunks(
            self,
            chunk_size: int = DEFAULT_COORD_CHUNK) -> Iterator[CoordChunk]:
        """Read-order coordinates as ``(i, j)`` array chunks."""
        import numpy as np

        total = self.num_elements
        for start in range(0, total, chunk_size):
            linear = np.arange(start, min(start + chunk_size, total), dtype=np.int64)
            yield linear % self.height, linear // self.height

    def __repr__(self) -> str:
        return f"RectangularIndexSpace({self.height}, {self.width})"


def _row_wise_chunks(np: Any, n: int, length_of: Callable[[int], int],
                     chunk_size: int, major_is_row: bool) -> Iterator[CoordChunk]:
    """Concatenate triangle rows (or columns) into coordinate chunks.

    Walks the major axis of a size-``n`` triangle; index ``k`` of the
    major axis carries ``length_of(k)`` cells along the minor axis.
    With ``major_is_row`` the yielded pair is ``(i, j) = (k, minor)``
    (write order), otherwise ``(minor, k)`` (read order).
    """
    major_parts = []
    minor_parts = []
    filled = 0
    for k in range(n):
        length = length_of(k)
        major_parts.append(np.full(length, k, dtype=np.int64))
        minor_parts.append(np.arange(length, dtype=np.int64))
        filled += length
        if filled >= chunk_size:
            major = np.concatenate(major_parts)
            minor = np.concatenate(minor_parts)
            yield (major, minor) if major_is_row else (minor, major)
            major_parts, minor_parts, filled = [], [], 0
    if filled:
        major = np.concatenate(major_parts)
        minor = np.concatenate(minor_parts)
        yield (major, minor) if major_is_row else (minor, major)


def triangle_size_for_elements(num_elements: int) -> int:
    """Smallest ``N`` with ``N (N + 1) / 2 >= num_elements``.

    The paper's headline configuration has 12.5 M elements, i.e.
    ``N = 5000`` (``5000 * 5001 / 2 = 12 502 500``).
    """
    if num_elements < 1:
        raise ValueError(f"element count must be >= 1, got {num_elements}")
    n = int(math.sqrt(2 * num_elements))
    while n * (n + 1) // 2 < num_elements:
        n += 1
    while n > 1 and (n - 1) * n // 2 >= num_elements:
        n -= 1
    return n


def interleaver_delay(space: TriangularIndexSpace, i: int, j: int) -> int:
    """Number of symbol slots between write and read of cell ``(i, j)``.

    Write slot: position of ``(i, j)`` in write order; read slot:
    position in read order.  The difference (modulo the frame length,
    since frames stream back to back) is the dwell time of the symbol
    inside the interleaver and determines the memory lifetime relevant
    to the refresh-disabling argument in Section III of the paper.
    """
    if not space.contains(i, j):
        raise ValueError(f"({i}, {j}) outside triangle of size {space.n}")
    write_slot = space.linear_index(i, j)
    # Position of (i, j) in column-major order over the triangle.
    n = space.n
    read_slot = j * n - j * (j - 1) // 2 + i
    return (read_slot - write_slot) % space.num_elements
