"""The paper's two-stage interleaver (Sec. II, first paragraph).

A single DRAM burst moves far more bits than one symbol (e.g. 512 bits
vs. 3 bits), so the DRAM-level triangular interleaver operates on
*burst elements*, not symbols.  To keep the burst error dispersion
property, a small SRAM block interleaver runs first and ensures that
the symbols packed into one burst element all belong to **different
code words**:

1. **SRAM stage** — a rectangular block interleaver with
   ``rows = symbols_per_element`` and ``cols = code words per group``:
   writing code words row-w... column-wise produces groups in which
   consecutive symbols come from distinct code words.
2. **Packing** — consecutive ``symbols_per_element`` symbols form one
   burst element.
3. **DRAM stage** — a triangular block interleaver permutes the burst
   elements (this is the permutation that the address mappings of
   :mod:`repro.mapping` realize in DRAM).

The receiver applies the exact inverse pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.interleaver.block import BlockInterleaver, TriangularInterleaver


@dataclass(frozen=True)
class TwoStageConfig:
    """Dimensions of the two-stage interleaver.

    Attributes:
        triangle_n: triangular stage dimension (frame =
            ``triangle_n (triangle_n + 1) / 2`` burst elements).
        symbols_per_element: symbols packed into one DRAM burst element.
        codeword_symbols: symbols per code word (used by the SRAM stage
            to group code words; must be a multiple of
            ``symbols_per_element`` for exact framing).
    """

    triangle_n: int
    symbols_per_element: int
    codeword_symbols: int

    def __post_init__(self) -> None:
        if self.triangle_n < 1:
            raise ValueError(f"triangle_n must be >= 1, got {self.triangle_n}")
        if self.symbols_per_element < 1:
            raise ValueError(
                f"symbols_per_element must be >= 1, got {self.symbols_per_element}"
            )
        if self.codeword_symbols < 1:
            raise ValueError(f"codeword_symbols must be >= 1, got {self.codeword_symbols}")
        group_symbols = self.symbols_per_element * self.codeword_symbols
        if self.symbols_per_frame % group_symbols:
            raise ValueError(
                "frame must hold a whole number of SRAM groups: "
                f"{self.symbols_per_frame} symbols per frame vs. "
                f"group of {group_symbols}"
            )

    @property
    def elements_per_frame(self) -> int:
        """Burst elements per frame: ``triangle_n (triangle_n + 1) / 2``."""
        return self.triangle_n * (self.triangle_n + 1) // 2

    @property
    def symbols_per_frame(self) -> int:
        """Symbols per frame (elements x symbols per element)."""
        return self.elements_per_frame * self.symbols_per_element

    @property
    def codewords_per_frame(self) -> int:
        """Full code words per frame (frames are sized to whole groups)."""
        return self.symbols_per_frame // self.codeword_symbols


class TwoStageInterleaver:
    """SRAM block stage + DRAM triangular stage, with exact inverse.

    The SRAM stage runs per *group* of ``symbols_per_element`` code
    words: a ``symbols_per_element x codeword_symbols`` block
    interleaver whose column-wise read emits one symbol of each code
    word in turn, so every run of ``symbols_per_element`` consecutive
    symbols (= one burst element) holds symbols of all different code
    words.
    """

    def __init__(self, config: TwoStageConfig) -> None:
        # Geometry validity (whole SRAM groups per frame) is enforced by
        # TwoStageConfig itself, so every entry point fails fast.
        self.config = config
        self._sram = BlockInterleaver(config.symbols_per_element, config.codeword_symbols)
        self._dram = TriangularInterleaver(config.triangle_n)
        self._groups = config.symbols_per_frame // (
            config.symbols_per_element * config.codeword_symbols)
        # The whole two-stage pipeline is one fixed frame permutation;
        # precomputing it collapses batched (de)interleaving to a single
        # fancy-index gather (the campaign engine's hot path).
        identity = np.arange(config.symbols_per_frame, dtype=np.int64)
        self._perm = self.interleave(identity)
        self._inverse = self.deinterleave(identity)

    @property
    def frame_symbols(self) -> int:
        """Symbols consumed/produced per frame."""
        return self.config.symbols_per_frame

    # -- transmitter ----------------------------------------------------

    def interleave(self, frame: NDArray[Any]) -> NDArray[Any]:
        """Apply SRAM stage, pack elements, apply DRAM stage."""
        self._check(frame)
        config = self.config
        groups = frame.reshape(self._groups, -1)
        sram_out = self._sram.interleave(groups).reshape(-1)
        elements = sram_out.reshape(config.elements_per_frame, config.symbols_per_element)
        permuted = self._dram.interleave(elements.T).T
        return permuted.reshape(-1)

    # -- receiver --------------------------------------------------------

    def deinterleave(self, frame: NDArray[Any]) -> NDArray[Any]:
        """Exact inverse of :meth:`interleave`."""
        self._check(frame)
        config = self.config
        elements = frame.reshape(config.elements_per_frame, config.symbols_per_element)
        unpermuted = self._dram.deinterleave(elements.T).T
        sram_in = unpermuted.reshape(self._groups, -1)
        return self._sram.deinterleave(sram_in).reshape(-1)

    # -- batched frame path (precomputed permutation arrays) --------------

    def permutation(self) -> NDArray[Any]:
        """Copy of the transmit permutation: ``interleave(x) == x[perm]``."""
        return self._perm.copy()

    def inverse_permutation(self) -> NDArray[Any]:
        """Copy of the receive permutation: ``deinterleave(y) == y[inv]``."""
        return self._inverse.copy()

    def interleave_frames(self, frames: NDArray[Any]) -> NDArray[Any]:
        """Interleave stacked frames (last axis = frame symbols) at once.

        A single gather through the precomputed permutation; each row is
        bit-identical to :meth:`interleave` of that row.
        """
        self._check_frames(frames)
        return frames[..., self._perm]

    def deinterleave_frames(self, frames: NDArray[Any]) -> NDArray[Any]:
        """Exact batched inverse of :meth:`interleave_frames`."""
        self._check_frames(frames)
        return frames[..., self._inverse]

    def _check_frames(self, frames: NDArray[Any]) -> None:
        if frames.ndim < 1 or frames.shape[-1] != self.frame_symbols:
            raise ValueError(
                f"frames must have {self.frame_symbols} symbols on the last axis, "
                f"got shape {frames.shape}"
            )

    # -- properties the paper relies on -----------------------------------

    def codeword_of_symbol(self, index: int) -> int:
        """Code word that the ``index``-th *input* symbol belongs to."""
        if not 0 <= index < self.frame_symbols:
            raise ValueError(f"symbol index {index} out of range")
        return index // self.config.codeword_symbols

    def element_codewords(self, frame_codeword_ids: NDArray[Any]) -> NDArray[Any]:
        """Code-word ids as seen per burst element after interleaving.

        Args:
            frame_codeword_ids: id of the code word of every input
                symbol (shape ``(frame_symbols,)``).

        Returns:
            Array of shape ``(elements_per_frame, symbols_per_element)``
            with the code-word id of each symbol inside each element —
            rows with all-distinct entries certify the burst-diversity
            property of the SRAM stage.
        """
        interleaved = self.interleave(frame_codeword_ids)
        return interleaved.reshape(
            self.config.elements_per_frame, self.config.symbols_per_element
        )

    def _check(self, frame: NDArray[Any]) -> None:
        if frame.ndim != 1 or frame.size != self.frame_symbols:
            raise ValueError(
                f"frame must be 1-D with {self.frame_symbols} symbols, got shape {frame.shape}"
            )
