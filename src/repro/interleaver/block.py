"""Functional block interleavers (write one order, read the other).

Two flavors:

* :class:`BlockInterleaver` — classic rectangular rows-in /
  columns-out interleaver, used here as the small SRAM pre-stage of the
  two-stage construction (Sec. II of the paper): it guarantees that
  symbols which end up in the same DRAM burst come from different code
  words.
* :class:`TriangularInterleaver` — the triangular block interleaver
  itself at symbol granularity (write row-wise into the triangle, read
  column-wise), with the exact inverse used by the receiver.

Both operate on whole frames: one frame is ``num_elements`` symbols.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.interleaver.triangular import (
    IndexSpace,
    RectangularIndexSpace,
    TriangularIndexSpace,
)


def _permutation_from_orders(space: IndexSpace) -> NDArray[Any]:
    """Index permutation mapping write order to read order.

    ``out[k] = data[perm[k]]``: the k-th symbol *read* is the
    ``perm[k]``-th symbol *written*.
    """
    write_slot: Dict[Tuple[int, int], int] = {}
    for slot, cell in enumerate(space.write_order()):
        write_slot[cell] = slot
    perm = np.empty(space.num_elements, dtype=np.int64)
    for slot, cell in enumerate(space.read_order()):
        perm[slot] = write_slot[cell]
    return perm


class _PermutationInterleaver:
    """Shared frame-permutation machinery."""

    def __init__(self, space: IndexSpace) -> None:
        self.space = space
        self._perm = _permutation_from_orders(space)
        self._inverse = np.argsort(self._perm)

    @property
    def frame_symbols(self) -> int:
        """Symbols per frame."""
        return self.space.num_elements

    def interleave(self, frame: NDArray[Any]) -> NDArray[Any]:
        """Permute one frame (or a batch of stacked frames)."""
        self._check(frame)
        return frame[..., self._perm]

    def deinterleave(self, frame: NDArray[Any]) -> NDArray[Any]:
        """Exact inverse of :meth:`interleave`."""
        self._check(frame)
        return frame[..., self._inverse]

    def permutation(self) -> NDArray[Any]:
        """Copy of the read-slot -> write-slot permutation."""
        return self._perm.copy()

    def _check(self, frame: NDArray[Any]) -> None:
        if frame.shape[-1] != self.frame_symbols:
            raise ValueError(
                f"frame must have {self.frame_symbols} symbols on its last axis, "
                f"got shape {frame.shape}"
            )


class BlockInterleaver(_PermutationInterleaver):
    """Rectangular rows-in / columns-out block interleaver.

    Args:
        rows: number of rows of the array.
        cols: number of columns of the array.

    A frame of ``rows * cols`` symbols is written row-wise and read
    column-wise, so two symbols that were ``< rows`` apart in the output
    come from different input rows.  Used as the SRAM stage: with
    ``rows`` = symbols per DRAM burst and ``cols`` = code words per
    burst group, each output burst holds one symbol of each of ``rows``
    different code words.
    """

    def __init__(self, rows: int, cols: int) -> None:
        super().__init__(RectangularIndexSpace(rows, cols))
        self.rows = rows
        self.cols = cols


class TriangularInterleaver(_PermutationInterleaver):
    """Triangular block interleaver at symbol granularity.

    Args:
        n: triangle dimension; a frame holds ``n (n + 1) / 2`` symbols.

    The interleaver delay profile is linear in the column index, which
    is what spreads a burst of consecutive channel errors over many
    code words (each output column mixes symbols of up to ``n``
    different input rows).
    """

    def __init__(self, n: int) -> None:
        super().__init__(TriangularIndexSpace(n))
        self.n = n
