"""The paper's optimized interleaver-to-DRAM mapping (Section II).

Combines the three optimizations of the paper, each individually
toggleable so the ablation benchmarks can quantify its contribution:

1. **Diagonal bank rotation** (Fig. 1a): ``bank = (i + j) mod B``.
   Every access — in row-wise *and* column-wise traversal — moves to
   the next flat bank index.  Because the low bank bits select the
   bank group (Sec. II convention), this alternates bank groups in
   round-robin order, so consecutive CAS commands are spaced by
   ``tCCD_S`` instead of ``tCCD_L``, and row activations distribute
   over all banks.

2. **Rectangular page tiling** (Fig. 1b): the index space is cut into
   ``tile_h x tile_w`` rectangles with ``tile_h * tile_w = B * P``
   (``P`` = bursts per page), so each tile contains exactly one page
   worth of cells *per bank*.  A bank then gets ``tile_w / B``
   consecutive same-page accesses in a row-wise sweep and
   ``tile_h / B`` in a column-wise sweep — the page misses are split
   between the two directions instead of all landing on the read
   phase.

3. **Bank-staggered column offset** (Fig. 1c → 1d): without it, all
   banks cross a tile boundary within the same few accesses and their
   page misses collide; the activate budget (tRRD/tFAW) then throttles
   the burst of ACTs.  Shifting every position circularly towards the
   top-left by a bank-dependent offset ``delta_b = b * stagger``
   spreads the misses of the ``B`` banks evenly across the tile
   period.  The shift applies to the *row/column assignment only*; the
   bank of a cell stays defined by its original position, which keeps
   the per-bank address sets disjoint (proof sketch in
   :func:`OptimizedMapping.address_tuple`).

The mapping uses only additions, comparisons, shifts and masks when the
tile dimensions are powers of two — the low-complexity hardware
property claimed by the paper.

Storage layout: tile ``(ti, tj)`` owns DRAM row ``ti * tiles_x + tj``
in *every* bank.  For a triangular index space the default rectangular
allocation wastes the rows of the empty lower-right half; passing
``compact_rows=True`` renumbers only the tiles actually touched
(paper, footnote 1) at the cost of a one-time scan.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

from repro.dram.geometry import Geometry
from repro.interleaver.triangular import IndexSpace
from repro.mapping.base import AddressArrays, AddressTuple, InterleaverMapping
from repro.mapping.tiling import TileGeometry, balanced_tile, row_strip_tile, tiles_covering


def _single_bank_tile(bursts_per_page: int) -> Tuple[int, int]:
    """Balanced tile dimensions for the no-rotation ablation.

    Without the diagonal bank rotation a whole tile belongs to one bank,
    so the tile holds exactly one page: ``tile_h * tile_w = P`` with the
    two middle powers of two.
    """
    bits = bursts_per_page.bit_length() - 1
    h_bits = (bits + 1) // 2
    return 1 << h_bits, 1 << (bits - h_bits)


class OptimizedMapping(InterleaverMapping):
    """The paper's mapping with per-optimization ablation switches.

    Args:
        space: interleaver index space (triangular or rectangular).
        geometry: target DRAM channel organization.
        enable_bank_rotation: optimization 1 (diagonal banks).  When
            disabled, banks are assigned per *tile* diagonally, so
            consecutive accesses stay on one bank/bank group.
        enable_tiling: optimization 2 (rectangular page tiles).  When
            disabled, a degenerate one-row-tall strip tile is used:
            row-wise sweeps get maximal page runs, column-wise sweeps
            miss on every access (the SRAM-style failure mode).
        enable_offset: optimization 3 (bank-staggered circular shift).
        prefer_tall: give the column-wise (read) direction the longer
            page runs when the balanced tile cannot be square.
        compact_rows: renumber DRAM rows over the tiles actually used
            by the (triangular) index space instead of the bounding
            box.
    """

    name = "optimized"

    def __init__(
        self,
        space: IndexSpace,
        geometry: Geometry,
        *,
        enable_bank_rotation: bool = True,
        enable_tiling: bool = True,
        enable_offset: bool = True,
        prefer_tall: bool = True,
        compact_rows: bool = False,
    ) -> None:
        super().__init__(space, geometry)
        self.enable_bank_rotation = enable_bank_rotation
        self.enable_tiling = enable_tiling
        self.enable_offset = enable_offset

        banks = geometry.banks
        page = geometry.bursts_per_row
        if enable_bank_rotation:
            if enable_tiling:
                self.tile: Optional[TileGeometry] = balanced_tile(geometry, prefer_tall)
            else:
                self.tile = row_strip_tile(geometry)
            self._tile_h = self.tile.tile_h
            self._tile_w = self.tile.tile_w
        else:
            self.tile = None
            if enable_tiling:
                self._tile_h, self._tile_w = _single_bank_tile(page)
            else:
                self._tile_h, self._tile_w = 1, page

        self._banks = banks
        self._page = page
        self._wpb = max(1, self._tile_w // banks)  # class cells per tile row
        self._h_pad = tiles_covering(space.height, self._tile_h) * self._tile_h
        self._w_pad = tiles_covering(space.width, self._tile_w) * self._tile_w
        self._tiles_x = self._w_pad // self._tile_w
        self._tiles_y = self._h_pad // self._tile_h

        if enable_offset:
            # Per-axis stagger: bank b's tile-boundary crossings shift
            # by b/B of the tile period in *each* direction, so page
            # misses spread uniformly over the whole period of both the
            # row-wise and the column-wise sweep even for non-square
            # tiles.  (A purely diagonal shift, as drawn in Fig. 1d for
            # a square example, bunches the misses of a non-square tile
            # into half the period of its longer side.)
            row_step = max(1, self._tile_h // banks)
            col_step = max(1, self._tile_w // banks)
            self._offsets = [(b * row_step, b * col_step) for b in range(banks)]
        else:
            self._offsets = [(0, 0)] * banks

        self._row_table: Optional[Dict[int, int]] = None
        if compact_rows:
            self._row_table = self._build_compact_rows()
        # Lazily-built NumPy views used by the vectorized kernel.
        self._np_offsets = None
        self._np_row_table = None
        self.check_capacity()

    # -- public helpers -------------------------------------------------

    @property
    def tile_shape(self) -> Tuple[int, int]:
        """``(tile_h, tile_w)`` actually in use (after ablation switches)."""
        return self._tile_h, self._tile_w

    @property
    def stagger_step(self) -> Tuple[int, int]:
        """Per-bank ``(row, column)`` offset increment ((0, 0) when disabled)."""
        if not self.enable_offset or self._banks < 2:
            return (0, 0)
        return self._offsets[1]

    def rows_used(self) -> int:
        """Distinct DRAM rows the tiling occupies (exact)."""
        if self._row_table is not None:
            return len(self._row_table)
        return self._tiles_x * self._tiles_y

    def storage_efficiency(self) -> float:
        """Fraction of allocated page capacity holding real cells.

        Rectangular allocation of a triangular space wastes nearly half
        the rows; ``compact_rows`` recovers most of it (footnote 1).
        """
        allocated = self.rows_used() * self._banks * self._page
        if allocated == 0:
            return 0.0
        return self.space.num_elements / allocated

    # -- the mapping ------------------------------------------------------

    def bank_of(self, i: int, j: int) -> int:
        """Bank assignment before the row/column computation."""
        if self.enable_bank_rotation:
            return (i + j) % self._banks
        return (i // self._tile_h + j // self._tile_w) % self._banks

    def address_tuple(self, i: int, j: int) -> AddressTuple:
        """Bank/row/column of cell ``(i, j)`` (rotation + tile + offset)."""
        if not self.space.contains(i, j):
            raise ValueError(f"({i}, {j}) outside the index space")
        banks = self._banks
        tile_h = self._tile_h
        tile_w = self._tile_w

        if self.enable_bank_rotation:
            bank = (i + j) % banks
        else:
            bank = (i // tile_h + j // tile_w) % banks

        # Circular shift towards the top-left: the address of (i, j) is
        # the base row/column of the shifted position.  Injectivity per
        # bank: the shift is a fixed translation for a fixed bank, so
        # shifted positions of one bank are distinct and all lie on one
        # diagonal class c = (i + j + dr_b + dc_b) mod B; the base
        # mapping is injective on each class (distinct tiles -> distinct
        # rows, distinct in-tile class cells -> distinct columns).
        # Cells of *different* banks may share (row, column) — they
        # differ in the bank field, which is part of the physical
        # address.
        delta_row, delta_col = self._offsets[bank]
        si = (i + delta_row) % self._h_pad
        sj = (j + delta_col) % self._w_pad

        ti, li = divmod(si, tile_h)
        tj, lj = divmod(sj, tile_w)

        if self.enable_bank_rotation:
            # Column = rank of (li, lj) among the cells of its diagonal
            # class within the tile.  Class cells sit every B columns of
            # a tile row (tile_w is a multiple of B), so the in-row rank
            # is lj // B and each of the wpb ranks repeats once per row.
            column = li * self._wpb + lj // banks
        else:
            column = li * tile_w + lj

        tile_id = ti * self._tiles_x + tj
        if self._row_table is not None:
            row = self._row_table[tile_id]
        else:
            row = tile_id
        return bank, row, column

    # -- traversal fast paths ---------------------------------------------

    def write_addresses(self) -> Iterator[AddressTuple]:
        """Addresses in write (row-wise) order, hot-loop-bound inline."""
        address_tuple = self.address_tuple
        for i, j in self.space.write_order():
            yield address_tuple(i, j)

    def read_addresses(self) -> Iterator[AddressTuple]:
        """Addresses in read (column-wise) order, hot-loop-bound inline."""
        address_tuple = self.address_tuple
        for i, j in self.space.read_order():
            yield address_tuple(i, j)

    # -- vectorized kernel ------------------------------------------------

    vectorized = True

    def address_arrays(self, i: Any, j: Any) -> AddressArrays:
        """NumPy mirror of :meth:`address_tuple` over coordinate arrays.

        Coordinates must lie inside the index space (the traversal
        iterators guarantee this); the per-element containment check of
        :meth:`address_tuple` is skipped here, which is what makes the
        kernel pure integer arithmetic.  Equivalence with the scalar
        path is property-tested in ``tests/mapping/test_vectorized.py``.
        """
        import numpy as np

        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        banks = self._banks
        tile_h = self._tile_h
        tile_w = self._tile_w

        if self.enable_bank_rotation:
            bank = (i + j) % banks
        else:
            bank = (i // tile_h + j // tile_w) % banks

        if self._np_offsets is None:
            self._np_offsets = (
                np.asarray([d[0] for d in self._offsets], dtype=np.int64),
                np.asarray([d[1] for d in self._offsets], dtype=np.int64),
            )
        delta_rows, delta_cols = self._np_offsets
        si = (i + delta_rows[bank]) % self._h_pad
        sj = (j + delta_cols[bank]) % self._w_pad

        ti = si // tile_h
        li = si - ti * tile_h
        tj = sj // tile_w
        lj = sj - tj * tile_w

        if self.enable_bank_rotation:
            column = li * self._wpb + lj // banks
        else:
            column = li * tile_w + lj

        tile_id = ti * self._tiles_x + tj
        if self._row_table is not None:
            if self._np_row_table is None:
                table = np.zeros(self._tiles_x * self._tiles_y, dtype=np.int64)
                for tid, compact in self._row_table.items():
                    table[tid] = compact
                self._np_row_table = table
            row = self._np_row_table[tile_id]
        else:
            row = tile_id
        return bank, row, column

    # -- internals -----------------------------------------------------------

    def _build_compact_rows(self) -> Dict[int, int]:
        """Scan the index space and renumber only the tiles in use.

        Uses numpy when available to keep paper-scale spaces (12.5 M
        cells) tractable; falls back to a pure-Python scan.
        """
        used = set()
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a dependency
            np = None
        space = self.space
        if np is not None and hasattr(space, "height"):
            tile_h = self._tile_h
            tile_w = self._tile_w
            tiles_x = self._tiles_x
            delta_rows = np.asarray([d[0] for d in self._offsets], dtype=np.int64)
            delta_cols = np.asarray([d[1] for d in self._offsets], dtype=np.int64)
            for i in range(space.height):
                length = space.row_length(i)
                j = np.arange(length, dtype=np.int64)
                if self.enable_bank_rotation:
                    bank = (i + j) % self._banks
                else:
                    bank = (i // tile_h + j // tile_w) % self._banks
                si = (i + delta_rows[bank]) % self._h_pad
                sj = (j + delta_cols[bank]) % self._w_pad
                tiles = (si // tile_h) * tiles_x + sj // tile_w
                used.update(np.unique(tiles).tolist())
        else:  # pragma: no cover - exercised only without numpy
            for i, j in space.write_order():
                delta_row, delta_col = self._offsets[self.bank_of(i, j)]
                si = (i + delta_row) % self._h_pad
                sj = (j + delta_col) % self._w_pad
                used.add((si // self._tile_h) * self._tiles_x + sj // self._tile_w)
        return {tile_id: index for index, tile_id in enumerate(sorted(used))}
