"""Rectangular page-tile geometry for the optimized mapping.

The optimized mapping partitions the index space into ``tile_h x
tile_w`` rectangles.  With the diagonal bank rotation
``bank = (i + j) mod B``, each tile contains exactly
``tile_h * tile_w / B`` cells of every bank — one full DRAM page per
bank per tile — provided both tile dimensions are multiples of ``B``.

Choosing the dimensions balances the two traversal directions: during
a row-wise sweep a given bank gets ``tile_w / B`` consecutive accesses
into one page before the sweep leaves the tile (a future page miss);
during a column-wise sweep it gets ``tile_h / B``.  Setting
``tile_h * tile_w = B * bursts_per_page`` with ``tile_h`` and
``tile_w`` as close as the power-of-two constraint allows splits the
misses evenly between the write and read phases — optimization 2 of
the paper (Fig. 1b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import Geometry
from repro.units import is_power_of_two, log2_int


@dataclass(frozen=True)
class TileGeometry:
    """A page-tile shape for a given channel geometry.

    Attributes:
        banks: number of banks ``B``.
        bursts_per_page: page capacity ``P`` in bursts.
        tile_h: tile height in cells (multiple of ``B``).
        tile_w: tile width in cells (multiple of ``B``).
    """

    banks: int
    bursts_per_page: int
    tile_h: int
    tile_w: int

    def __post_init__(self) -> None:
        if self.tile_h * self.tile_w != self.banks * self.bursts_per_page:
            raise ValueError(
                f"tile {self.tile_h}x{self.tile_w} does not hold exactly one page "
                f"per bank (need {self.banks * self.bursts_per_page} cells)"
            )
        if self.tile_w % self.banks:
            raise ValueError(f"tile width {self.tile_w} must be a multiple of {self.banks} banks")

    @property
    def cells_per_tile(self) -> int:
        """Cells covered by one tile (tile height x tile width)."""
        return self.tile_h * self.tile_w

    @property
    def row_run_length(self) -> int:
        """Per-bank consecutive same-page accesses in a row-wise sweep."""
        return self.tile_w // self.banks

    @property
    def col_run_length(self) -> int:
        """Per-bank consecutive same-page accesses in a column-wise sweep."""
        return max(1, self.tile_h // self.banks)

    def balance_ratio(self) -> float:
        """Ratio of the two run lengths (1.0 = perfectly balanced)."""
        longer = max(self.row_run_length, self.col_run_length)
        shorter = min(self.row_run_length, self.col_run_length)
        return longer / shorter


def balanced_tile(geometry: Geometry, prefer_tall: bool = True) -> TileGeometry:
    """Compute the balanced page tile for a channel geometry.

    The cell count per tile is fixed at ``B * P`` (one page per bank);
    with ``B`` and ``P`` powers of two the dimensions are the two middle
    powers of two, both at least ``B``.  When the product has an odd
    number of bits, the extra bit goes to the height by default
    (``prefer_tall``), favoring the column-wise (read) direction —
    the phase the row-major baseline loses.

    Raises:
        ValueError: if the page holds fewer bursts than there are banks
            (then no tile with both dimensions a multiple of ``B``
            exists; no JEDEC configuration in this project is affected).
    """
    banks = geometry.banks
    page = geometry.bursts_per_row
    if page < banks:
        raise ValueError(
            f"page of {page} bursts is smaller than the {banks}-bank diagonal; "
            "the balanced tiling needs bursts_per_page >= banks"
        )
    total_bits = log2_int(banks) + log2_int(page)
    bank_bits = log2_int(banks)
    if prefer_tall:
        h_bits = (total_bits + 1) // 2
    else:
        h_bits = total_bits // 2
    h_bits = max(h_bits, bank_bits)
    h_bits = min(h_bits, total_bits - bank_bits)
    tile_h = 1 << h_bits
    tile_w = 1 << (total_bits - h_bits)
    return TileGeometry(banks=banks, bursts_per_page=page, tile_h=tile_h, tile_w=tile_w)


def row_strip_tile(geometry: Geometry) -> TileGeometry:
    """Degenerate 1-cell-tall tile: one index row per page, per bank.

    This is the *ablation* shape with page tiling disabled: the
    row-wise sweep enjoys maximal runs (``P`` consecutive page hits per
    bank) while the column-wise sweep misses on every access — the
    SRAM-style behavior the paper's Fig. 1b optimization removes.
    """
    banks = geometry.banks
    page = geometry.bursts_per_row
    return TileGeometry(banks=banks, bursts_per_page=page, tile_h=1, tile_w=banks * page)


def tiles_covering(extent: int, tile: int) -> int:
    """Number of tiles of size ``tile`` needed to cover ``extent`` cells."""
    if extent < 1 or tile < 1:
        raise ValueError(f"extent and tile must be >= 1, got {extent}, {tile}")
    return -(-extent // tile)
