"""Interleaver-to-DRAM address mappings (the paper's contribution)."""

from __future__ import annotations

from repro.mapping.analysis import (
    MappingProfile,
    PatternMetrics,
    analyze_pattern,
    miss_clustering,
    profile_mapping,
)
from repro.mapping.base import AddressTuple, InterleaverMapping
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping
from repro.mapping.tiling import TileGeometry, balanced_tile, row_strip_tile, tiles_covering
from repro.mapping.validate import ValidationReport, assert_valid, validate_mapping

__all__ = [
    "AddressTuple",
    "InterleaverMapping",
    "MappingProfile",
    "OptimizedMapping",
    "PatternMetrics",
    "RowMajorMapping",
    "TileGeometry",
    "ValidationReport",
    "analyze_pattern",
    "assert_valid",
    "balanced_tile",
    "miss_clustering",
    "profile_mapping",
    "row_strip_tile",
    "tiles_covering",
    "validate_mapping",
]
