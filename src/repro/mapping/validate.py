"""Mapping correctness validators.

A mapping is usable only if it is *injective* (no two cells share a
physical address) and every address fits the device geometry.  These
checks are exhaustive and therefore meant for tests and small spaces;
the structural properties they verify are argued analytically in the
mapping docstrings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.mapping.base import InterleaverMapping


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_mapping`.

    Attributes:
        cells: number of cells checked.
        collisions: list of ``((i1, j1), (i2, j2), address)`` triples
            that mapped to the same physical address.
        out_of_range: cells whose address exceeds the geometry.
        rows_used: number of distinct DRAM rows referenced.
        banks_used: number of distinct banks referenced.
    """

    cells: int = 0
    collisions: List[Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int, int]]] = field(
        default_factory=list
    )
    out_of_range: List[Tuple[int, int]] = field(default_factory=list)
    rows_used: int = 0
    banks_used: int = 0

    @property
    def ok(self) -> bool:
        """Whether the mapping is injective and within the device."""
        return not self.collisions and not self.out_of_range


def validate_mapping(mapping: InterleaverMapping, max_report: int = 10) -> ValidationReport:
    """Exhaustively check injectivity and range of a mapping.

    Args:
        mapping: the mapping to check (its whole index space is
            enumerated — use small spaces).
        max_report: cap on recorded offending cells.
    """
    geometry = mapping.geometry
    banks = geometry.banks
    rows = geometry.rows
    columns = geometry.bursts_per_row
    seen: Dict[Tuple[int, int, int], Tuple[int, int]] = {}
    report = ValidationReport()
    rows_seen = set()
    banks_seen = set()
    for i, j in mapping.space.write_order():
        address = mapping.address_tuple(i, j)
        bank, row, column = address
        report.cells += 1
        if not (0 <= bank < banks and 0 <= row < rows and 0 <= column < columns):
            if len(report.out_of_range) < max_report:
                report.out_of_range.append((i, j))
            continue
        rows_seen.add(row)
        banks_seen.add(bank)
        previous = seen.get(address)
        if previous is not None:
            if len(report.collisions) < max_report:
                report.collisions.append((previous, (i, j), address))
        else:
            seen[address] = (i, j)
    report.rows_used = len(rows_seen)
    report.banks_used = len(banks_seen)
    return report


def assert_valid(mapping: InterleaverMapping) -> ValidationReport:
    """Validate and raise :class:`AssertionError` on any violation."""
    report = validate_mapping(mapping)
    if report.out_of_range:
        raise AssertionError(f"{mapping.name}: addresses out of range at {report.out_of_range}")
    if report.collisions:
        first = report.collisions[0]
        raise AssertionError(
            f"{mapping.name}: cells {first[0]} and {first[1]} collide on address {first[2]}"
        )
    return report
