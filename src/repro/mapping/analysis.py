"""Fast analytic access-pattern metrics (no timing simulation).

These metrics explain *why* a mapping performs the way it does, in
terms the paper's Section II uses:

* per-bank page-hit run lengths in each traversal direction (how many
  consecutive accesses a bank serves from one open page),
* the bank-switch pattern (does every access change bank / bank
  group?),
* simultaneity of page misses across banks (the problem optimization 3
  removes).

They run in one pass over the access sequence and are used by tests —
the full timing simulator is in :mod:`repro.dram.controller`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.mapping.base import AddressTuple, InterleaverMapping


@dataclass
class PatternMetrics:
    """Single-pass access-pattern statistics for one traversal.

    Attributes:
        accesses: total accesses in the traversal.
        page_switches: per-bank open-row changes (= page misses an
            open-page controller would take, ignoring refresh).
        bank_switches: accesses whose bank differs from the previous
            access.
        bank_group_switches: accesses whose bank group differs from the
            previous access.
        run_lengths: histogram of per-bank same-page run lengths.
        miss_gap_histogram: histogram of global distances (in accesses)
            between consecutive page switches on *any* bank — a spread
            of small gaps means misses are staggered; a spike at 0-1
            plus long gaps means misses collide (the pre-optimization-3
            pathology).
    """

    accesses: int = 0
    page_switches: int = 0
    bank_switches: int = 0
    bank_group_switches: int = 0
    run_lengths: Dict[int, int] = field(default_factory=dict)
    miss_gap_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Open-page hit rate implied by the pattern."""
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.page_switches / self.accesses

    @property
    def mean_run_length(self) -> float:
        """Average per-bank same-page run length."""
        total = sum(length * count for length, count in self.run_lengths.items())
        runs = sum(self.run_lengths.values())
        if runs == 0:
            return 0.0
        return total / runs

    @property
    def bank_switch_rate(self) -> float:
        """Fraction of consecutive accesses that change bank."""
        if self.accesses <= 1:
            return 0.0
        return self.bank_switches / (self.accesses - 1)

    @property
    def bank_group_switch_rate(self) -> float:
        """Fraction of consecutive accesses that change bank group."""
        if self.accesses <= 1:
            return 0.0
        return self.bank_group_switches / (self.accesses - 1)


def analyze_pattern(
    addresses: Iterable[AddressTuple],
    bank_groups: int = 1,
) -> PatternMetrics:
    """Compute :class:`PatternMetrics` over an address sequence."""
    metrics = PatternMetrics()
    open_rows: Dict[int, int] = {}
    run_start: Dict[int, int] = {}
    per_bank_count: Dict[int, int] = {}
    previous_bank: Optional[int] = None
    last_switch_position: Optional[int] = None
    position = 0
    for bank, row, _column in addresses:
        if previous_bank is not None:
            if bank != previous_bank:
                metrics.bank_switches += 1
            if bank % bank_groups != previous_bank % bank_groups:
                metrics.bank_group_switches += 1
        previous_bank = bank
        count = per_bank_count.get(bank, 0)
        current = open_rows.get(bank)
        if current != row:
            if current is not None:
                metrics.page_switches += 1
                run = count - run_start[bank]
                metrics.run_lengths[run] = metrics.run_lengths.get(run, 0) + 1
                if last_switch_position is not None:
                    gap = position - last_switch_position
                    metrics.miss_gap_histogram[gap] = metrics.miss_gap_histogram.get(gap, 0) + 1
                last_switch_position = position
            open_rows[bank] = row
            run_start[bank] = count
        per_bank_count[bank] = count + 1
        position += 1
    # Close out trailing runs.
    for bank, start in run_start.items():
        run = per_bank_count[bank] - start
        if run > 0:
            metrics.run_lengths[run] = metrics.run_lengths.get(run, 0) + 1
    metrics.accesses = position
    return metrics


@dataclass(frozen=True)
class MappingProfile:
    """Write- and read-direction metrics for one mapping."""

    write: PatternMetrics
    read: PatternMetrics

    @property
    def min_hit_rate(self) -> float:
        """The worse of the write- and read-phase page-hit rates."""
        return min(self.write.hit_rate, self.read.hit_rate)

    @property
    def balance(self) -> float:
        """Ratio of the two directions' mean run lengths (1.0 = even)."""
        a = self.write.mean_run_length
        b = self.read.mean_run_length
        if min(a, b) == 0:
            return float("inf")
        return max(a, b) / min(a, b)


def profile_mapping(mapping: InterleaverMapping) -> MappingProfile:
    """Analyze both traversal directions of a mapping."""
    bank_groups = mapping.geometry.bank_groups
    return MappingProfile(
        write=analyze_pattern(mapping.write_addresses(), bank_groups),
        read=analyze_pattern(mapping.read_addresses(), bank_groups),
    )


def miss_clustering(metrics: PatternMetrics, window: int = 2) -> float:
    """Fraction of page switches that follow another within ``window``.

    High values mean misses collide in time (all banks crossing a tile
    boundary together); the paper's optimization 3 pushes this down.
    """
    total = sum(metrics.miss_gap_histogram.values())
    if total == 0:
        return 0.0
    clustered = sum(
        count for gap, count in metrics.miss_gap_histogram.items() if gap <= window
    )
    return clustered / total
