"""Row-major baseline mapping (the SRAM-style layout).

This is the mapping the paper evaluates as the state of the art: the
two-dimensional index space is packed row by row into the linear
address space (triangular rows back to back, without padding — exactly
how an SRAM implementation addresses the array), and the linear burst
index is split into (bank group, bank, row, column) fields by a
configurable bit-field decoder (:class:`repro.dram.address.LinearDecoder`).

With the default decoder the *write* phase is a purely sequential
stream — page hits within every page, bank-group interleaving on the
lowest bits, pages opened well in advance — so write utilization stays
high everywhere, just as in Table I.  The *read* phase strides through
the linear space by one (varying) row length per access, scattering
accesses over banks and rows: almost every access is a page miss, and
utilization becomes limited by how fast the device can activate rows
(tRRD/tFAW) relative to the ever-shorter burst duration of faster
speed grades.  That is the collapse the paper reports (down to 35.77 %
on LPDDR4-4266).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.dram.address import DEFAULT_SCHEME, LinearDecoder
from repro.dram.geometry import Geometry
from repro.interleaver.triangular import IndexSpace
from repro.mapping.base import (
    AddressArrays,
    AddressTuple,
    InterleaverMapping,
    _resolve_chunk_size,
)


class RowMajorMapping(InterleaverMapping):
    """SRAM-style row-major linearization + bit-field address decode.

    Args:
        space: the interleaver index space.
        geometry: target channel organization.
        scheme: bit-field decoder scheme (see
            :mod:`repro.dram.address`); the default interleaves bank
            groups on the lowest bits like production controllers.
        base_burst: linear burst index at which the interleaver region
            starts (allows placing it anywhere in the channel).
    """

    name = "row-major"

    def __init__(self, space: IndexSpace, geometry: Geometry,
                 scheme: str = DEFAULT_SCHEME, base_burst: int = 0) -> None:
        super().__init__(space, geometry)
        if base_burst < 0:
            raise ValueError(f"base_burst must be >= 0, got {base_burst}")
        self.decoder = LinearDecoder(geometry, scheme)
        self.base_burst = base_burst
        end = base_burst + space.num_elements
        if end > self.decoder.total_bursts:
            raise ValueError(
                f"interleaver needs bursts [{base_burst}, {end}) but the channel "
                f"has only {self.decoder.total_bursts}"
            )

    def address_tuple(self, i: int, j: int) -> AddressTuple:
        """Linear-decode the cell's row-major index into bank/row/column."""
        address = self.decoder.decode(self.base_burst + self.space.linear_index(i, j))
        return address.bank, address.row, address.column

    def write_addresses(self) -> Iterator[AddressTuple]:
        """Sequential burst indices 0..E-1 decoded in order (fast path)."""
        decode = self.decoder.decode
        base = self.base_burst
        for linear in range(self.space.num_elements):
            address = decode(base + linear)
            yield address.bank, address.row, address.column

    def read_addresses(self) -> Iterator[AddressTuple]:
        """Column-wise traversal: linear index strides by the row length."""
        decode = self.decoder.decode
        base = self.base_burst
        space = self.space
        height = space.height
        # Per-row linear offsets, computed once: offset[i] is the linear
        # index of (i, 0); cell (i, j) lives at offset[i] + j.
        offsets = [space.row_offset(i) for i in range(height)]
        for j in range(space.width):
            for i in range(height):
                if not space.contains(i, j):
                    break
                address = decode(base + offsets[i] + j)
                yield address.bank, address.row, address.column

    # -- vectorized kernel ------------------------------------------------

    vectorized = True

    def address_arrays(self, i: Any, j: Any) -> AddressArrays:
        """Vectorized linearize-and-decode over coordinate arrays."""
        return self.decoder.decode_arrays(
            self.base_burst + self.space.linear_indices(i, j)
        )

    def write_addresses_array(
            self, chunk_size: Optional[int] = None, *,
            chunk_bytes: Optional[int] = None) -> Iterator[AddressArrays]:
        """Sequential burst indices decoded in bulk (fastest path).

        The write order is the linear order, so the coordinate step is
        skipped entirely: chunks of ``arange`` decode straight to
        columnar addresses.  Granularity contract as in
        :meth:`InterleaverMapping.write_addresses_array`.
        """
        import numpy as np

        cells = _resolve_chunk_size(chunk_size, chunk_bytes)
        base = self.base_burst
        total = self.space.num_elements
        decode_arrays = self.decoder.decode_arrays
        for start in range(0, total, cells):
            stop = min(start + cells, total)
            yield decode_arrays(np.arange(base + start, base + stop, dtype=np.int64))

    def rows_used(self) -> int:
        """Distinct DRAM rows touched (depends on the decoder scheme)."""
        seen = set()
        decode = self.decoder.decode
        total = self.space.num_elements
        # The row field is periodic in the linear index; sample the
        # period boundaries instead of every burst.
        stride = max(1, self.decoder.total_bursts // max(self.geometry.rows, 1))
        for linear in range(0, total, stride):
            seen.add(decode(self.base_burst + linear).row)
        seen.add(decode(self.base_burst + total - 1).row)
        return len(seen)

    def check_capacity(self) -> None:
        """No-op: injectivity is structural (decode is a bijection on
        linear indices) and the region bound is checked in ``__init__``."""
        return None
