"""Common interface for interleaver-to-DRAM address mappings.

A mapping assigns every cell ``(i, j)`` of an interleaver index space
(one cell = one DRAM burst) a physical :class:`~repro.dram.address.DramAddress`.
Mappings must be *injective* over the index space — two cells may never
share a (bank, row, column) triple — which is property-tested in
``tests/mapping``.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator, List, Optional, Tuple

from repro.dram.address import DramAddress
from repro.dram.geometry import Geometry
from repro.interleaver.triangular import (
    DEFAULT_COORD_CHUNK,
    IndexSpace,
    chunk_cells,
)

#: The (bank, row, column) tuples the controller consumes.
AddressTuple = Tuple[int, int, int]

#: One columnar address chunk: (banks, rows, columns) int64 arrays.
AddressArrays = Tuple[Any, Any, Any]

#: Default chunk size (bursts) of the array traversal fast paths —
#: the pipeline-wide byte budget of
#: :data:`repro.interleaver.triangular.DEFAULT_CHUNK_BYTES` expressed
#: in cells; bounded memory even at paper scale (12.5 M cells => ~48
#: chunks).  Shared with the index spaces' coordinate iterators so both
#: sides of the pipeline chunk identically.
DEFAULT_CHUNK = DEFAULT_COORD_CHUNK


def _resolve_chunk_size(chunk_size: Optional[int],
                        chunk_bytes: Optional[int]) -> int:
    """Bursts per chunk from an explicit count or a byte budget."""
    if chunk_size is not None and chunk_bytes is not None:
        raise ValueError("pass chunk_size or chunk_bytes, not both")
    if chunk_bytes is not None:
        return chunk_cells(chunk_bytes)
    if chunk_size is None:
        return DEFAULT_CHUNK
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


class InterleaverMapping(abc.ABC):
    """Maps a 2-D interleaver index space onto one DRAM channel.

    Args:
        space: index space with ``write_order`` / ``read_order``
            iterators and a ``contains`` predicate (triangular or
            rectangular, see :mod:`repro.interleaver.triangular`).
        geometry: the target DRAM channel organization.
    """

    #: Short identifier used in benchmark tables.
    name: str = "abstract"

    #: Whether :meth:`address_arrays` is a true NumPy kernel (overridden
    #: by subclasses).  ``False`` means the array traversal falls back
    #: to per-element :meth:`address_tuple` calls — correct, but slower
    #: than the tuple iterators; the simulator then prefers the tuple
    #: reference path unless arrays are requested explicitly.
    vectorized: bool = False

    def __init__(self, space: IndexSpace, geometry: Geometry) -> None:
        self.space = space
        self.geometry = geometry

    @abc.abstractmethod
    def address_tuple(self, i: int, j: int) -> AddressTuple:
        """Physical ``(bank, row, column)`` of cell ``(i, j)``."""

    def address_of(self, i: int, j: int) -> DramAddress:
        """Physical address of cell ``(i, j)`` as a :class:`DramAddress`."""
        bank, row, column = self.address_tuple(i, j)
        return DramAddress(bank=bank, row=row, column=column)

    def write_addresses(self) -> Iterator[AddressTuple]:
        """Addresses in write (row-wise) order."""
        address_tuple = self.address_tuple
        for i, j in self.space.write_order():
            yield address_tuple(i, j)

    def read_addresses(self) -> Iterator[AddressTuple]:
        """Addresses in read (column-wise) order."""
        address_tuple = self.address_tuple
        for i, j in self.space.read_order():
            yield address_tuple(i, j)

    # -- vectorized traversal (columnar address chunks) -----------------

    def address_arrays(self, i: Any, j: Any) -> AddressArrays:
        """Physical addresses of coordinate arrays, columnar.

        Args:
            i, j: equal-length integer arrays of cell coordinates that
                must lie inside the index space (traversal iterators
                guarantee this; external callers can pre-check with
                ``space.contains``).

        Returns:
            ``(bank, row, column)`` int64 arrays.

        The base implementation is the per-element reference path;
        subclasses with ``vectorized = True`` override it with a real
        NumPy kernel and are property-tested against this one.
        """
        import numpy as np

        address_tuple = self.address_tuple
        triples = [address_tuple(int(ii), int(jj)) for ii, jj in zip(i, j)]
        if not triples:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        banks, rows, columns = zip(*triples)
        return (
            np.asarray(banks, dtype=np.int64),
            np.asarray(rows, dtype=np.int64),
            np.asarray(columns, dtype=np.int64),
        )

    def write_addresses_array(self, chunk_size: Optional[int] = None, *,
                              chunk_bytes: Optional[int] = None,
                              ) -> Iterator[AddressArrays]:
        """Write-order addresses as columnar array chunks.

        Yields the exact address sequence of :meth:`write_addresses` in
        ``(bank, row, column)`` array chunks of ``<= ~chunk_size``
        bursts — the shape the controller's chunked intake consumes.

        Chunk granularity is set either as an element count
        (``chunk_size``) or adaptively as an in-flight byte budget
        (``chunk_bytes``, converted at
        :data:`~repro.interleaver.triangular.CELL_BYTES` per burst);
        passing both raises :class:`ValueError`.  The default is the
        pipeline-wide 6 MiB budget (see
        ``benchmarks/bench_chunk_size.py`` for the flat part of the
        size/throughput curve it sits on).  Granularity never changes
        the address sequence, only its batching.
        """
        cells = _resolve_chunk_size(chunk_size, chunk_bytes)
        for i, j in self._coord_chunks(cells, write=True):
            yield self.address_arrays(i, j)

    def read_addresses_array(self, chunk_size: Optional[int] = None, *,
                             chunk_bytes: Optional[int] = None,
                             ) -> Iterator[AddressArrays]:
        """Read-order addresses as columnar array chunks.

        Same granularity contract as :meth:`write_addresses_array`.
        """
        cells = _resolve_chunk_size(chunk_size, chunk_bytes)
        for i, j in self._coord_chunks(cells, write=False):
            yield self.address_arrays(i, j)

    def _coord_chunks(self, chunk_size: int,
                      write: bool) -> Iterator[Tuple[Any, Any]]:
        """Coordinate chunks from the space, or from the tuple order.

        Index spaces expose ``write_coord_chunks`` / ``read_coord_chunks``
        (see :mod:`repro.interleaver.triangular`); any other space is
        chunked generically from its scalar traversal iterators.
        """
        import numpy as np

        space = self.space
        if write and hasattr(space, "write_coord_chunks"):
            yield from space.write_coord_chunks(chunk_size)
            return
        if not write and hasattr(space, "read_coord_chunks"):
            yield from space.read_coord_chunks(chunk_size)
            return
        order = space.write_order() if write else space.read_order()
        buf_i: List[int] = []
        buf_j: List[int] = []
        for i, j in order:
            buf_i.append(i)
            buf_j.append(j)
            if len(buf_i) >= chunk_size:
                yield np.asarray(buf_i, dtype=np.int64), np.asarray(buf_j, dtype=np.int64)
                buf_i, buf_j = [], []
        if buf_i:
            yield np.asarray(buf_i, dtype=np.int64), np.asarray(buf_j, dtype=np.int64)

    def rows_used(self) -> int:
        """Upper bound on distinct DRAM row indices the mapping uses.

        Subclasses override with exact values; used for capacity checks
        and the storage-efficiency analysis (paper, footnote 1).
        """
        return self.geometry.rows

    def check_capacity(self) -> None:
        """Raise :class:`ValueError` if the mapping exceeds the device.

        Checks that the row index space fits; full injectivity is
        checked by :func:`repro.mapping.validate.validate_mapping`.
        """
        if self.rows_used() > self.geometry.rows:
            raise ValueError(
                f"{self.name} mapping needs {self.rows_used()} rows but the device "
                f"has only {self.geometry.rows}"
            )
