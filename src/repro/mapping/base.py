"""Common interface for interleaver-to-DRAM address mappings.

A mapping assigns every cell ``(i, j)`` of an interleaver index space
(one cell = one DRAM burst) a physical :class:`~repro.dram.address.DramAddress`.
Mappings must be *injective* over the index space — two cells may never
share a (bank, row, column) triple — which is property-tested in
``tests/mapping``.
"""

from __future__ import annotations

import abc
from typing import Iterator, Tuple

from repro.dram.address import DramAddress
from repro.dram.geometry import Geometry

#: The (bank, row, column) tuples the controller consumes.
AddressTuple = Tuple[int, int, int]


class InterleaverMapping(abc.ABC):
    """Maps a 2-D interleaver index space onto one DRAM channel.

    Args:
        space: index space with ``write_order`` / ``read_order``
            iterators and a ``contains`` predicate (triangular or
            rectangular, see :mod:`repro.interleaver.triangular`).
        geometry: the target DRAM channel organization.
    """

    #: Short identifier used in benchmark tables.
    name: str = "abstract"

    def __init__(self, space, geometry: Geometry):
        self.space = space
        self.geometry = geometry

    @abc.abstractmethod
    def address_tuple(self, i: int, j: int) -> AddressTuple:
        """Physical ``(bank, row, column)`` of cell ``(i, j)``."""

    def address_of(self, i: int, j: int) -> DramAddress:
        """Physical address of cell ``(i, j)`` as a :class:`DramAddress`."""
        bank, row, column = self.address_tuple(i, j)
        return DramAddress(bank=bank, row=row, column=column)

    def write_addresses(self) -> Iterator[AddressTuple]:
        """Addresses in write (row-wise) order."""
        address_tuple = self.address_tuple
        for i, j in self.space.write_order():
            yield address_tuple(i, j)

    def read_addresses(self) -> Iterator[AddressTuple]:
        """Addresses in read (column-wise) order."""
        address_tuple = self.address_tuple
        for i, j in self.space.read_order():
            yield address_tuple(i, j)

    def rows_used(self) -> int:
        """Upper bound on distinct DRAM row indices the mapping uses.

        Subclasses override with exact values; used for capacity checks
        and the storage-efficiency analysis (paper, footnote 1).
        """
        return self.geometry.rows

    def check_capacity(self) -> None:
        """Raise :class:`ValueError` if the mapping exceeds the device.

        Checks that the row index space fits; full injectivity is
        checked by :func:`repro.mapping.validate.validate_mapping`.
        """
        if self.rows_used() > self.geometry.rows:
            raise ValueError(
                f"{self.name} mapping needs {self.rows_used()} rows but the device "
                f"has only {self.geometry.rows}"
            )
