"""The ``repro lint`` command: run the analyzer, print, set exit code.

Human output is one conventional ``path:line:col: RULE [severity]
message`` line per finding plus a summary; ``--json`` emits a stable
machine-readable document instead (schema version, rule catalogue
reference, sorted findings).  Exit codes: 0 clean, 1 findings at
``error`` severity, 2 usage errors.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, TextIO

from repro.analysis.base import all_rules, get_rules
from repro.analysis.findings import Finding
from repro.analysis.runner import analyze_paths

#: Schema version of the ``--json`` document.
JSON_SCHEMA_VERSION = 1


def findings_to_json(findings: Sequence[Finding],
                     files: int) -> Dict[str, Any]:
    """The machine-readable lint report document."""
    return {
        "version": JSON_SCHEMA_VERSION,
        "files": files,
        "findings": [finding.to_dict() for finding in findings],
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
    }


def format_findings(findings: Sequence[Finding], files: int) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines = [finding.format() for finding in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    if findings:
        lines.append("")
    lines.append(f"{files} file(s) analyzed: {errors} error(s), "
                 f"{warnings} warning(s)")
    return "\n".join(lines)


def list_rules_text() -> str:
    """The rule catalogue: id, name, severity and summary per rule."""
    lines = [f"{'id':5s} {'name':18s} {'severity':8s} summary"]
    for rule in all_rules():
        lines.append(f"{rule.id:5s} {rule.name:18s} {rule.severity:8s} "
                     f"{type(rule).summary()}")
    return "\n".join(lines)


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    json_output: bool = False,
    stream: Optional[TextIO] = None,
    error_stream: Optional[TextIO] = None,
) -> int:
    """Run the analyzer over ``paths`` and print a report.

    Args:
        paths: files/directories to lint.
        select: rule ids to run (default all; unknown ids exit 2).
        json_output: emit the JSON document instead of human lines.
        stream: report destination (default ``sys.stdout``).
        error_stream: usage-error destination (default ``sys.stderr``).

    Returns:
        Process exit code: 0 clean, 1 error-severity findings,
        2 usage errors (unknown rule id, missing path).
    """
    import sys

    out = stream if stream is not None else sys.stdout
    err = error_stream if error_stream is not None else sys.stderr
    try:
        get_rules(select)
        findings, files = analyze_paths(paths, select=select)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=err)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=err)
        return 2
    if json_output:
        json.dump(findings_to_json(findings, files), out, indent=2)
        print(file=out)
    else:
        print(format_findings(findings, files), file=out)
    errors: List[Finding] = [f for f in findings if f.severity == "error"]
    return 1 if errors else 0
