"""R006 — public docstring coverage stays at 100%.

PR 5's documentation site renders every public module, class, function
and method; its build is warnings-as-errors, so a missing public
docstring already fails CI — but only after an import-and-introspect
build.  R006 is the same contract at lint time, from the AST alone:
every public module, class, function, method and property in ``src/``
carries a docstring.  Private names (leading underscore, including
dunders), nested functions and property setters (documented by their
getter) are exempt — mirroring what the docs generator renders.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Union

from repro.analysis.base import FileContext, Rule, register
from repro.analysis.findings import Finding


def _is_public(name: str) -> bool:
    """Public per the docs generator: no leading underscore."""
    return not name.startswith("_")


def _is_setter(node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> bool:
    """Is this a ``@x.setter``/``@x.deleter`` (documented via the getter)?"""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Attribute) and \
                decorator.attr in ("setter", "deleter"):
            return True
    return False


@register
class DocstringRule(Rule):
    """Every public module, class, function, method and property carries a docstring.

    The lint-time form of the docs site's warnings-as-errors build:
    100% public docstring coverage, checked without importing anything.
    """

    id = "R006"
    name = "public-docstring"
    roles = ("src",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag missing public docstrings."""
        tree = context.tree
        if ast.get_docstring(tree) is None:
            yield Finding(path=context.path, line=1, col=0, rule=self.id,
                          message="missing module docstring",
                          severity=self.severity)
        yield from self._check_body(context, tree.body, owner="")

    def _check_body(self, context: FileContext, body: Sequence[ast.stmt],
                    owner: str) -> Iterator[Finding]:
        """Check one class/module body's public definitions."""
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not _is_public(node.name):
                    continue
                label = f"{owner}{node.name}"
                if ast.get_docstring(node) is None:
                    yield context.finding(
                        self, node,
                        f"missing docstring on public class {label!r}")
                yield from self._check_body(context, node.body,
                                            owner=label + ".")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public(node.name) or _is_setter(node):
                    continue
                kind = "method" if owner else "function"
                if ast.get_docstring(node) is None:
                    yield context.finding(
                        self, node,
                        f"missing docstring on public {kind} "
                        f"{owner + node.name!r}")
                # Nested defs are implementation detail: not recursed.
