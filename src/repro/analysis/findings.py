"""The finding record every rule emits.

A finding pins one invariant violation to an exact source location:
``(path, line, col)`` plus the rule id, severity and a human message.
Findings order deterministically (path, then position, then rule) so
human output, JSON output and the fixture tests all see one stable
sequence regardless of rule execution order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

#: Severities a rule may assign: ``error`` findings fail ``repro lint``,
#: ``warning`` findings are reported but do not affect the exit code.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at an exact source position.

    Attributes:
        path: the analyzed file (as given to the runner).
        line: 1-based source line of the violating node.
        col: 0-based column of the violating node.
        rule: rule id (``R001`` … ``R006``; ``R000`` for suppression
            bookkeeping violations).
        message: human-readable description of the violation.
        severity: ``error`` or ``warning`` (see :data:`SEVERITIES`).
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        """Deterministic ordering key: path, position, rule id."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """The finding as a JSON-serializable mapping."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def format(self) -> str:
        """The conventional one-line human rendering."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} [{self.severity}] {self.message}")
