"""Rule protocol and registry.

A rule is a small class with a stable id (``R001`` …), a kebab-case
name, a severity, and a :meth:`Rule.check` method that walks one parsed
file and yields :class:`~repro.analysis.findings.Finding` records.
Rules register themselves with the :func:`register` decorator at import
time; :func:`all_rules` returns one instance of each, id-ordered, and
is what the runner and the CLI consume.

Rules also declare the file *roles* they apply to: the proof discipline
constrains production code under ``src/``, while ``tests/`` and
``benchmarks/`` are exactly where oracles may be imported and wall
clocks may be read — so most rules default to the ``src`` role only.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Type

from repro.analysis.findings import Finding

#: File roles the runner derives from a path: production code under
#: ``src/`` (also the default for loose files), test code under
#: ``tests/``, benchmark code under ``benchmarks/``.
ROLES = ("src", "tests", "benchmarks")


@dataclass
class FileContext:
    """Everything a rule may inspect about one analyzed file.

    Attributes:
        path: the file path as given to the runner (used in findings).
        source: the raw source text.
        tree: the parsed ``ast.Module``.
        role: one of :data:`ROLES`.
        module: the dotted module name when the file lies under a
            ``src`` root (e.g. ``repro.dram.engine``), else ``None`` —
            rules keyed by dotted names (hot-path registration) need it.
        is_package_init: whether the file is an ``__init__.py`` (public
            re-export surface; R001's name check exempts it).
    """

    path: str
    source: str
    tree: ast.Module
    role: str = "src"
    module: Optional[str] = None
    is_package_init: bool = False

    def finding(self, rule: "Rule", node: ast.AST, message: str) -> Finding:
        """Build a finding for ``rule`` at ``node``'s position."""
        return Finding(path=self.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0), rule=rule.id,
                       message=message, severity=rule.severity)


class Rule(abc.ABC):
    """One invariant checker.

    Subclasses set the class attributes and implement :meth:`check`;
    the docstring's first paragraph doubles as the rule's catalogue
    summary (``repro lint --list-rules`` and the docs-site page).
    """

    #: Stable rule id (``R001`` … ``R006``).
    id: str = ""
    #: Kebab-case rule name (shown in ``--list-rules``).
    name: str = ""
    #: Finding severity, one of
    #: :data:`repro.analysis.findings.SEVERITIES`.
    severity: str = "error"
    #: File roles the rule applies to (subset of :data:`ROLES`).
    roles: Tuple[str, ...] = ("src",)

    @abc.abstractmethod
    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield every violation found in ``context``."""

    @classmethod
    def summary(cls) -> str:
        """First line of the rule's docstring (catalogue text)."""
        doc = cls.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else cls.name


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry.

    Raises:
        ValueError: on a duplicate or malformed rule id.
    """
    rule_id = rule_class.id
    if not rule_id or not rule_id.startswith("R"):
        raise ValueError(f"rule id must look like R0xx, got {rule_id!r}")
    if rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """One instance of every registered rule, ordered by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Registered rules, optionally narrowed to the given ids.

    Args:
        select: rule ids to keep (``None`` = all).

    Raises:
        KeyError: when ``select`` names an unknown rule id.
    """
    rules = all_rules()
    if select is None:
        return rules
    known = {rule.id for rule in rules}
    unknown = sorted(set(select) - known)
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}; "
                       f"known: {', '.join(sorted(known))}")
    wanted = set(select)
    return [rule for rule in rules if rule.id in wanted]


def known_rule_ids() -> Tuple[str, ...]:
    """Every registered rule id, sorted (suppression validation)."""
    _load_builtin_rules()
    return tuple(sorted(_REGISTRY))


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (registration side effect)."""
    import repro.analysis.rules_determinism  # noqa: F401
    import repro.analysis.rules_docs  # noqa: F401
    import repro.analysis.rules_isolation  # noqa: F401
    import repro.analysis.rules_quality  # noqa: F401
    import repro.analysis.rules_units  # noqa: F401
