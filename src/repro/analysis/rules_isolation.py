"""R001 — oracle isolation: frozen references stay test-only.

The differential proof pattern only means something while the oracles
stay independent: :mod:`repro.dram._reference` (the seed schedulers,
frozen verbatim), :mod:`repro.dram._policy_reference` (the scalar
references for the non-default scheduling disciplines) and the
``*_reference`` scalar oracles must never leak into production code
paths, or a bug could propagate into the very reference the vectorized
path is "proven" against.  R001 flags any import of an oracle module,
and any import of a ``*_reference`` symbol, from ``src/`` code.

Refinements (documented, not suppressions): package ``__init__``
modules re-export ``*_reference`` oracles as public API for tests and
benchmarks to import — the name check exempts ``__init__.py``, while
the oracle-module check applies everywhere under ``src/``.  The oracle
modules themselves are exempt entirely: an oracle may build on another
oracle (``_policy_reference`` dispatches to ``_reference`` for the
open-page discipline) without ever touching production code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import FileContext, Rule, register
from repro.analysis.findings import Finding

#: The frozen oracle modules' basenames.
ORACLE_MODULES = ("_reference", "_policy_reference")

#: Suffix marking frozen scalar-oracle symbols.
ORACLE_SUFFIX = "_reference"


@register
class OracleIsolationRule(Rule):
    """Frozen oracles (``dram/_reference``, ``*_reference`` symbols) are importable only from tests/benchmarks.

    Production ``src/`` code must schedule, count and simulate through
    the live engine; the frozen references exist exclusively so tests
    and benchmarks can differentially prove the live paths against
    them.
    """

    id = "R001"
    name = "oracle-isolation"
    roles = ("src",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag oracle imports in production code."""
        if context.module and context.module.split(".")[-1] in ORACLE_MODULES:
            return  # oracle modules may build on each other
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if any(part in ORACLE_MODULES
                           for part in alias.name.split(".")):
                        yield context.finding(
                            self, node,
                            f"import of frozen oracle module "
                            f"{alias.name!r}: references are test-only "
                            f"(import them from tests/ or benchmarks/)")
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[-1] in ORACLE_MODULES:
                    yield context.finding(
                        self, node,
                        f"import from frozen oracle module {module!r}: "
                        f"references are test-only (import them from "
                        f"tests/ or benchmarks/)")
                    continue
                if context.is_package_init:
                    continue  # public re-export surface (see module doc)
                for alias in node.names:
                    if alias.name.endswith(ORACLE_SUFFIX):
                        yield context.finding(
                            self, node,
                            f"import of oracle symbol {alias.name!r}: "
                            f"*_reference oracles are test-only")
