"""R003 — unit-suffix discipline: never add picoseconds to picojoules.

The whole simulator runs on suffix-annotated scalars: ``*_ps``/``*_ns``
timestamps, ``*_pj``/``*_uj`` energies, ``*_mw`` powers,
``*_bits``/``*_bytes`` sizes.  A silent ``latency_ps + energy_pj``
produces a perfectly plausible number — R003 flags additive arithmetic
(``+``, ``-``, ``+=``, ``-=``) and ordering/equality comparisons whose
two operands carry *different* unit suffixes (mixing units inside one
family, like ``_ps + _ns``, is just as wrong as mixing families).

Multiplication and division are deliberately exempt: they are exactly
how units convert (``value_ns * PS_PER_NS``).  Names containing
``_per_`` (rates) and the ``_s``/``_l`` JEDEC short/long suffixes carry
no unit.  A lightweight inference pass propagates units through simple
assignments, ``min``/``max``/``abs``, subscripts and conditionals, so
``deadline = event.deadline_ps`` keeps its picoseconds.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.analysis.base import FileContext, Rule, register
from repro.analysis.findings import Finding

#: Known unit suffixes and the family each belongs to (the family only
#: shapes the message; *any* two distinct units may not meet in
#: additive arithmetic).
UNIT_FAMILIES: Dict[str, str] = {
    "ps": "time", "ns": "time", "us": "time", "ms": "time",
    "pj": "energy", "nj": "energy", "uj": "energy", "mj": "energy",
    "mw": "power", "uw": "power",
    "bits": "data", "bytes": "data",
    "mtps": "rate",
}

#: Calls that preserve their arguments' unit.
_UNIT_PRESERVING_CALLS = frozenset({"min", "max", "abs", "round", "int",
                                    "float", "sum"})


def unit_of_name(identifier: str) -> Optional[str]:
    """Unit suffix of one identifier, if any.

    ``_per_`` names are rates (no single unit) and bare suffixes
    without an underscore (like a variable named ``ps``) are ignored.
    """
    lower = identifier.lower()
    if "_per_" in lower or "_" not in lower:
        return None
    tail = lower.rsplit("_", 1)[1]
    return tail if tail in UNIT_FAMILIES else None


class _UnitVisitor(ast.NodeVisitor):
    """Walks one file in source order, inferring units and flagging."""

    def __init__(self, rule: "UnitSuffixRule",
                 context: FileContext) -> None:
        self.rule = rule
        self.context = context
        self.findings: List[Finding] = []
        self._scopes: List[Dict[str, Optional[str]]] = [{}]

    # -- unit inference ------------------------------------------------

    def _lookup(self, name: str) -> Optional[str]:
        unit = unit_of_name(name)
        if unit is not None:
            return unit
        return self._scopes[-1].get(name)

    def unit_of(self, node: ast.AST) -> Optional[str]:
        """Best-effort unit of one expression."""
        if isinstance(node, ast.Name):
            return self._lookup(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in _UNIT_PRESERVING_CALLS:
                    return self._common_unit(node.args)
                return unit_of_name(func.id)
            if isinstance(func, ast.Attribute):
                return unit_of_name(func.attr)
            return None
        if isinstance(node, ast.Subscript):
            return self.unit_of(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.IfExp):
            return self._common_unit([node.body, node.orelse])
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add,
                                                                ast.Sub)):
            left = self.unit_of(node.left)
            right = self.unit_of(node.right)
            if left is not None and right is not None:
                return left if left == right else None
            return left if left is not None else right
        return None

    def _common_unit(self, nodes: List[ast.expr]) -> Optional[str]:
        units = {unit for unit in (self.unit_of(n) for n in nodes)
                 if unit is not None}
        return units.pop() if len(units) == 1 else None

    # -- flagging ------------------------------------------------------

    def _flag(self, node: ast.AST, left: ast.AST, right: ast.AST,
              op: str) -> None:
        left_unit = self.unit_of(left)
        right_unit = self.unit_of(right)
        if left_unit is None or right_unit is None or left_unit == right_unit:
            return
        left_family = UNIT_FAMILIES[left_unit]
        right_family = UNIT_FAMILIES[right_unit]
        if left_family == right_family:
            detail = f"both {left_family}, but different units"
        else:
            detail = f"{left_family} vs {right_family}"
        self.findings.append(self.context.finding(
            self.rule, node,
            f"unit mismatch: {ast.unparse(left)!r} [{left_unit}] {op} "
            f"{ast.unparse(right)!r} [{right_unit}] ({detail}) — convert "
            f"explicitly first"))

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            op = "+" if isinstance(node.op, ast.Add) else "-"
            self._flag(node, node.left, node.right, op)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                               ast.Eq, ast.NotEq)):
                symbol = {ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">",
                          ast.GtE: ">=", ast.Eq: "==",
                          ast.NotEq: "!="}[type(op)]
                self._flag(node, operands[index], operands[index + 1],
                           symbol)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            op = "+=" if isinstance(node.op, ast.Add) else "-="
            self._flag(node, node.target, node.value, op)
        self.generic_visit(node)

    # -- scope and environment upkeep ----------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if unit_of_name(name) is None:
                self._scopes[-1][name] = self.unit_of(node.value)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()


@register
class UnitSuffixRule(Rule):
    """Additive arithmetic and comparisons must not mix unit-suffix families.

    ``_ps``/``_ns``/``_us``/``_ms`` (time), ``_pj``/``_uj`` (energy),
    ``_mw`` (power), ``_bits``/``_bytes`` (data) only meet through
    explicit conversion (multiplication/division), never through
    ``+``/``-``/comparisons.
    """

    id = "R003"
    name = "unit-suffix"
    roles = ("src",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag unit-mixing arithmetic in production code."""
        visitor = _UnitVisitor(self, context)
        visitor.visit(context.tree)
        for finding in visitor.findings:
            yield finding
