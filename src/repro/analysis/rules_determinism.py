"""R002 — determinism: seed-deterministic, ``--jobs``-invariant results.

Every table, campaign cell and co-simulation result must be a pure
function of its configuration and seed: reruns and ``--jobs N`` fan-out
are proven byte-identical.  Three things silently break that proof
without failing any functional test, and R002 flags each in ``src/``
code:

* the legacy global RNGs (``random.*``, ``np.random.seed``/
  ``np.random.rand``/…) — all randomness must flow through a seeded
  :class:`numpy.random.Generator` parameter
  (``np.random.default_rng`` and the ``Generator``/``SeedSequence``
  types themselves are the sanctioned constructs);
* wall-clock reads (``time.time``, ``datetime.now``, ``perf_counter``)
  in result-producing code — benchmarks and tests may time things,
  ``src/`` may not;
* iterating a ``set`` (or ``dict.keys()``) while building an ordered
  output — set order depends on ``PYTHONHASHSEED``; wrap the set in
  ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.base import FileContext, Rule, register
from repro.analysis.findings import Finding

#: ``np.random`` attributes that are sanctioned (the seeded-Generator
#: machinery); everything else on ``np.random`` is the legacy global
#: RNG surface.
ALLOWED_NP_RANDOM = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Wall-clock reading functions of the ``time`` module.
_TIME_FUNCTIONS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})

#: Wall-clock reading methods/constructors on datetime/date objects.
_DATETIME_FUNCTIONS = frozenset({"now", "utcnow", "today"})

#: Calls that materialize their argument's iteration order.  Anything
#: else taking a set (``sorted``, ``len``, ``min``, …) is
#: order-insensitive or order-producing and therefore sanctioned.
_ORDER_SENSITIVE = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_typed(node: ast.AST, env: Dict[str, bool]) -> bool:
    """Best-effort: does ``node`` evaluate to a ``set``?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    if isinstance(node, ast.Name):
        return env.get(node.id, False)
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_typed(node.left, env) or _is_set_typed(node.right, env)
    return False


def _is_keys_call(node: ast.AST) -> bool:
    """Is ``node`` a ``something.keys()`` call?"""
    return (isinstance(node, ast.Call) and not node.args
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys")


@register
class DeterminismRule(Rule):
    """No legacy RNG, wall-clock read, or bare-set iteration in result-producing code.

    Randomness flows through a seeded ``numpy.random.Generator``
    parameter; time comes from the simulated integer-picosecond
    timeline; ordered outputs come from ``sorted(...)``, never raw set
    iteration.
    """

    id = "R002"
    name = "determinism"
    roles = ("src",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag nondeterminism sources in production code."""
        yield from self._check_imports(context)
        env = self._set_typed_names(context.tree)
        for node in ast.walk(context.tree):
            finding = self._check_attribute(context, node)
            if finding is not None:
                yield finding
            yield from self._check_iteration(context, node, env)

    def _check_imports(self, context: FileContext) -> Iterator[Finding]:
        """Flag imports of the legacy ``random`` module and time sources."""
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield context.finding(
                            self, node,
                            "import of the legacy 'random' module: pass "
                            "a seeded numpy.random.Generator instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield context.finding(
                        self, node,
                        "import from the legacy 'random' module: pass "
                        "a seeded numpy.random.Generator instead")
                elif node.module == "time":
                    clocky = sorted(
                        alias.name for alias in node.names
                        if alias.name in _TIME_FUNCTIONS)
                    if clocky:
                        yield context.finding(
                            self, node,
                            f"wall-clock import from 'time' "
                            f"({', '.join(clocky)}): results must not "
                            f"depend on host time")

    def _check_attribute(self, context: FileContext,
                         node: ast.AST) -> Optional[Finding]:
        """Flag legacy ``np.random.*`` uses and wall-clock reads."""
        if not isinstance(node, ast.Attribute):
            return None
        value = node.value
        # np.random.<legacy>  /  numpy.random.<legacy>
        if (isinstance(value, ast.Attribute) and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")
                and node.attr not in ALLOWED_NP_RANDOM):
            return context.finding(
                self, node,
                f"legacy global RNG np.random.{node.attr}: use a seeded "
                f"numpy.random.Generator parameter")
        # time.<clock>()
        if (isinstance(value, ast.Name) and value.id == "time"
                and node.attr in _TIME_FUNCTIONS):
            return context.finding(
                self, node,
                f"wall-clock read time.{node.attr}: results must not "
                f"depend on host time")
        # datetime.now() / datetime.datetime.now() / date.today() ...
        if node.attr in _DATETIME_FUNCTIONS:
            root = value
            while isinstance(root, ast.Attribute):
                root = root.value
            names = {value.attr} if isinstance(value, ast.Attribute) else set()
            if isinstance(root, ast.Name):
                names.add(root.id)
            if names & {"datetime", "date"}:
                return context.finding(
                    self, node,
                    f"wall-clock read {ast.unparse(node)}: results must "
                    f"not depend on host time")
        return None

    def _set_typed_names(self, tree: ast.Module) -> Dict[str, bool]:
        """Names assigned from set-typed expressions (whole file, flat).

        Best-effort and scope-flattened: a false ``set`` attribution
        would need the same name to hold a set in one scope and an
        ordered iterable in another, which the code base avoids.
        """
        env: Dict[str, bool] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                name = node.targets[0].id
                env[name] = env.get(name, False) or \
                    _is_set_typed(node.value, env)
        return env

    def _check_iteration(self, context: FileContext, node: ast.AST,
                         env: Dict[str, bool]) -> Iterator[Finding]:
        """Flag iteration that materializes set/keys order."""
        iters = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_SENSITIVE and node.args:
            iters.append(node.args[0])
        for candidate in iters:
            if _is_set_typed(candidate, env):
                yield context.finding(
                    self, candidate,
                    "iteration over a bare set: order depends on "
                    "PYTHONHASHSEED — wrap it in sorted(...)")
            elif _is_keys_call(candidate):
                yield context.finding(
                    self, candidate,
                    "iteration over dict.keys(): iterate the dict (or "
                    "sorted(d)) when building ordered output")
