"""File discovery, per-file analysis and suppression handling.

The runner walks the given paths for ``*.py`` files, derives each
file's role (``src`` / ``tests`` / ``benchmarks``) and dotted module
name, runs every applicable rule, and applies the suppression
directives:

* ``# repro: noqa[R003]`` on a finding's reported line suppresses that
  rule there; several rules may be listed (``noqa[R002,R003]``);
* a directive that suppresses nothing is itself reported as an
  ``R000`` *unused-suppression* finding — suppressions cannot rot;
* a bare ``# repro: noqa`` (no rule list) and a directive naming an
  unknown rule id are ``R000`` findings too: blanket or misspelled
  suppressions never silently disable the analyzer.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.analysis.base import FileContext, Rule, get_rules, known_rule_ids
from repro.analysis.findings import Finding

#: The suppression directive (a ``repro: noqa`` comment with a
#: mandatory bracketed rule list; whitespace inside the brackets is
#: ignored).  Examples live in the module docstring, not here — a
#: literal directive in a comment would itself be parsed as one.
NOQA_RE = re.compile(r"#\s*repro:\s*noqa\s*(\[([^\]]*)\])?")

#: Rule id of the suppression-bookkeeping findings themselves.
NOQA_RULE_ID = "R000"


@dataclass
class _Directive:
    """One parsed ``# repro: noqa[...]`` comment."""

    line: int
    col: int
    ids: Tuple[str, ...]
    used: Dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for rule_id in self.ids:
            self.used[rule_id] = False


def _parse_directives(source: str, path: str) -> Tuple[List[_Directive], List[Finding]]:
    """Extract suppression directives; malformed ones become findings."""
    directives: List[_Directive] = []
    malformed: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [], []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = NOQA_RE.search(token.string)
        if match is None:
            continue
        line = token.start[0]
        col = token.start[1] + match.start()
        if match.group(1) is None:
            malformed.append(Finding(
                path=path, line=line, col=col, rule=NOQA_RULE_ID,
                message="blanket suppression: name the rule(s), "
                        "e.g. # repro: noqa[R003]"))
            continue
        ids = tuple(part.strip() for part in match.group(2).split(",")
                    if part.strip())
        if not ids:
            malformed.append(Finding(
                path=path, line=line, col=col, rule=NOQA_RULE_ID,
                message="empty suppression: name the rule(s), "
                        "e.g. # repro: noqa[R003]"))
            continue
        directives.append(_Directive(line=line, col=col, ids=ids))
    return directives, malformed


def role_of(path: Union[str, Path]) -> str:
    """Derive a file's role from its path components.

    Files under a ``tests`` or ``benchmarks`` directory get those
    roles; everything else (``src/`` trees, loose files) is production
    code — the strict default.
    """
    parts = Path(path).parts
    if "tests" in parts:
        return "tests"
    if "benchmarks" in parts:
        return "benchmarks"
    return "src"


def module_name_of(path: Union[str, Path]) -> Optional[str]:
    """Dotted module name of a file under a ``src`` root, else ``None``."""
    parts = list(Path(path).parts)
    if "src" not in parts:
        return None
    tail = parts[len(parts) - parts[::-1].index("src"):]
    if not tail or not tail[-1].endswith(".py"):
        return None
    tail[-1] = tail[-1][:-3]
    if tail[-1] == "__init__":
        tail.pop()
    return ".".join(tail) if tail else None


def analyze_source(
    source: str,
    path: str = "<string>",
    role: Optional[str] = None,
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze one source text; the core entry point.

    Args:
        source: Python source to analyze.
        path: path used in findings and (when ``role``/``module`` are
            not given) for role and module-name derivation.
        role: override the derived file role.
        module: override the derived dotted module name.
        rules: the rules to run (default: every registered rule).

    Returns:
        Sorted findings, with suppressions applied and unused or
        malformed suppressions reported as ``R000``.
    """
    if role is None:
        role = role_of(path)
    if module is None:
        module = module_name_of(path)
    if rules is None:
        rules = get_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        line = error.lineno or 1
        col = (error.offset or 1) - 1
        return [Finding(path=path, line=line, col=max(col, 0), rule="E999",
                        message=f"syntax error: {error.msg}")]
    context = FileContext(
        path=path, source=source, tree=tree, role=role, module=module,
        is_package_init=Path(path).name == "__init__.py")
    raw: List[Finding] = []
    for rule in rules:
        if role in rule.roles:
            raw.extend(rule.check(context))

    directives, findings = _parse_directives(source, path)
    by_line: Dict[int, List[_Directive]] = {}
    for directive in directives:
        by_line.setdefault(directive.line, []).append(directive)
    for finding in raw:
        suppressed = False
        for directive in by_line.get(finding.line, ()):
            if finding.rule in directive.used:
                directive.used[finding.rule] = True
                suppressed = True
        if not suppressed:
            findings.append(finding)
    known = set(known_rule_ids()) | {NOQA_RULE_ID, "E999"}
    for directive in directives:
        for rule_id in directive.ids:
            if rule_id not in known:
                findings.append(Finding(
                    path=path, line=directive.line, col=directive.col,
                    rule=NOQA_RULE_ID,
                    message=f"suppression names unknown rule {rule_id!r}"))
            elif not directive.used[rule_id]:
                findings.append(Finding(
                    path=path, line=directive.line, col=directive.col,
                    rule=NOQA_RULE_ID,
                    message=f"unused suppression: no {rule_id} finding "
                            f"on this line"))
    findings.sort(key=lambda f: f.sort_key)
    return findings


def analyze_file(path: Union[str, Path],
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Analyze one file on disk (see :func:`analyze_source`)."""
    text = Path(path).read_text(encoding="utf-8")
    return analyze_source(text, path=str(path), rules=rules)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Yield every ``*.py`` file under the given files/directories.

    Directories are walked recursively in sorted order; hidden
    directories and ``__pycache__`` are skipped.

    Raises:
        FileNotFoundError: when a given path does not exist.
    """
    for given in paths:
        root = Path(given)
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {given}")
        if root.is_file():
            yield root
            continue
        for candidate in sorted(root.rglob("*.py")):
            parts = candidate.parts
            if "__pycache__" in parts or any(
                    part.startswith(".") and part not in (".", "..")
                    for part in parts):
                continue
            yield candidate


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    select: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Analyze every Python file under ``paths``.

    Args:
        paths: files and/or directories to analyze.
        select: rule ids to run (default: all).

    Returns:
        ``(findings, files_analyzed)`` with findings sorted.
    """
    rules = get_rules(select)
    findings: List[Finding] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        findings.extend(analyze_file(path, rules=rules))
    findings.sort(key=lambda f: f.sort_key)
    return findings, count
