"""R004 and R005 — numeric and hot-loop code-quality invariants.

*R004 (float-equality)*: ``==``/``!=`` between float-typed expressions
is how golden numbers silently drift — the differential batteries
compare floats bit-exactly **on purpose**, but they live in ``tests/``;
production code must use exact sentinels or ``math.isinf``/
``math.isclose``.  Refinement (documented): comparisons against the
literals ``0.0`` and ``1.0`` are exact-representable sentinel checks
(``p_good == 0.0`` selects the sparse fade path) and are exempt;
``float("inf")`` comparisons are not — ``math.isinf`` says the same
thing robustly.

*R005 (hot-loop hygiene)*: the functions registered in
:data:`HOT_PATHS` are the measured hot loops every benchmark pins a
speedup on.  Inside their loops, per-iteration ``list``/``dict``/
``set`` literals, comprehensions, ``lambda`` definitions and dynamic
attribute access (``getattr``/``setattr``/``hasattr``) allocate or
dispatch per iteration — hoist them out.  Tuples are exempt: heap
entries and multiple assignment are idiomatic and cheap.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.analysis.base import FileContext, Rule, register
from repro.analysis.findings import Finding

#: Dotted names of the registered hot paths and why each is hot.  Keys
#: are ``module.Class.function`` / ``module.function``; loops anywhere
#: lexically inside the function (including nested helpers) are hot.
HOT_PATHS: Dict[str, str] = {
    "repro.dram.engine.SchedulingEngine.run":
        "the engine arbiter walk (every scheduled command)",
    "repro.dram.kernel.KernelEngine._run_python":
        "the batch-advance kernel's pure-Python segment loop",
    "repro.dram.kernel.KernelEngine._run_native":
        "the compiled-kernel driver (segment re-entry per refresh)",
    "repro.channel.gilbert_elliott.GilbertElliottChannel._fill_state_row":
        "the channel dwell sampler (every frame)",
    "repro.channel.gilbert_elliott.GilbertElliottChannel._sample_batch":
        "the batched channel core (every campaign cell)",
    "repro.dram.engine._PartitionedSource.batches":
        "the bank-partition intake remap (every partitioned chunk)",
    "repro.dram.energy.energy_from_commands":
        "the vectorized energy recount",
    "repro.dram.energy.energy_from_commands_reference":
        "the scalar recount benchmark baseline",
    "repro.system.e2e._frame_latencies":
        "the per-frame latency scan (every co-simulated phase)",
    "repro.system.adaptive.evaluate_adaptive":
        "the adaptive-stopping batch loop (every adaptive cell)",
    "repro.system.adaptive.evaluate_rare_event":
        "the importance-sampling frame loop (every rare-event cell)",
    "repro.system.adaptive._sample_frame_states":
        "the proposal-chain dwell sampler (every importance-sampled frame)",
}

#: Float-literal values exempt from R004 (exact-representable
#: sentinels; see the module docstring).
SENTINEL_FLOATS = (0.0, 1.0)

#: Dynamic attribute/namespace accessors flagged inside hot loops.
_DYNAMIC_CALLS = frozenset({"getattr", "setattr", "hasattr", "vars",
                            "globals", "locals", "dir"})


def _is_float_typed(node: ast.AST) -> bool:
    """Best-effort: is ``node`` unmistakably a float expression?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float) and \
            node.value not in SENTINEL_FLOATS
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "float":
        return True
    if isinstance(node, ast.Attribute) and node.attr in ("inf", "nan") \
            and isinstance(node.value, ast.Name) \
            and node.value.id in ("math", "np", "numpy"):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_float_typed(node.operand)
    return False


@register
class FloatEqualityRule(Rule):
    """No ``==``/``!=`` between float-typed expressions outside the differential-test helpers.

    Exact float comparison belongs to the differential batteries in
    ``tests/``; production code compares against exact sentinels
    (``0.0``, ``1.0``) or uses ``math.isinf``/``math.isclose``.
    """

    id = "R004"
    name = "float-equality"
    roles = ("src",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag float equality comparisons in production code."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_float_typed(left) or _is_float_typed(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield context.finding(
                        self, node,
                        f"float equality {ast.unparse(left)!r} {symbol} "
                        f"{ast.unparse(right)!r}: use math.isinf/"
                        f"math.isclose (exact comparison is for the "
                        f"differential tests)")


@register
class HotLoopRule(Rule):
    """No per-iteration container literals, lambdas or dynamic attribute access in registered hot loops.

    The loops named in :data:`HOT_PATHS` are the measured floors every
    benchmark pins; allocations and dynamic dispatch inside them cost
    on every scheduled command / sampled frame.
    """

    id = "R005"
    name = "hot-loop"
    roles = ("src",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        """Flag per-iteration allocation in registered hot paths."""
        if context.module is None:
            return
        prefix = context.module + "."
        if not any(key.startswith(prefix) for key in HOT_PATHS):
            return
        for qualname, function in _walk_functions(context.tree,
                                                  context.module):
            if qualname not in HOT_PATHS:
                continue
            for node, kind in _loop_body_offenders(function):
                yield context.finding(
                    self, node,
                    f"{kind} inside a loop of hot path {qualname!r} "
                    f"({HOT_PATHS[qualname]}) — hoist it out of the "
                    f"loop")


def _walk_functions(tree: ast.Module,
                    module: str) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Yield ``(dotted qualname, node)`` for every function in a module."""
    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.FunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{child.name}"
                if isinstance(child, ast.FunctionDef):
                    yield qual, child
                yield from walk(child, qual)
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}.{child.name}")
            else:
                yield from walk(child, prefix)

    yield from walk(tree, module)


def _loop_body_offenders(
        function: ast.FunctionDef) -> Iterator[Tuple[ast.AST, str]]:
    """Offending nodes inside any loop body of ``function``, deduplicated."""
    seen: Set[int] = set()
    for loop in ast.walk(function):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        for statement in list(loop.body) + list(loop.orelse):
            for node in ast.walk(statement):
                if id(node) in seen:
                    continue
                kind = _offender_kind(node)
                if kind is not None:
                    seen.add(id(node))
                    yield node, kind


def _offender_kind(node: ast.AST) -> Optional[str]:
    """Classify one AST node as a hot-loop offender, if it is one."""
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                         ast.GeneratorExp)):
        return "comprehension"
    if isinstance(node, ast.Lambda):
        return "lambda definition"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _DYNAMIC_CALLS:
        return f"dynamic access {node.func.id}()"
    return None
