"""Repo-specific static analysis: the mechanical form of the proof
discipline.

Every claim this reproduction makes rests on invariants that used to be
enforced only by convention — vectorized paths stay bit-identical to
frozen scalar oracles, results are seed-deterministic, timing/energy
arithmetic never mixes unit families.  This package checks those
invariants on every commit with a small AST-based analyzer (stdlib
``ast`` only, no new runtime dependencies):

* :mod:`repro.analysis.base` — the rule protocol and registry;
* :mod:`repro.analysis.findings` — the :class:`~repro.analysis.findings.Finding`
  record and severities;
* :mod:`repro.analysis.runner` — file discovery, per-file analysis and
  ``# repro: noqa[RULE]`` suppression handling (with unused-suppression
  detection);
* :mod:`repro.analysis.lint` — the ``repro lint`` CLI (human and JSON
  output);
* ``rules_*`` modules — the six repo-specific rules R001–R006 (see the
  docs-site *Static analysis* page for the catalogue and rationale).

Run it as ``python -m repro lint src`` (exits non-zero on findings) or
call :func:`~repro.analysis.runner.analyze_paths` directly.
"""

from __future__ import annotations

from repro.analysis.base import Rule, all_rules, get_rules
from repro.analysis.findings import Finding
from repro.analysis.runner import analyze_paths, analyze_source

__all__ = [
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "get_rules",
]
