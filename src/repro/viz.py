"""Text rendering of mapping schemes (the paper's Fig. 1).

Renders small index spaces as grids of per-cell labels so the four
sub-figures of Fig. 1 can be regenerated and eyeballed:

* 1a — bank assignment only (diagonal pattern),
* 1b — page-tile columns,
* 1c — full bank/column/row labels without the offset,
* 1d — the same with the bank-staggered circular offset.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, Iterable, List, Sequence

from repro.interleaver.triangular import IndexSpace
from repro.mapping.optimized import OptimizedMapping

if TYPE_CHECKING:
    from repro.dram.geometry import Geometry
    from repro.system.adaptive import AdaptiveResult
    from repro.system.campaign import CampaignSummary
    from repro.system.sweep import E2ERow
    from repro.system.throughput import EnergyProvisioningPoint


def render_grid(space: IndexSpace, label: Callable[[int, int], str],
                col_width: int = 0) -> str:
    """Render ``label(i, j)`` for every cell of a 2-D index space.

    Cells outside the space (the lower-right half of a triangle) are
    left blank, matching the triangular storage array of the paper.
    """
    rows: List[List[str]] = []
    width = 0
    for i in range(space.height):
        row = []
        for j in range(space.width):
            text = label(i, j) if space.contains(i, j) else ""
            width = max(width, len(text))
            row.append(text)
        rows.append(row)
    width = max(width, col_width)
    lines = []
    for row in rows:
        lines.append(" ".join(text.ljust(width) for text in row).rstrip())
    return "\n".join(lines)


def render_banks(mapping: OptimizedMapping) -> str:
    """Fig. 1a: the diagonal bank pattern."""
    return render_grid(mapping.space, lambda i, j: f"B{mapping.bank_of(i, j)}")


def render_columns(mapping: OptimizedMapping) -> str:
    """Fig. 1b: the page-column assignment."""
    def label(i: int, j: int) -> str:
        _bank, _row, column = mapping.address_tuple(i, j)
        return f"C{column}"

    return render_grid(mapping.space, label)


def render_full(mapping: OptimizedMapping) -> str:
    """Fig. 1c / 1d: bank, column and row of every cell."""
    def label(i: int, j: int) -> str:
        bank, row, column = mapping.address_tuple(i, j)
        return f"B{bank}C{column}R{row}"

    return render_grid(mapping.space, label)


def render_figure1(space: IndexSpace, geometry: Geometry,
                   prefer_tall: bool = False) -> str:
    """All four Fig. 1 panels for a small space/geometry pair."""
    base = dict(prefer_tall=prefer_tall)
    no_offset = OptimizedMapping(space, geometry, enable_offset=False, **base)
    full = OptimizedMapping(space, geometry, **base)
    sections = [
        ("(a) Banks (diagonal rotation)", render_banks(full)),
        ("(b) Page-tile columns", render_columns(no_offset)),
        ("(c) Banks, Columns and Rows", render_full(no_offset)),
        ("(d) BCR with bank-staggered offset", render_full(full)),
    ]
    blocks = []
    for title, body in sections:
        blocks.append(f"{title}\n{body}")
    return "\n\n".join(blocks)


def render_campaign_gains(summaries: Iterable[CampaignSummary],
                          width: int = 30) -> str:
    """Interleaving gain vs. fade duration as a text chart.

    One line per campaign summary row, ordered by mean fade length:
    the bar is the pooled interleaving gain on a log10 scale (``inf``
    gains — every baseline failure rescued — fill the full width), with
    the interleaved failure rate and its 95 % Wilson interval as the
    caption.  This is the campaign analogue of the paper's Sec. I
    claim: gain should grow with fade duration until the correction
    radius saturates.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    rows = sorted(
        summaries,
        key=lambda s: (s.mean_fade_symbols, s.fade_fraction,
                       s.interleaver.triangle_n),
    )
    if not rows:
        return "(no campaign summaries)"
    # Log scale spanning gain 1 .. max finite observed (at least one
    # decade).  Sub-unity gains (interleaver saturation) render as an
    # empty bar; they must not stretch the axis for the positive rows.
    above_unity = [s.pooled_gain for s in rows
                   if 1.0 < s.pooled_gain < float("inf")]
    top = max(1.0, max((_log10(g) for g in above_unity), default=1.0))
    lines = [f"{'fade':>6s} {'frac':>7s} {'n':>4s}  "
             f"{'gain (log scale)':{width}s} {'CWER intl':>10s} {'95% CI':>21s}"]
    for summary in rows:
        gain = summary.pooled_gain
        if math.isinf(gain):
            bar = "#" * width
            label = "inf"
        else:
            filled = round(min(1.0, max(0.0, _log10(gain) / top)) * width)
            bar = "#" * filled + "-" * (width - filled)
            label = f"{gain:.1f}x"
        low, high = summary.interval_interleaved
        lines.append(
            f"{summary.mean_fade_symbols:6.0f} {summary.fade_fraction:7.4f} "
            f"{summary.interleaver.triangle_n:4d}  {bar} "
            f"{summary.failure_rate_interleaved:10.2e} "
            f"[{low:.2e},{high:.2e}] {label}"
        )
    return "\n".join(lines)


def render_adaptive_savings(results: Iterable[AdaptiveResult],
                            width: int = 30) -> str:
    """Frame savings of adaptive stopping as a text chart.

    One line per adaptive cell, ordered like the campaign chart (fade,
    fraction, triangle, seed): the bar is the fraction of the frame
    budget actually *spent* on a linear scale — a short bar means
    adaptive stopping saved most of the budget — captioned with the
    frames spent, the budget, the savings ratio and whether the CI
    target converged before the cap.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    rows = sorted(
        results,
        key=lambda r: (r.cell.channel.mean_fade_symbols,
                       r.cell.channel.stationary_bad,
                       r.cell.interleaver.triangle_n, r.cell.seed),
    )
    if not rows:
        return "(no adaptive results)"
    lines = [f"{'fade':>6s} {'frac':>7s} {'n':>4s} {'seed':>6s}  "
             f"{'frames spent / budget':{width}s} {'used':>13s} "
             f"{'saved':>7s} {'conv':>4s}"]
    for outcome in rows:
        cell = outcome.cell
        fraction = outcome.frames_used / cell.max_frames
        filled = round(min(1.0, fraction) * width)
        bar = "#" * filled + "-" * (width - filled)
        frames_text = f"{outcome.frames_used}/{cell.max_frames}"
        lines.append(
            f"{cell.channel.mean_fade_symbols:6.0f} "
            f"{cell.channel.stationary_bad:7.4f} "
            f"{cell.interleaver.triangle_n:4d} {cell.seed:6d}  {bar} "
            f"{frames_text:>13s} {outcome.frames_saved_ratio:6.1f}x "
            f"{'yes' if outcome.converged else 'cap':>4s}"
        )
    return "\n".join(lines)


def render_energy_pareto(points: Iterable[EnergyProvisioningPoint],
                         width: int = 30) -> str:
    """Bandwidth-vs-power provisioning chart (text).

    One line per :class:`~repro.system.throughput
    .EnergyProvisioningPoint`, ordered by sustained bandwidth: the bar
    is the total average power on a linear scale (the resource being
    spent), the columns give the line rate bought and its pJ/bit, and
    ``*`` flags the Pareto frontier — the points where no alternative
    (grade, mapping, channel count) delivers at least the same
    bandwidth for less power.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    rows = list(points)
    if not rows:
        return "(no provisioning points)"
    top = max(p.power_mw for p in rows)
    lines = [f"  {'DRAM':14s} {'mapping':10s} {'ch':>3s} {'Gbit/s':>8s} "
             f"{'power (linear scale)':{width}s} {'mW':>9s} {'pJ/bit':>7s}"]
    for point in rows:
        filled = round(point.power_mw / top * width) if top > 0 else 0
        bar = "#" * filled + "-" * (width - filled)
        mark = "*" if point.on_frontier else " "
        lines.append(
            f"{mark} {point.report.config_name:14s} "
            f"{point.report.mapping_name:10s} {point.channels:3d} "
            f"{point.sustained_gbit:8.1f} {bar} "
            f"{point.power_mw:9.1f} {point.pj_per_bit:7.2f}"
        )
    lines.append("(* = Pareto frontier: no cheaper way to buy at least this bandwidth)")
    return "\n".join(lines)


def render_e2e_latency(rows: Iterable[E2ERow], width: int = 30) -> str:
    """Per-frame latency-percentile chart of the e2e co-simulation table.

    Two lines per :class:`~repro.system.sweep.E2ERow` — one per DRAM
    phase: the bar spans p50 (``#``) to p99 (``+``) of the per-frame
    service time on a linear scale shared by every line, so tail
    inflation (refresh interruptions, row-miss chains of the collapsed
    mapping) is visible as the ``+`` overhang past the solid bar.  The
    columns give p50/p90/p99 in microseconds.

    Args:
        rows: :class:`~repro.system.sweep.E2ERow` sequence (one per
            configuration x mapping cell).
        width: bar width in characters.

    Raises:
        ValueError: on a non-positive ``width``.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    rows = list(rows)
    if not rows:
        return "(no e2e rows)"
    samples = []
    for row in rows:
        for phase in ("write", "read"):
            result = row.result
            pick = (result.write_latency_percentile if phase == "write"
                    else result.read_latency_percentile)
            samples.append((row, phase, pick(50), pick(90), pick(99)))
    top = max(p99 for _, _, _, _, p99 in samples)
    lines = [f"{'DRAM':14s} {'mapping':10s} {'phase':5s} "
             f"{'frame latency p50..p99':{width}s} "
             f"{'p50us':>8s} {'p90us':>8s} {'p99us':>8s}"]
    for row, phase, p50, p90, p99 in samples:
        if top > 0:
            filled = round(p50 / top * width)
            tail = max(round(p99 / top * width) - filled, 0)
        else:
            filled = tail = 0
        bar = "#" * filled + "+" * tail + "-" * max(width - filled - tail, 0)
        lines.append(
            f"{row.config_name:14s} {row.mapping_name:10s} {phase:5s} "
            f"{bar} {p50 / 1e6:8.3f} {p90 / 1e6:8.3f} {p99 / 1e6:8.3f}"
        )
    lines.append("(bar: # to p50, + to p99; shared linear scale — "
                 "the + overhang is the tail a refresh or row-miss chain adds)")
    return "\n".join(lines)


def _log10(value: float) -> float:
    return math.log10(value) if value > 0 else 0.0


def utilization_bar(value: float, width: int = 40) -> str:
    """ASCII bar for utilization tables (benchmark output)."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"utilization must be in [0, 1], got {value}")
    filled = round(value * width)
    return "#" * filled + "-" * (width - filled)


def side_by_side(blocks: Sequence[str], gap: int = 4) -> str:
    """Join multi-line blocks horizontally (small layout helper)."""
    split = [block.splitlines() for block in blocks]
    height = max(len(lines) for lines in split)
    widths = [max((len(line) for line in lines), default=0) for lines in split]
    out = []
    for row in range(height):
        parts = []
        for lines, width in zip(split, widths):
            text = lines[row] if row < len(lines) else ""
            parts.append(text.ljust(width))
        out.append((" " * gap).join(parts).rstrip())
    return "\n".join(out)
