"""Code-word framing and a t-error-correcting block-code model.

The downlink FEC is modeled at the symbol-error level: a code word of
``n`` symbols decodes correctly iff it contains at most ``t`` corrupted
symbols (the behavior of a bounded-distance decoder such as
Reed–Solomon).  This is all the paper's system context requires — the
interleaver's job is to keep the per-code-word error count under ``t``
in the presence of long fades, and the DRAM mapping's job is to make
that interleaver fast enough.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List

import numpy as np
from numpy.typing import NDArray

from repro.channel.burst_stats import errors_per_codeword, errors_per_codeword_frames


@dataclass(frozen=True)
class CodewordConfig:
    """Block-code parameters at symbol granularity.

    Attributes:
        n_symbols: code word length in symbols.
        t_correctable: maximum number of symbol errors the decoder
            corrects.
    """

    n_symbols: int
    t_correctable: int

    def __post_init__(self) -> None:
        if self.n_symbols < 1:
            raise ValueError(f"n_symbols must be >= 1, got {self.n_symbols}")
        if not 0 <= self.t_correctable < self.n_symbols:
            raise ValueError(
                f"t_correctable must be in [0, {self.n_symbols}), got {self.t_correctable}"
            )

    @property
    def correction_fraction(self) -> float:
        """Fraction of a code word the decoder can repair."""
        return self.t_correctable / self.n_symbols


@dataclass(frozen=True)
class DecodingReport:
    """Outcome of decoding a stream against an error mask.

    Attributes:
        codewords: full code words decoded.
        failed: code words with more than ``t`` errors.
        corrected_symbols: symbol errors removed by the decoder.
        residual_symbol_errors: symbol errors left in failed words.
    """

    codewords: int
    failed: int
    corrected_symbols: int
    residual_symbol_errors: int

    @property
    def codeword_error_rate(self) -> float:
        """Fraction of decoded code words that failed."""
        if self.codewords == 0:
            return 0.0
        return self.failed / self.codewords

    @property
    def frame_ok(self) -> bool:
        """Whether every code word decoded (no failures at all)."""
        return self.failed == 0


def report_from_counts(counts: NDArray[Any],
                       config: CodewordConfig) -> DecodingReport:
    """Aggregate decoding report from per-code-word error counts.

    The single home of the bounded-distance failure criterion
    (``count > t``) and the corrected/residual split — every decode
    entry point (scalar, batched, campaign hot path) folds through
    here, so the criterion cannot silently diverge between paths.

    Args:
        counts: integer error counts, one entry per code word (any
            shape; all entries are pooled into one report).
        config: code parameters.
    """
    failed = counts > config.t_correctable
    residual = int(counts[failed].sum())
    return DecodingReport(
        codewords=int(counts.size),
        failed=int(failed.sum()),
        corrected_symbols=int(counts.sum()) - residual,
        residual_symbol_errors=residual,
    )


def decode_mask(mask: NDArray[np.bool_],
                config: CodewordConfig) -> DecodingReport:
    """Decode an error mask: which code words survive?

    Args:
        mask: boolean symbol-error mask in *code word order* (i.e.
            after deinterleaving at the receiver).
        config: code parameters.
    """
    return report_from_counts(errors_per_codeword(mask, config.n_symbols), config)


def decode_masks(masks: NDArray[np.bool_],
                 config: CodewordConfig) -> List[DecodingReport]:
    """Batched :func:`decode_mask` over stacked frame masks.

    Args:
        masks: boolean array of shape ``(frames, symbols)``, each row a
            symbol-error mask in code word order.
        config: code parameters.

    Returns:
        One :class:`DecodingReport` per frame, bit-identical to calling
        :func:`decode_mask` on each row — the per-code-word error
        counting runs once over the whole 2-D batch, and each row folds
        through the same :func:`report_from_counts` criterion as every
        other decode path.
    """
    counts = errors_per_codeword_frames(masks, config.n_symbols)
    return [report_from_counts(row, config) for row in counts]


def random_burst_tolerance(config: CodewordConfig, interleaver_depth: int) -> int:
    """Longest channel burst a perfect depth-``d`` interleaver absorbs.

    A burst of ``L`` consecutive channel symbols lands at most
    ``ceil(L / d)`` errors in any one code word after deinterleaving
    with depth ``d``; the decoder survives while that stays <= ``t``.
    """
    if interleaver_depth < 1:
        raise ValueError(f"interleaver_depth must be >= 1, got {interleaver_depth}")
    return config.t_correctable * interleaver_depth
