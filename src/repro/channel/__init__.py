"""Optical LEO downlink channel models (burst errors, FEC framing)."""

from repro.channel.burst_stats import (
    BurstProfile,
    burst_profile,
    codeword_failure_rate,
    dispersion_gain,
    errors_per_codeword,
    run_length_histogram,
    worst_window_errors,
)
from repro.channel.codeword import (
    CodewordConfig,
    DecodingReport,
    decode_mask,
    random_burst_tolerance,
)
from repro.channel.gilbert_elliott import (
    BAD,
    GOOD,
    GilbertElliottChannel,
    GilbertElliottParams,
    coherence_params,
)

__all__ = [
    "BAD",
    "BurstProfile",
    "CodewordConfig",
    "DecodingReport",
    "GOOD",
    "GilbertElliottChannel",
    "GilbertElliottParams",
    "burst_profile",
    "codeword_failure_rate",
    "coherence_params",
    "decode_mask",
    "dispersion_gain",
    "errors_per_codeword",
    "random_burst_tolerance",
    "run_length_histogram",
    "worst_window_errors",
]
