"""Optical LEO downlink channel models (burst errors, FEC framing)."""

from __future__ import annotations

from repro.channel.burst_stats import (
    BurstProfile,
    FrameBurstArrays,
    burst_profile,
    burst_profiles_from_positions,
    codeword_failure_rate,
    dispersion_gain,
    errors_per_codeword,
    errors_per_codeword_frames,
    frame_burst_arrays,
    frame_burst_profiles,
    run_length_histogram,
    worst_window_errors,
)
from repro.channel.codeword import (
    CodewordConfig,
    DecodingReport,
    decode_mask,
    decode_masks,
    random_burst_tolerance,
    report_from_counts,
)
from repro.channel.gilbert_elliott import (
    BAD,
    GOOD,
    GilbertElliottChannel,
    GilbertElliottParams,
    coherence_params,
)

__all__ = [
    "BAD",
    "BurstProfile",
    "FrameBurstArrays",
    "CodewordConfig",
    "DecodingReport",
    "GOOD",
    "GilbertElliottChannel",
    "GilbertElliottParams",
    "burst_profile",
    "burst_profiles_from_positions",
    "codeword_failure_rate",
    "coherence_params",
    "decode_mask",
    "decode_masks",
    "dispersion_gain",
    "errors_per_codeword",
    "errors_per_codeword_frames",
    "frame_burst_arrays",
    "frame_burst_profiles",
    "random_burst_tolerance",
    "report_from_counts",
    "run_length_histogram",
    "worst_window_errors",
]
