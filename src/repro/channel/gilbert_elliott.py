"""Gilbert–Elliott burst-error channel.

Free-space optical downlinks from LEO satellites suffer long error
bursts: atmospheric scintillation fades the received power for spans
on the order of the channel coherence time (> 2 ms, i.e. hundreds of
kilobits at 100 Gbit/s).  The standard tractable model for such a
channel is the two-state Gilbert–Elliott Markov chain:

* **good** state: symbols are hit independently with probability
  ``p_good`` (near zero);
* **bad** state (deep fade): symbols are hit with probability
  ``p_bad`` (large);
* per-symbol transition probabilities ``p_g2b`` and ``p_b2g`` set the
  expected fade spacing (``1/p_g2b``) and fade duration (``1/p_b2g``).

The chain's stationary bad-state probability and average symbol error
rate are exposed in closed form for test cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

GOOD = 0
BAD = 1


@dataclass(frozen=True)
class GilbertElliottParams:
    """Channel parameters.

    Attributes:
        p_g2b: per-symbol probability of entering a fade.
        p_b2g: per-symbol probability of leaving a fade (mean fade
            length is ``1 / p_b2g`` symbols).
        p_bad: symbol error probability inside a fade.
        p_good: symbol error probability outside fades.
    """

    p_g2b: float
    p_b2g: float
    p_bad: float = 0.5
    p_good: float = 0.0

    def __post_init__(self) -> None:
        for name in ("p_g2b", "p_b2g"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be in (0, 1], got {value}")
        for name in ("p_bad", "p_good"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def stationary_bad(self) -> float:
        """Stationary probability of the bad state."""
        return self.p_g2b / (self.p_g2b + self.p_b2g)

    @property
    def mean_fade_symbols(self) -> float:
        """Expected fade duration in symbols."""
        return 1.0 / self.p_b2g

    @property
    def mean_gap_symbols(self) -> float:
        """Expected good-state run length in symbols."""
        return 1.0 / self.p_g2b

    @property
    def average_symbol_error_rate(self) -> float:
        """Long-run symbol error probability."""
        bad = self.stationary_bad
        return bad * self.p_bad + (1.0 - bad) * self.p_good


def coherence_params(
    symbols_per_coherence_time: float,
    fade_fraction: float,
    p_bad: float = 0.5,
    p_good: float = 0.0,
) -> GilbertElliottParams:
    """Derive chain parameters from physical link numbers.

    Args:
        symbols_per_coherence_time: mean fade duration in symbols
            (channel coherence time x symbol rate; the paper quotes
            > 2 ms coherence at > 100 Gbit/s).
        fade_fraction: long-run fraction of time spent in a fade.
        p_bad: symbol error probability inside fades.
        p_good: symbol error probability outside fades.
    """
    if symbols_per_coherence_time <= 1.0:
        raise ValueError("coherence time must exceed one symbol")
    if not 0.0 < fade_fraction < 1.0:
        raise ValueError(f"fade_fraction must be in (0, 1), got {fade_fraction}")
    p_b2g = 1.0 / symbols_per_coherence_time
    # stationary_bad = p_g2b / (p_g2b + p_b2g) = fade_fraction
    p_g2b = fade_fraction * p_b2g / (1.0 - fade_fraction)
    return GilbertElliottParams(p_g2b=p_g2b, p_b2g=p_b2g, p_bad=p_bad, p_good=p_good)


class GilbertElliottChannel:
    """Samples error masks from the Gilbert–Elliott chain.

    The state sequence is generated vectorized: state dwell times are
    geometric, so the chain is simulated as alternating geometric run
    lengths rather than per-symbol coin flips.
    """

    def __init__(self, params: GilbertElliottParams,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.params = params
        self.rng = rng or np.random.default_rng()
        self._state = BAD if self.rng.random() < params.stationary_bad else GOOD
        self._batch_buffers: Optional[Tuple[Tuple[int, int], NDArray[np.bool_], NDArray[np.float64]]] = None  # (shape, fades, draws) scratch reuse

    def _fill_state_row(self, row: NDArray[np.bool_]) -> None:
        """Fill ``row`` with one frame's fade mask, advancing the chain.

        This is the sampling core shared by the scalar and the batched
        entry points: the draw order (one geometric per dwell, truncated
        dwells redrawn next frame) is part of the reproducibility
        contract, so both paths must run exactly this loop.
        """
        count = row.size
        params = self.params
        rng = self.rng
        position = 0
        state = self._state
        while position < count:
            p_leave = params.p_b2g if state == BAD else params.p_g2b
            run = rng.geometric(p_leave)
            end = min(position + run, count)
            row[position:end] = state == BAD
            if position + run > count:
                # Dwell continues into the next call.
                break
            position = end
            state = BAD if state == GOOD else GOOD
        self._state = state

    def state_mask(self, count: int) -> NDArray[np.bool_]:
        """Boolean array: ``True`` where the channel is in a fade."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        mask = np.empty(count, dtype=bool)
        self._fill_state_row(mask)
        return mask

    def state_masks(self, count: int, frames: int) -> NDArray[np.bool_]:
        """Fade masks for ``frames`` consecutive frames, shape ``(frames, count)``.

        Row ``f`` is bit-identical to the ``f``-th sequential
        :meth:`state_mask` call on the same generator state: the chain
        (and its dwell carry-over) continues across rows exactly as it
        does across calls.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if frames < 0:
            raise ValueError(f"frames must be >= 0, got {frames}")
        masks = np.empty((frames, count), dtype=bool)
        for f in range(frames):
            self._fill_state_row(masks[f])
        return masks

    def error_mask(self, count: int) -> NDArray[np.bool_]:
        """Boolean array: ``True`` where a symbol is corrupted."""
        params = self.params
        fades = self.state_mask(count)
        draws = self.rng.random(count)
        probabilities = np.where(fades, params.p_bad, params.p_good)
        errors: NDArray[np.bool_] = draws < probabilities
        return errors

    def _sample_batch(
            self, count: int,
            frames: int) -> Tuple[NDArray[np.bool_], NDArray[np.float64]]:
        """Fade masks and uniform draws for a frame batch (shared core).

        RNG consumption is frame-sequential — geometric dwells, then the
        frame's uniforms, identical to per-frame :meth:`error_mask`
        calls — which is what makes the batched entry points
        bit-identical to the scalar ones.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if frames < 0:
            raise ValueError(f"frames must be >= 0, got {frames}")
        # Scratch buffers are reused across same-shaped batches (the
        # chunk loop of a campaign cell): refilling warm pages is much
        # cheaper than faulting in fresh ones every chunk.  They never
        # escape — every public entry point returns derived arrays.
        shape = (frames, count)
        if self._batch_buffers is None or self._batch_buffers[0] != shape:
            self._batch_buffers = (
                shape,
                np.empty(shape, dtype=bool),
                np.empty(shape, dtype=np.float64),
            )
        _, fades, draws = self._batch_buffers
        for f in range(frames):
            self._fill_state_row(fades[f])
            if count:
                self.rng.random(out=draws[f])
        return fades, draws

    def _combine_errors(self, fades: NDArray[np.bool_],
                        draws: NDArray[np.float64]) -> NDArray[np.bool_]:
        """Error mask from fade mask + uniforms, in boolean space.

        Same predicate as error_mask's ``draws < where(fades, p_bad,
        p_good)``, but combined without the float64 probability array —
        that would be the largest temporary of the whole batch, an 8x
        wider memory stream than the bool masks.
        """
        params = self.params
        errors = np.less(draws, params.p_bad)
        errors &= fades
        if params.p_good > 0.0:
            good_hits = np.less(draws, params.p_good)
            good_hits &= ~fades
            errors |= good_hits
        return errors

    def error_masks(self, count: int, frames: int) -> NDArray[np.bool_]:
        """Error masks for ``frames`` consecutive frames, shape ``(frames, count)``.

        The batched form of :meth:`error_mask`: row ``f`` is
        bit-identical to the ``f``-th sequential :meth:`error_mask` call
        from the same generator state (property-tested in
        ``tests/channel/test_batched_channel.py``), while the threshold
        comparison runs once over the whole 2-D batch.
        """
        fades, draws = self._sample_batch(count, frames)
        return self._combine_errors(fades, draws)

    def error_positions(
            self, count: int,
            frames: int) -> Tuple[NDArray[Any], NDArray[Any]]:
        """Sparse coordinates of corrupted symbols across a frame batch.

        Returns ``(frame_idx, sym_idx)`` arrays in row-major order,
        exactly ``np.nonzero(self.error_masks(count, frames))`` from the
        same generator state — but when ``p_good == 0`` the uniforms are
        only compared *at fade positions*, so the per-symbol cost of the
        whole error stage collapses to the uniform generation itself.
        This is the campaign engine's channel entry point.
        """
        fades, draws = self._sample_batch(count, frames)
        params = self.params
        if params.p_good == 0.0:
            frame_idx, sym_idx = np.nonzero(fades)
            hits = draws[frame_idx, sym_idx] < params.p_bad
            return frame_idx[hits], sym_idx[hits]
        frame_idx, sym_idx = np.nonzero(self._combine_errors(fades, draws))
        return frame_idx, sym_idx

    def corrupt(self, symbols: NDArray[Any],
                bits_per_symbol: int = 3) -> NDArray[Any]:
        """Apply the channel to a symbol stream.

        Corrupted symbols are XOR-flipped with a uniformly random
        non-zero pattern, guaranteeing the symbol value changes.
        """
        if bits_per_symbol < 1:
            raise ValueError(f"bits_per_symbol must be >= 1, got {bits_per_symbol}")
        mask = self.error_mask(symbols.size)
        flips = self.rng.integers(1, 1 << bits_per_symbol, size=symbols.size,
                                  dtype=symbols.dtype if symbols.dtype.kind == "u" else np.uint16)
        corrupted = symbols.copy()
        corrupted[mask] ^= flips[mask]
        return corrupted
