"""Burst-error statistics.

Quantifies how bursty an error mask is and how well an interleaver
dispersed it — the property that motivates the whole paper.  The key
metric is the distribution of errors *per code word*: a burst channel
without interleaving concentrates errors in few code words (overwhelming
the code's correction radius ``t``), while a good interleaver spreads
the same number of errors almost uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass(frozen=True)
class BurstProfile:
    """Run-length view of an error mask.

    Attributes:
        total_symbols: mask length.
        error_symbols: number of corrupted symbols.
        burst_count: number of maximal error runs.
        max_burst: longest error run.
        mean_burst: average error run length (0 when no errors).
    """

    total_symbols: int
    error_symbols: int
    burst_count: int
    max_burst: int
    mean_burst: float

    @property
    def symbol_error_rate(self) -> float:
        if self.total_symbols == 0:
            return 0.0
        return self.error_symbols / self.total_symbols


def burst_profile(mask: np.ndarray) -> BurstProfile:
    """Compute the :class:`BurstProfile` of a boolean error mask."""
    mask = np.asarray(mask, dtype=bool)
    total = int(mask.size)
    errors = int(mask.sum())
    if errors == 0:
        return BurstProfile(total, 0, 0, 0, 0.0)
    padded = np.concatenate(([False], mask, [False]))
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    starts = changes[0::2]
    ends = changes[1::2]
    lengths = ends - starts
    return BurstProfile(
        total_symbols=total,
        error_symbols=errors,
        burst_count=int(lengths.size),
        max_burst=int(lengths.max()),
        mean_burst=float(lengths.mean()),
    )


def run_length_histogram(mask: np.ndarray) -> Dict[int, int]:
    """Histogram of error-run lengths in a boolean mask."""
    mask = np.asarray(mask, dtype=bool)
    if not mask.any():
        return {}
    padded = np.concatenate(([False], mask, [False]))
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    lengths = changes[1::2] - changes[0::2]
    values, counts = np.unique(lengths, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def errors_per_codeword(mask: np.ndarray, codeword_symbols: int) -> np.ndarray:
    """Number of corrupted symbols in each full code word.

    Args:
        mask: boolean error mask over the (deinterleaved) symbol
            stream.
        codeword_symbols: symbols per code word; a trailing partial
            code word is ignored.
    """
    if codeword_symbols < 1:
        raise ValueError(f"codeword_symbols must be >= 1, got {codeword_symbols}")
    mask = np.asarray(mask, dtype=bool)
    full = mask.size // codeword_symbols
    if full == 0:
        return np.zeros(0, dtype=np.int64)
    return mask[: full * codeword_symbols].reshape(full, codeword_symbols).sum(axis=1)


def codeword_failure_rate(mask: np.ndarray, codeword_symbols: int,
                          correctable: int) -> float:
    """Fraction of code words with more than ``correctable`` errors."""
    counts = errors_per_codeword(mask, codeword_symbols)
    if counts.size == 0:
        return 0.0
    return float((counts > correctable).mean())


def dispersion_gain(raw_mask: np.ndarray, deinterleaved_mask: np.ndarray,
                    codeword_symbols: int, correctable: int) -> float:
    """Ratio of code-word failure rates without/with interleaving.

    Values ``> 1`` mean the interleaver rescued code words; ``inf``
    means interleaving eliminated all failures that the raw channel
    caused.
    """
    raw = codeword_failure_rate(raw_mask, codeword_symbols, correctable)
    spread = codeword_failure_rate(deinterleaved_mask, codeword_symbols, correctable)
    if spread == 0.0:
        return float("inf") if raw > 0.0 else 1.0
    return raw / spread


def worst_window_errors(mask: np.ndarray, window: int) -> int:
    """Maximum number of errors in any sliding window of given size."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    mask = np.asarray(mask, dtype=np.int64)
    if mask.size < window:
        return int(mask.sum())
    cumulative = np.concatenate(([0], np.cumsum(mask)))
    return int((cumulative[window:] - cumulative[:-window]).max())


def spread_positions(mask: np.ndarray) -> List[int]:
    """Indices of corrupted symbols (small helper for tests/examples)."""
    return np.flatnonzero(np.asarray(mask, dtype=bool)).tolist()
