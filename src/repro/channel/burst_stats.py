"""Burst-error statistics.

Quantifies how bursty an error mask is and how well an interleaver
dispersed it — the property that motivates the whole paper.  The key
metric is the distribution of errors *per code word*: a burst channel
without interleaving concentrates errors in few code words (overwhelming
the code's correction radius ``t``), while a good interleaver spreads
the same number of errors almost uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np
from numpy.typing import NDArray


@dataclass(frozen=True)
class BurstProfile:
    """Run-length view of an error mask.

    Attributes:
        total_symbols: mask length.
        error_symbols: number of corrupted symbols.
        burst_count: number of maximal error runs.
        max_burst: longest error run.
        mean_burst: average error run length (0 when no errors).
    """

    total_symbols: int
    error_symbols: int
    burst_count: int
    max_burst: int
    mean_burst: float

    @property
    def symbol_error_rate(self) -> float:
        """Fraction of observed symbols that were corrupted."""
        if self.total_symbols == 0:
            return 0.0
        return self.error_symbols / self.total_symbols


def burst_profile(mask: NDArray[np.bool_]) -> BurstProfile:
    """Compute the :class:`BurstProfile` of a boolean error mask."""
    mask = np.asarray(mask, dtype=bool)
    total = int(mask.size)
    errors = int(mask.sum())
    if errors == 0:
        return BurstProfile(total, 0, 0, 0, 0.0)
    padded = np.concatenate(([False], mask, [False]))
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    starts = changes[0::2]
    ends = changes[1::2]
    lengths = ends - starts
    return BurstProfile(
        total_symbols=total,
        error_symbols=errors,
        burst_count=int(lengths.size),
        max_burst=int(lengths.max()),
        mean_burst=float(lengths.mean()),
    )


def run_length_histogram(mask: NDArray[np.bool_]) -> Dict[int, int]:
    """Histogram of error-run lengths in a boolean mask."""
    mask = np.asarray(mask, dtype=bool)
    if not mask.any():
        return {}
    padded = np.concatenate(([False], mask, [False]))
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    lengths = changes[1::2] - changes[0::2]
    values, counts = np.unique(lengths, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def errors_per_codeword(mask: NDArray[np.bool_],
                        codeword_symbols: int) -> NDArray[Any]:
    """Number of corrupted symbols in each full code word.

    Args:
        mask: boolean error mask over the (deinterleaved) symbol
            stream.
        codeword_symbols: symbols per code word; a trailing partial
            code word is ignored.
    """
    if codeword_symbols < 1:
        raise ValueError(f"codeword_symbols must be >= 1, got {codeword_symbols}")
    mask = np.asarray(mask, dtype=bool)
    full = mask.size // codeword_symbols
    if full == 0:
        return np.zeros(0, dtype=np.int64)
    counts: NDArray[Any] = mask[: full * codeword_symbols].reshape(
        full, codeword_symbols).sum(axis=1)
    return counts


def errors_per_codeword_frames(masks: NDArray[np.bool_],
                               codeword_symbols: int) -> NDArray[Any]:
    """Batched :func:`errors_per_codeword` over stacked frame masks.

    Args:
        masks: boolean array of shape ``(frames, symbols)``.
        codeword_symbols: symbols per code word; a trailing partial
            code word in each frame is ignored.

    Returns:
        ``int64`` array of shape ``(frames, full_codewords)``; row ``f``
        equals ``errors_per_codeword(masks[f], codeword_symbols)``.
    """
    if codeword_symbols < 1:
        raise ValueError(f"codeword_symbols must be >= 1, got {codeword_symbols}")
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise ValueError(f"masks must be 2-D (frames, symbols), got shape {masks.shape}")
    frames, symbols = masks.shape
    full = symbols // codeword_symbols
    if full == 0:
        return np.zeros((frames, 0), dtype=np.int64)
    trimmed = masks[:, : full * codeword_symbols]
    counts: NDArray[Any] = trimmed.reshape(
        frames, full, codeword_symbols).sum(axis=2, dtype=np.int64)
    return counts


def frame_burst_profiles(masks: NDArray[np.bool_]) -> List[BurstProfile]:
    """Per-frame :class:`BurstProfile` of stacked masks, in one pass.

    Rows of ``masks`` are independent frames: a burst never spans two
    frames.  Entry ``f`` is bit-identical to ``burst_profile(masks[f])``;
    the run-length analysis works on the sparse error positions, so the
    cost beyond one ``nonzero`` scan grows with the number of errors,
    not the mask size (burst channels of interest are sparse).
    """
    masks = np.asarray(masks, dtype=bool)
    if masks.ndim != 2:
        raise ValueError(f"masks must be 2-D (frames, symbols), got shape {masks.shape}")
    frame_idx, sym_idx = np.nonzero(masks)
    return burst_profiles_from_positions(frame_idx, sym_idx,
                                         masks.shape[0], masks.shape[1])


@dataclass(frozen=True)
class FrameBurstArrays:
    """Columnar per-frame burst statistics of an error-mask batch.

    The array form of a list of :class:`BurstProfile` — what the
    campaign hot path aggregates without building per-frame objects.
    Attributes are indexed by frame:

    Attributes:
        symbols: mask length common to all frames.
        error_counts: corrupted symbols per frame.
        burst_counts: maximal error runs per frame.
        max_lengths: longest error run per frame.
        mean_lengths: average error run length per frame (0 where the
            frame has no bursts).
    """

    symbols: int
    error_counts: NDArray[Any]
    burst_counts: NDArray[Any]
    max_lengths: NDArray[Any]
    mean_lengths: NDArray[Any]

    @property
    def frames(self) -> int:
        """Number of frames covered by the chunk."""
        return self.error_counts.size

    def profiles(self) -> List[BurstProfile]:
        """Expand to per-frame :class:`BurstProfile` objects."""
        return [
            BurstProfile(
                total_symbols=self.symbols,
                error_symbols=int(self.error_counts[f]),
                burst_count=int(self.burst_counts[f]),
                max_burst=int(self.max_lengths[f]),
                mean_burst=float(self.mean_lengths[f]),
            )
            for f in range(self.frames)
        ]


def frame_burst_arrays(frame_idx: NDArray[Any], sym_idx: NDArray[Any],
                       frames: int, symbols: int) -> FrameBurstArrays:
    """Per-frame burst statistics from sorted sparse error positions.

    Args:
        frame_idx, sym_idx: coordinates of the ``True`` cells of a
            ``(frames, symbols)`` error-mask batch, in row-major order
            (exactly what ``np.nonzero`` yields).
        frames, symbols: batch shape.
    """
    error_counts = np.bincount(frame_idx, minlength=frames)
    if frame_idx.size == 0:
        zeros = np.zeros(frames, dtype=np.int64)
        return FrameBurstArrays(symbols, error_counts, zeros, zeros,
                                np.zeros(frames, dtype=np.float64))
    # Flatten with one separator slot per frame so runs cannot bridge
    # frames; a burst is then a maximal span of consecutive flat
    # positions, found by one gap scan over the sparse coordinates.
    flat = frame_idx * (symbols + 1) + sym_idx
    is_start = np.empty(flat.size, dtype=bool)
    is_start[0] = True
    np.not_equal(flat[1:], flat[:-1] + 1, out=is_start[1:])
    start_slots = np.flatnonzero(is_start)
    lengths = np.diff(np.append(start_slots, flat.size))
    run_frames = frame_idx[start_slots]
    burst_counts = np.bincount(run_frames, minlength=frames)
    length_sums = np.bincount(run_frames, weights=lengths, minlength=frames)
    max_lengths = np.zeros(frames, dtype=np.int64)
    np.maximum.at(max_lengths, run_frames, lengths)
    mean_lengths = np.divide(length_sums, burst_counts,
                             out=np.zeros(frames, dtype=np.float64),
                             where=burst_counts > 0)
    return FrameBurstArrays(symbols, error_counts, burst_counts, max_lengths,
                            mean_lengths)


def burst_profiles_from_positions(frame_idx: NDArray[Any],
                                  sym_idx: NDArray[Any], frames: int,
                                  symbols: int) -> List[BurstProfile]:
    """Per-frame burst profiles from sorted sparse error positions."""
    return frame_burst_arrays(frame_idx, sym_idx, frames, symbols).profiles()


def codeword_failure_rate(mask: NDArray[np.bool_], codeword_symbols: int,
                          correctable: int) -> float:
    """Fraction of code words with more than ``correctable`` errors."""
    counts = errors_per_codeword(mask, codeword_symbols)
    if counts.size == 0:
        return 0.0
    return float((counts > correctable).mean())


def dispersion_gain(raw_mask: NDArray[np.bool_],
                    deinterleaved_mask: NDArray[np.bool_],
                    codeword_symbols: int, correctable: int) -> float:
    """Ratio of code-word failure rates without/with interleaving.

    Values ``> 1`` mean the interleaver rescued code words; ``inf``
    means interleaving eliminated all failures that the raw channel
    caused.
    """
    raw = codeword_failure_rate(raw_mask, codeword_symbols, correctable)
    spread = codeword_failure_rate(deinterleaved_mask, codeword_symbols, correctable)
    if spread == 0.0:
        return float("inf") if raw > 0.0 else 1.0
    return raw / spread


def worst_window_errors(mask: NDArray[np.bool_], window: int) -> int:
    """Maximum number of errors in any sliding window of given size."""
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    hits = np.asarray(mask, dtype=np.int64)
    if hits.size < window:
        return int(hits.sum())
    cumulative = np.concatenate(([0], np.cumsum(hits)))
    return int((cumulative[window:] - cumulative[:-window]).max())


def spread_positions(mask: NDArray[np.bool_]) -> List[int]:
    """Indices of corrupted symbols (small helper for tests/examples)."""
    positions: List[int] = np.flatnonzero(
        np.asarray(mask, dtype=bool)).tolist()
    return positions
