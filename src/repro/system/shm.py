"""Zero-copy columnar chunk passing for the process pool.

The PR 1 columnar address chunk — equal-length int64 ``(banks, rows,
columns)`` arrays — is the request currency of every vectorized path.
When a pre-materialized chunk stream has to cross a process boundary
(a chunk-bearing :class:`~repro.system.parallel.PhaseTask`), ordinary
pickling copies every payload byte twice: once serializing in the
parent, once deserializing in the worker.  :class:`SharedChunks`
instead materializes the stream once into a single
:mod:`multiprocessing.shared_memory` segment; pickling the object
ships only the segment *name* plus the chunk offset table, and the
worker reconstructs NumPy views directly into the shared pages — no
payload bytes move at all.

Fallback: when shared memory is unavailable (no ``/dev/shm``, a
sandboxed interpreter, exotic platforms) construction silently keeps
the payload inline and pickles it by value — slower, bit-identical.
``tests/system/test_shm.py`` pins both the zero-copy round trip and
the fallback against the ``--jobs=1`` serial path.

Lifecycle: the *creator* owns the segment and must call
:meth:`SharedChunks.unlink` (or use the object as a context manager)
once every consumer is done; *attachers* (unpickled copies) only ever
detach.  Attaching in a process with its *own* ``resource_tracker``
daemon (spawn-started workers) deliberately unregisters the segment —
otherwise that tracker would unlink the creator's live segment on
worker exit.  Fork-started workers share the creator's tracker and are
left alone (see ``_attach_segment``).
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

#: One columnar chunk as consumed by the controller intake.
Chunk = Tuple[Any, Any, Any]


def _concatenate(chunks: Iterable[Chunk]) -> Tuple[Any, Tuple[int, ...]]:
    """Flatten a chunk stream into one ``(3, total)`` int64 array.

    Returns the array plus the chunk boundary offsets (``bounds[k]`` to
    ``bounds[k+1]`` is chunk ``k``), preserving chunk granularity so
    the reconstructed stream is byte-for-byte the original one.

    Raises:
        ValueError: when a chunk's three columns differ in length.
    """
    parts: List[Tuple[Any, Any, Any]] = []
    bounds = [0]
    total = 0
    for banks, rows, columns in chunks:
        banks = np.ascontiguousarray(banks, dtype=np.int64)
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        columns = np.ascontiguousarray(columns, dtype=np.int64)
        if not (banks.shape == rows.shape == columns.shape) or banks.ndim != 1:
            raise ValueError(
                f"chunk columns must be equal-length 1-D arrays, got shapes "
                f"{banks.shape}/{rows.shape}/{columns.shape}")
        parts.append((banks, rows, columns))
        total += int(banks.shape[0])
        bounds.append(total)
    data = np.empty((3, total), dtype=np.int64)
    for k, (banks, rows, columns) in enumerate(parts):
        start, stop = bounds[k], bounds[k + 1]
        data[0, start:stop] = banks
        data[1, start:stop] = rows
        data[2, start:stop] = columns
    return data, tuple(bounds)


def _create_segment(nbytes: int) -> Optional[Any]:
    """A fresh shared-memory segment, or ``None`` when unavailable."""
    try:
        from multiprocessing import shared_memory

        return shared_memory.SharedMemory(create=True, size=max(1, nbytes))
    except (ImportError, OSError, PermissionError):
        return None


def _tracker_pid() -> Optional[int]:
    """PID of this process's resource-tracker daemon, if discoverable."""
    try:
        from multiprocessing import resource_tracker
    except ImportError:
        return None
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    pid = getattr(tracker, "_pid", None)
    return pid if isinstance(pid, int) else None


def _attach_segment(name: str, creator_tracker: Optional[int]) -> Any:
    """Attach an existing segment without adopting its ownership.

    CPython's ``resource_tracker`` treats any attachment as ownership:
    it registers the segment and unlinks it when the tracker exits —
    which would destroy the creator's live segment once a *spawned*
    worker (own tracker daemon) finishes.  Those attachments are
    unregistered here.  Fork-started workers and same-process round
    trips share the *creator's* tracker daemon, where the registration
    is a set-add no-op and the creator's later unlink balances it —
    unregistering there would strip the creator's own entry, so the
    tracker PIDs are compared and shared-tracker attaches are left
    alone.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name)
    own_tracker = _tracker_pid()
    if own_tracker is not None and own_tracker != creator_tracker:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(
                getattr(segment, "_name", segment.name), "shared_memory")
        except (ImportError, AttributeError, KeyError, ValueError):
            pass  # tracker variants differ across platforms; leak-warning only
    return segment


class SharedChunks:
    """A picklable columnar chunk stream backed by shared memory.

    Construction drains ``chunks`` into one flat int64 buffer.  When a
    shared-memory segment can be created the buffer lives there and
    pickling is O(metadata); otherwise the buffer stays inline and
    pickling copies it (the fallback).  Either way,
    :meth:`chunks` reproduces the original stream exactly: same chunk
    boundaries, same values, int64 columns.

    Args:
        chunks: the ``(banks, rows, columns)`` chunk stream to capture.
        prefer_shared: set ``False`` to force the inline (pickle)
            payload — used by tests and as an escape hatch.
    """

    def __init__(self, chunks: Iterable[Chunk],
                 prefer_shared: bool = True) -> None:
        data, bounds = _concatenate(chunks)
        self._bounds = bounds
        self._segment: Optional[Any] = None
        self._owner = False
        if prefer_shared:
            segment = _create_segment(data.nbytes)
            if segment is not None:
                view = np.ndarray(data.shape, dtype=np.int64,
                                  buffer=segment.buf)
                view[:] = data
                data = view
                self._segment = segment
                self._owner = True
        self._data: Optional[Any] = data

    @property
    def shared(self) -> bool:
        """Whether the payload lives in a shared-memory segment."""
        return self._segment is not None

    @property
    def total_requests(self) -> int:
        """Number of requests across all chunks."""
        return self._bounds[-1]

    @property
    def num_chunks(self) -> int:
        """Number of chunks the stream reproduces."""
        return len(self._bounds) - 1

    def chunks(self) -> Iterator[Chunk]:
        """The captured stream, chunk by chunk, as zero-copy views.

        The yielded arrays alias the backing buffer — consume them
        before calling :meth:`release`/:meth:`unlink` (the controller
        intake copies on entry, so a completed ``run_phase`` holds no
        references).
        """
        data = self._data
        if data is None:
            raise ValueError("SharedChunks used after release()")
        for k in range(self.num_chunks):
            start, stop = self._bounds[k], self._bounds[k + 1]
            yield data[0, start:stop], data[1, start:stop], data[2, start:stop]

    def release(self) -> None:
        """Detach an unpickled (attacher) copy from the segment.

        A deliberate no-op on the creator — the serial ``--jobs=1``
        path consumes the *original* object, which must survive until
        the caller's :meth:`unlink`.  Safe to call multiple times.
        """
        if self._owner:
            return
        segment = self._segment
        self._segment = None
        self._data = None
        if segment is not None:
            try:
                segment.close()
            except BufferError:
                pass  # a live view still aliases the buffer; the
                # mapping is reclaimed at process exit instead

    def unlink(self) -> None:
        """Destroy the segment (creator-side cleanup; inline: no-op)."""
        segment = self._segment
        self._segment = None
        self._data = None
        if segment is None:
            return
        try:
            segment.close()
        except BufferError:
            pass
        if self._owner:
            self._owner = False
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):
                pass  # already gone (double unlink, platform cleanup)

    def __enter__(self) -> "SharedChunks":
        """Context-manager entry: the stream itself."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        """Context-manager exit: creator unlinks, attacher detaches."""
        self.unlink()

    # -- pickling ------------------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        """Segment name + offsets in shared mode, full payload inline."""
        if self._data is None:
            raise pickle.PicklingError("cannot pickle a released SharedChunks")
        state: Dict[str, Any] = {"bounds": self._bounds}
        if self._segment is not None:
            state["segment"] = self._segment.name
            state["tracker"] = _tracker_pid()
        else:
            state["payload"] = self._data.tobytes()
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        """Reconstruct as an attacher (shared) or by value (inline)."""
        self._bounds = tuple(state["bounds"])
        shape = (3, self._bounds[-1])
        self._owner = False
        if "segment" in state:
            self._segment = _attach_segment(state["segment"],
                                            state.get("tracker"))
            self._data = np.ndarray(shape, dtype=np.int64,
                                    buffer=self._segment.buf)
        else:
            self._segment = None
            self._data = np.frombuffer(
                state["payload"], dtype=np.int64).reshape(shape).copy()
