"""End-to-end downlink -> DRAM co-simulation (closing the paper's loop).

The paper's core claim is that a two-stage interleaver can be
deinterleaved *in DRAM* at line rate.  Before this module the
repository simulated the two halves of that claim in isolation: the
Gilbert-Elliott channel side (:mod:`repro.system.downlink`,
:mod:`repro.system.campaign`) measured code-word failure rates, while
the DRAM side (:mod:`repro.dram.simulator`) scheduled synthetic
full-phase address streams.  This module closes the loop:

* a :class:`FrameStreamSource` is a first-class
  :class:`~repro.dram.engine.WorkloadSource` that bridges interleaved
  frame *burst elements* to mapped DRAM addresses through the existing
  vectorized ``address_arrays`` path — every burst element the receiver
  stores (write phase, row-wise) or drains (read phase, column-wise)
  becomes one DRAM burst at the address the mapping assigns it;
* :func:`run_e2e` runs one joint cell — (channel params x interleaver
  geometry x DRAM configuration x mapping) — and returns channel
  code-word failure rates, DRAM utilization, frame energy, *and*
  per-frame write/read latencies from a single description;
* :func:`run_e2e_reference` is the per-frame scalar oracle (per-frame
  channel loop, per-element address tuples) that the batched path is
  differential-tested bit-identical against in
  ``tests/system/test_e2e.py``.

Per-frame latency is defined as the *frame service time* on the data
bus: with ``completion[f]`` the end of the last data burst belonging to
frame ``f`` (monotonized, since the queue window may let a few requests
of frame ``f+1`` finish early), frame ``f``'s latency is
``completion[f] - completion[f-1]`` (``completion[-1] = 0``).  The sum
of the latencies is exactly the phase makespan, and a frame that a
refresh or a row-miss chain interrupts shows up as a tail-latency
outlier — the quantity :func:`latency_percentile_ps` summarizes.

Cells are declarative frozen dataclasses of primitives (the campaign
engine's design rules): they pickle cheaply, every worker rebuilds its
own simulator state from the cell alone, and results are bit-identical
for any ``--jobs`` value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.codeword import CodewordConfig
from repro.dram.commands import ScheduledCommand
from repro.channel.gilbert_elliott import GilbertElliottParams
from repro.dram.controller import OP_READ, OP_WRITE, ControllerConfig
from repro.dram.energy import (
    EnergyReport,
    combine_interleaver_reports,
    energy_from_tally,
)
from repro.dram.engine import Batch, SchedulingEngine, TupleSource, WorkloadSource
from repro.dram.presets import DramConfig, get_config
from repro.dram.stats import PhaseStats
from repro.interleaver.two_stage import TwoStageConfig
from repro.mapping.base import AddressArrays, InterleaverMapping
from repro.system.downlink import DownlinkResult, OpticalDownlink


def _check_bridge(interleaver: TwoStageConfig,
                  mapping: InterleaverMapping) -> None:
    """Validate that a mapping can hold the interleaver's frames.

    Args:
        interleaver: two-stage interleaver dimensions.
        mapping: candidate DRAM address mapping.

    Raises:
        ValueError: when the mapping's index space does not hold exactly
            one burst element per frame element (a geometry/mapping size
            mismatch), or when the mapping needs more DRAM rows than the
            device has (via
            :meth:`~repro.mapping.base.InterleaverMapping.check_capacity`).
    """
    elements = interleaver.elements_per_frame
    cells = mapping.space.num_elements
    if elements != cells:
        raise ValueError(
            "interleaver frame and mapping index space disagree: "
            f"{elements} burst elements per frame (triangle_n="
            f"{interleaver.triangle_n}) vs {cells} mapped cells"
        )
    mapping.check_capacity()


class FrameStreamSource(WorkloadSource):
    """Interleaved frame streams as a DRAM engine workload source.

    The bridge at the heart of the co-simulation: one interleaver frame
    is ``interleaver.elements_per_frame`` burst elements, and storing
    (or draining) a frame means issuing exactly one DRAM burst per
    element at the address the mapping assigns it — row-wise traversal
    for the write phase (elements arrive in transmit order), column-wise
    for the read phase (elements leave in deinterleaved order).  The
    address stream of one frame is precomputed once through the
    mapping's vectorized ``address_arrays`` kernel and replayed per
    frame, so ``frames`` frames cost one address computation.

    The source honors the :class:`~repro.dram.engine.WorkloadSource`
    contract: batches concatenate to the exact per-frame request
    sequence in program order, and an empty stream (``frames == 0``)
    yields no batches at all.

    Args:
        mapping: interleaver-to-DRAM address mapping; its index space
            must hold exactly one cell per frame burst element.
        interleaver: two-stage interleaver dimensions (the frame
            geometry being bridged).
        frames: number of frames in the stream (``>= 0``).
        op: :data:`~repro.dram.controller.OP_WRITE` for the row-wise
            store traversal, :data:`~repro.dram.controller.OP_READ` for
            the column-wise drain traversal.

    Raises:
        ValueError: on a geometry/mapping size mismatch, a mapping that
            exceeds the device, a negative ``frames``, or an unknown
            ``op``.
    """

    def __init__(
        self,
        mapping: InterleaverMapping,
        interleaver: TwoStageConfig,
        frames: int,
        op: str = OP_WRITE,
    ) -> None:
        _check_bridge(interleaver, mapping)
        if frames < 0:
            raise ValueError(f"frames must be >= 0, got {frames}")
        if op not in (OP_READ, OP_WRITE):
            raise ValueError(f"op must be {OP_READ!r} or {OP_WRITE!r}, got {op!r}")
        self.mapping = mapping
        self.interleaver = interleaver
        self.frames = frames
        self.op = op
        chunks = (mapping.write_addresses_array() if op == OP_WRITE
                  else mapping.read_addresses_array())
        self._chunks: List[AddressArrays] = list(chunks)

    @property
    def elements_per_frame(self) -> int:
        """DRAM bursts issued per frame (one per burst element)."""
        return self.interleaver.elements_per_frame

    def batches(self) -> Iterator[Batch]:
        """Yield every frame's address chunks, frames back to back."""
        for _ in range(self.frames):
            for banks, rows, cols in self._chunks:
                yield banks, rows, cols, None


def _frame_tuple_requests(mapping: InterleaverMapping, frames: int,
                          op: str) -> Iterator[Tuple[int, int, int]]:
    """Per-frame, per-element scalar address stream (the reference shape).

    Yields the exact request sequence of a same-parameter
    :class:`FrameStreamSource`, but one ``(bank, row, column)`` tuple at
    a time from scalar :meth:`~repro.mapping.base.InterleaverMapping
    .address_tuple` calls — the oracle :func:`run_e2e_reference` feeds
    through a :class:`~repro.dram.engine.TupleSource`.
    """
    for _ in range(frames):
        if op == OP_WRITE:
            yield from mapping.write_addresses()
        else:
            yield from mapping.read_addresses()


def latency_percentile_ps(latencies: Sequence[int], q: float) -> int:
    """Nearest-rank percentile of integer per-frame latencies.

    Nearest-rank (the value at index ``ceil(q/100 * n) - 1`` of the
    sorted sample) keeps the result an exact observed integer latency —
    no float interpolation, so percentiles are bit-stable across
    platforms and suitable for golden-file pins.

    Args:
        latencies: per-frame latencies in picoseconds (non-empty).
        q: percentile in ``(0, 100]``.

    Returns:
        The q-th percentile latency in picoseconds.

    Raises:
        ValueError: on an empty sample or a percentile outside
            ``(0, 100]``.
    """
    if not latencies:
        raise ValueError("latency percentile of an empty sample")
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile must be in (0, 100], got {q}")
    ordered = sorted(latencies)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class E2ECell:
    """One joint co-simulation experiment.

    The full cross-product coordinate the ISSUE's tentpole names: a
    channel, an interleaver geometry, a code, a DRAM configuration and
    an address mapping, plus the seed and frame count that make the
    Monte Carlo side reproducible.  Like
    :class:`~repro.system.campaign.CampaignCell` the cell is a frozen
    dataclass of primitives — picklable, hashable, and the *only* input
    a worker process needs.

    Attributes:
        channel: Gilbert-Elliott fade statistics.
        interleaver: two-stage interleaver dimensions (``triangle_n``
            also fixes the DRAM-side index space).
        code: code-word length and correction radius.
        config_name: preset DRAM configuration name (see
            :mod:`repro.dram.presets`).
        mapping: mapping registry key (see
            :func:`repro.system.sweep.mapping_registry`).
        seed: RNG seed; the cell's entire channel randomness derives
            from it.
        frames: frames to co-simulate (``>= 1``).
        policy: optional controller policy overrides (picklable).
    """

    channel: GilbertElliottParams
    interleaver: TwoStageConfig
    code: CodewordConfig
    config_name: str
    mapping: str
    seed: int
    frames: int
    policy: Optional[ControllerConfig] = None

    def __post_init__(self) -> None:
        if self.frames < 1:
            raise ValueError(f"frames must be >= 1, got {self.frames}")


@dataclass(frozen=True)
class E2EResult:
    """Joint outcome of one co-simulation cell.

    Every statistic the two halves of the system produce from one cell
    description: the channel/decoder comparison (interleaved vs
    baseline), both DRAM phase statistics with their energy accounting,
    and the per-frame latency samples.  Two results compare equal iff
    the underlying runs were identical — the differential battery and
    the ``--jobs`` determinism tests rely on that.

    Attributes:
        cell: the cell that produced this result.
        downlink: channel/decoder outcome over all frames (code-word
            failure rates with and without interleaving).
        write: DRAM write-phase statistics (frames stored).
        read: DRAM read-phase statistics (frames drained).
        write_latencies_ps: per-frame write service times, in frame
            order (see the module docstring for the definition).
        read_latencies_ps: per-frame read service times.
        energy: whole-frame energy report (write + read phases,
            payload counted once).
    """

    cell: E2ECell
    downlink: DownlinkResult
    write: PhaseStats
    read: PhaseStats
    write_latencies_ps: Tuple[int, ...]
    read_latencies_ps: Tuple[int, ...]
    energy: EnergyReport

    @property
    def cwer_interleaved(self) -> float:
        """Code-word failure rate with the two-stage interleaver."""
        return self.downlink.interleaved.codeword_error_rate

    @property
    def cwer_baseline(self) -> float:
        """Code-word failure rate without interleaving."""
        return self.downlink.baseline.codeword_error_rate

    @property
    def gain(self) -> float:
        """Failure-rate ratio baseline / interleaved (``inf`` = all rescued)."""
        return self.downlink.gain

    @property
    def write_utilization(self) -> float:
        """Data-bus utilization of the DRAM write phase."""
        return self.write.utilization

    @property
    def read_utilization(self) -> float:
        """Data-bus utilization of the DRAM read phase."""
        return self.read.utilization

    @property
    def min_utilization(self) -> float:
        """The throughput-limiting phase utilization."""
        return min(self.write.utilization, self.read.utilization)

    def write_latency_percentile(self, q: float) -> int:
        """Nearest-rank percentile of the per-frame write latencies (ps)."""
        return latency_percentile_ps(self.write_latencies_ps, q)

    def read_latency_percentile(self, q: float) -> int:
        """Nearest-rank percentile of the per-frame read latencies (ps)."""
        return latency_percentile_ps(self.read_latencies_ps, q)


def _frame_latencies(commands: Sequence[ScheduledCommand], frames: int,
                     elements_per_frame: int, config: DramConfig,
                     op: str) -> Tuple[int, ...]:
    """Per-frame service times from a recorded homogeneous schedule.

    Args:
        commands: the phase's scheduled command list (with
            ``record_commands`` the engine stamps every RD/WR with its
            sequential ``request_id``; request ``r`` belongs to frame
            ``r // elements_per_frame``).
        frames: frames in the stream.
        elements_per_frame: bursts per frame.
        config: DRAM configuration (CAS latency + burst duration turn
            issue slots into data-end times).
        op: phase direction (selects CL vs CWL).

    Returns:
        One latency per frame; they sum to the phase makespan.
    """
    if frames == 0:
        return ()
    timing = config.timing
    latency = timing.cl if op == OP_READ else timing.cwl
    burst = config.burst_duration_ps
    times = []
    ids = []
    for command in commands:
        if command.moves_data:
            times.append(command.time_ps)
            ids.append(command.request_id)
    ends = np.asarray(times, dtype=np.int64) + latency + burst
    frame_of = np.asarray(ids, dtype=np.int64) // elements_per_frame
    completion = np.zeros(frames, dtype=np.int64)
    np.maximum.at(completion, frame_of, ends)
    np.maximum.accumulate(completion, out=completion)
    return tuple(np.diff(completion, prepend=0).tolist())


def _run_dram_phase(config: DramConfig, policy: ControllerConfig,
                    source: WorkloadSource, frames: int,
                    elements_per_frame: int,
                    op: str) -> Tuple[PhaseStats, Tuple[int, ...]]:
    """Schedule one co-simulation phase and extract per-frame latencies.

    A fresh engine per phase (the paper's cold-start semantics, like
    :func:`repro.dram.simulator.simulate_interleaver`); commands are
    always recorded internally because the latency extraction needs the
    issue times, which leaves the returned :class:`PhaseStats`
    untouched (recording is proven stats-invariant in
    ``tests/dram/test_energy_properties.py``).
    """
    engine = SchedulingEngine(config, replace(policy, record_commands=True))
    result = engine.run(source, op=op)
    expected = frames * elements_per_frame
    if result.stats.requests != expected:
        raise RuntimeError(
            f"frame stream scheduled {result.stats.requests} bursts, "
            f"expected {frames} frames x {elements_per_frame} elements"
        )
    latencies = _frame_latencies(result.commands, frames, elements_per_frame,
                                 config, op)
    return result.stats, latencies


def _build_mapping(cell: E2ECell) -> Tuple[DramConfig, InterleaverMapping]:
    """Resolve a cell's DRAM configuration and mapping from the registry.

    Raises:
        KeyError: on an unknown ``config_name`` or ``mapping`` key.
    """
    # Imported here to avoid a circular import at module load time
    # (sweep imports this module for the e2e table).
    from repro.interleaver.triangular import TriangularIndexSpace
    from repro.system.sweep import mapping_registry

    registry = mapping_registry()
    try:
        factory = registry[cell.mapping]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown mapping {cell.mapping!r}; known: {known}") from None
    config = get_config(cell.config_name)
    space = TriangularIndexSpace(cell.interleaver.triangle_n)
    return config, factory(space, config.geometry)


def _finalize(cell: E2ECell, downlink_outcome: DownlinkResult,
              write: PhaseStats, write_lat: Tuple[int, ...],
              read: PhaseStats, read_lat: Tuple[int, ...],
              config: DramConfig) -> E2EResult:
    """Assemble the joint result (shared by both evaluation paths)."""
    write_energy = energy_from_tally(config, write.energy_tally)
    read_energy = energy_from_tally(config, read.energy_tally)
    return E2EResult(
        cell=cell,
        downlink=downlink_outcome,
        write=write,
        read=read,
        write_latencies_ps=write_lat,
        read_latencies_ps=read_lat,
        energy=combine_interleaver_reports(write_energy, read_energy),
    )


def run_e2e(cell: E2ECell) -> E2EResult:
    """Run one joint co-simulation cell (also the worker entry point).

    The production path: the channel side runs through
    :meth:`~repro.system.downlink.OpticalDownlink.run_batched` (2-D
    mask blocks, sparse position decode), and the DRAM side feeds both
    phase traversals through :class:`FrameStreamSource` — the batched
    frame -> address bridge.  Bit-identical to
    :func:`run_e2e_reference` (differential-tested in
    ``tests/system/test_e2e.py``).

    Args:
        cell: the joint experiment description.

    Returns:
        The complete :class:`E2EResult`.

    Raises:
        KeyError: on an unknown DRAM configuration or mapping key.
        ValueError: on inconsistent channel/interleaver/code dimensions
            or a mapping that exceeds the device.
    """
    downlink = OpticalDownlink(
        cell.interleaver, cell.code, cell.channel,
        rng=np.random.default_rng(cell.seed),
    )
    outcome = downlink.run_batched(cell.frames)
    config, mapping = _build_mapping(cell)
    policy = cell.policy or ControllerConfig()
    elements = cell.interleaver.elements_per_frame
    write, write_lat = _run_dram_phase(
        config, policy,
        FrameStreamSource(mapping, cell.interleaver, cell.frames, OP_WRITE),
        cell.frames, elements, OP_WRITE)
    read, read_lat = _run_dram_phase(
        config, policy,
        FrameStreamSource(mapping, cell.interleaver, cell.frames, OP_READ),
        cell.frames, elements, OP_READ)
    return _finalize(cell, outcome, write, write_lat, read, read_lat, config)


def run_e2e_reference(cell: E2ECell) -> E2EResult:
    """Per-frame scalar oracle of :func:`run_e2e`.

    Everything the batched path vectorizes runs element by element
    here: the channel side is the per-frame
    :meth:`~repro.system.downlink.OpticalDownlink.run` loop, and the
    DRAM side feeds per-element ``address_tuple`` streams through a
    :class:`~repro.dram.engine.TupleSource`.  Kept in the library (like
    :func:`repro.dram.energy.energy_from_commands_reference`) as the
    readable reference the differential battery and the e2e benchmark
    pin the batched bridge against.

    Args:
        cell: the joint experiment description.

    Returns:
        An :class:`E2EResult` that must compare equal to
        ``run_e2e(cell)``.
    """
    downlink = OpticalDownlink(
        cell.interleaver, cell.code, cell.channel,
        rng=np.random.default_rng(cell.seed),
    )
    outcome = downlink.run(cell.frames)
    config, mapping = _build_mapping(cell)
    _check_bridge(cell.interleaver, mapping)
    policy = cell.policy or ControllerConfig()
    elements = cell.interleaver.elements_per_frame
    write, write_lat = _run_dram_phase(
        config, policy,
        TupleSource(_frame_tuple_requests(mapping, cell.frames, OP_WRITE)),
        cell.frames, elements, OP_WRITE)
    read, read_lat = _run_dram_phase(
        config, policy,
        TupleSource(_frame_tuple_requests(mapping, cell.frames, OP_READ)),
        cell.frames, elements, OP_READ)
    return _finalize(cell, outcome, write, write_lat, read, read_lat, config)
