"""System-level evaluation: downlink simulation, campaigns, throughput, sweeps."""

from repro.system.campaign import (
    CampaignCell,
    CampaignSummary,
    CellResult,
    campaign_grid,
    evaluate_cell,
    format_campaign,
    run_campaign,
    summarize_campaign,
    wilson_interval,
)
from repro.system.downlink import DownlinkResult, OpticalDownlink
from repro.system.sweep import (
    SizeSweepPoint,
    Table1Row,
    ablation_factories,
    default_mappings,
    format_table1,
    run_table1,
    sweep_sizes,
)
from repro.system.throughput import (
    ProvisioningChoice,
    ThroughputReport,
    provision,
    required_channels,
    throughput_report,
)

__all__ = [
    "CampaignCell",
    "CampaignSummary",
    "CellResult",
    "DownlinkResult",
    "OpticalDownlink",
    "ProvisioningChoice",
    "campaign_grid",
    "evaluate_cell",
    "format_campaign",
    "run_campaign",
    "summarize_campaign",
    "wilson_interval",
    "SizeSweepPoint",
    "Table1Row",
    "ThroughputReport",
    "ablation_factories",
    "default_mappings",
    "format_table1",
    "provision",
    "required_channels",
    "run_table1",
    "sweep_sizes",
    "throughput_report",
]
