"""System-level evaluation: downlink simulation, campaigns, throughput, sweeps."""

from repro.system.campaign import (
    CampaignCell,
    CampaignSummary,
    CellResult,
    campaign_grid,
    evaluate_cell,
    format_campaign,
    run_campaign,
    summarize_campaign,
    wilson_interval,
)
from repro.system.downlink import DownlinkResult, OpticalDownlink
from repro.system.parallel import (
    MixedTask,
    PhaseTask,
    run_mixed_tasks,
    run_phase_tasks,
)
from repro.system.sweep import (
    MixedRow,
    SizeSweepPoint,
    Table1Row,
    ablation_factories,
    default_mappings,
    format_mixed_table,
    format_table1,
    run_mixed_table,
    run_table1,
    sweep_sizes,
)
from repro.system.throughput import (
    ProvisioningChoice,
    ThroughputReport,
    provision,
    required_channels,
    throughput_report,
)

__all__ = [
    "CampaignCell",
    "CampaignSummary",
    "CellResult",
    "DownlinkResult",
    "OpticalDownlink",
    "ProvisioningChoice",
    "campaign_grid",
    "evaluate_cell",
    "format_campaign",
    "run_campaign",
    "summarize_campaign",
    "wilson_interval",
    "MixedRow",
    "MixedTask",
    "PhaseTask",
    "SizeSweepPoint",
    "Table1Row",
    "ThroughputReport",
    "ablation_factories",
    "default_mappings",
    "format_mixed_table",
    "format_table1",
    "provision",
    "required_channels",
    "run_mixed_table",
    "run_mixed_tasks",
    "run_phase_tasks",
    "run_table1",
    "sweep_sizes",
    "throughput_report",
]
