"""Interleaver throughput and DRAM provisioning analysis (Sec. I & III).

The interleaver continuously alternates write and read phases on the
same device, so its sustained throughput on a DRAM channel is::

    throughput = min(util_write, util_read) x peak_bandwidth / 2

(the factor 2: every payload symbol crosses the DRAM bus twice, once
written and once read).  Because the row-major mapping's read phase
collapses on fast devices, a system architect has to *over-provision*
the DRAM — pick a faster speed grade or a wider bus — to reach a target
line rate; the optimized mapping removes that tax.  These helpers
quantify exactly that argument.

Over-provisioning has an *energy* face too (paper Sec. I: "higher
costs and additional energy consumption"): every extra channel bought
to compensate a collapsed phase burns background and per-access power.
:func:`energy_pareto` spans the (channels x grade x mapping) space and
marks the bandwidth-vs-power Pareto frontier, pairing each
:class:`ThroughputReport` with an
:class:`~repro.dram.energy.EnergyReport` (see
:mod:`repro.dram.energy` for the command-level model and
:func:`repro.system.sweep.run_energy_table` for the per-cell table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dram.energy import EnergyReport
from repro.dram.presets import DramConfig
from repro.dram.simulator import InterleaverSimResult
from repro.units import gbit_per_s


@dataclass(frozen=True)
class ThroughputReport:
    """Sustained interleaver throughput on one configuration.

    Attributes:
        config_name: DRAM configuration.
        mapping_name: address mapping used.
        min_utilization: throughput-limiting phase utilization.
        peak_bandwidth_gbit: channel peak bandwidth in Gbit/s.
        sustained_gbit: achievable interleaver line rate in Gbit/s
            (both phases run on one device, hence the /2).
    """

    config_name: str
    mapping_name: str
    min_utilization: float
    peak_bandwidth_gbit: float
    sustained_gbit: float

    @property
    def efficiency(self) -> float:
        """Sustained line rate relative to the ideal device limit."""
        return self.sustained_gbit / (self.peak_bandwidth_gbit / 2)


def throughput_report(config: DramConfig, result: InterleaverSimResult) -> ThroughputReport:
    """Build a :class:`ThroughputReport` from a simulation result.

    Args:
        config: the configuration that was simulated (supplies the peak
            bandwidth the utilizations are scaled against).
        result: both-phase simulation outcome of one (configuration,
            mapping) cell.

    Returns:
        The derived report; ``sustained_gbit`` is
        ``min(write, read) x peak / 2`` (each payload byte crosses the
        bus twice per frame).
    """
    peak = gbit_per_s(config.peak_bandwidth_bytes_per_s)
    min_util = result.min_utilization
    return ThroughputReport(
        config_name=config.name,
        mapping_name=result.mapping_name,
        min_utilization=min_util,
        peak_bandwidth_gbit=peak,
        sustained_gbit=min_util * peak / 2,
    )


def required_channels(report: ThroughputReport, target_gbit: float) -> int:
    """Parallel channels of this configuration needed for a line rate.

    Args:
        report: sustained-throughput report of one (configuration,
            mapping) option.
        target_gbit: required interleaver line rate in Gbit/s.

    Returns:
        The smallest channel count whose combined sustained bandwidth
        covers the target (at least 1).

    Raises:
        ValueError: on a non-positive target, or a report that sustains
            no throughput at all.
    """
    if target_gbit <= 0:
        raise ValueError(f"target_gbit must be positive, got {target_gbit}")
    if report.sustained_gbit <= 0:
        raise ValueError(f"{report.config_name} sustains no throughput")
    return max(1, math.ceil(target_gbit / report.sustained_gbit))


@dataclass(frozen=True)
class ProvisioningChoice:
    """Cheapest configuration satisfying a target line rate."""

    target_gbit: float
    report: ThroughputReport
    channels: int

    @property
    def total_peak_gbit(self) -> float:
        """Raw bandwidth bought to reach the target (the oversizing)."""
        return self.report.peak_bandwidth_gbit * self.channels

    @property
    def oversizing_factor(self) -> float:
        """Bought peak bandwidth / minimum theoretically needed.

        The ideal device would need ``2 x target`` peak (write + read);
        values above that quantify the bandwidth tax of the mapping.
        """
        return self.total_peak_gbit / (2 * self.target_gbit)


def provision(
    reports: Sequence[ThroughputReport],
    target_gbit: float,
    max_channels: Optional[int] = None,
) -> List[ProvisioningChoice]:
    """Rank configurations by raw bandwidth needed for a target rate.

    Args:
        reports: one report per candidate configuration.
        target_gbit: required interleaver line rate.
        max_channels: optional cap on channel count per configuration.

    Returns:
        Feasible choices sorted by total peak bandwidth bought
        (ascending, i.e. cheapest first).
    """
    choices = []
    for report in reports:
        if report.sustained_gbit <= 0:
            continue
        channels = max(1, math.ceil(target_gbit / report.sustained_gbit))
        if max_channels is not None and channels > max_channels:
            continue
        choices.append(ProvisioningChoice(target_gbit=target_gbit, report=report,
                                          channels=channels))
    # Equal raw-bandwidth cost: prefer the choice with more headroom.
    return sorted(
        choices,
        key=lambda c: (c.total_peak_gbit, c.channels, -c.report.sustained_gbit),
    )


@dataclass(frozen=True)
class EnergyProvisioningPoint:
    """One (channels, grade, mapping) point of the bandwidth/energy space.

    Attributes:
        report: the single-channel throughput report this point scales.
        channels: parallel channels provisioned.
        pj_per_bit: frame energy per payload bit (channel-count
            invariant — every channel moves its own share of payload).
        channel_power_mw: average power of one channel over the frame.
        on_frontier: whether the point is Pareto-optimal — no other
            point in the same report delivers at least its bandwidth
            for less power.
    """

    report: ThroughputReport
    channels: int
    pj_per_bit: float
    channel_power_mw: float
    on_frontier: bool = False

    @property
    def sustained_gbit(self) -> float:
        """Total sustained line rate of the provisioned channels."""
        return self.report.sustained_gbit * self.channels

    @property
    def power_mw(self) -> float:
        """Total average power of the provisioned channels."""
        return self.channel_power_mw * self.channels

    @property
    def total_peak_gbit(self) -> float:
        """Raw bandwidth bought (the oversizing, as in provision())."""
        return self.report.peak_bandwidth_gbit * self.channels


def energy_pareto(
    cells: Sequence[Tuple[ThroughputReport, EnergyReport]],
    max_channels: int = 4,
) -> List[EnergyProvisioningPoint]:
    """Bandwidth-vs-energy Pareto over the provisioning space.

    Spans channels x grade x mapping: every ``(report, energy)`` cell
    — one :class:`ThroughputReport` paired with the frame
    :class:`~repro.dram.energy.EnergyReport` of the same simulation —
    is replicated at 1..``max_channels`` parallel channels (bandwidth
    and power scale linearly; pJ/bit is invariant).  Points that no
    alternative dominates (at least the same sustained bandwidth for
    strictly less power) are flagged ``on_frontier`` — the
    configurations a designer should actually consider; everything
    else is the energy tax of over-provisioning the wrong grade or
    mapping.

    Args:
        cells: ``(report, energy)`` pairs, one per simulated
            (configuration, mapping) cell.
        max_channels: channel counts spanned per cell (>= 1).

    Returns:
        All provisioning points ordered by sustained bandwidth then
        power, with the Pareto-optimal ones flagged.

    Raises:
        ValueError: when ``max_channels`` is not positive.

    Returns:
        All points sorted by (sustained bandwidth, power) ascending.

    Raises:
        ValueError: if ``max_channels`` is not positive.
    """
    if max_channels < 1:
        raise ValueError(f"max_channels must be >= 1, got {max_channels}")
    raw = []
    for report, energy in cells:
        if report.sustained_gbit <= 0:
            continue
        for channels in range(1, max_channels + 1):
            raw.append((report, channels, energy.pj_per_bit,
                        energy.avg_power_mw))
    # Frontier sweep: descending bandwidth, ascending power — a point
    # is optimal iff its power undercuts every point with >= bandwidth.
    order = sorted(
        range(len(raw)),
        key=lambda i: (-raw[i][0].sustained_gbit * raw[i][1],
                       raw[i][3] * raw[i][1]),
    )
    best_power = math.inf
    frontier = set()
    for i in order:
        power = raw[i][3] * raw[i][1]
        if power < best_power:
            best_power = power
            frontier.add(i)
    points = [
        EnergyProvisioningPoint(report=report, channels=channels,
                                pj_per_bit=pj, channel_power_mw=power,
                                on_frontier=i in frontier)
        for i, (report, channels, pj, power) in enumerate(raw)
    ]
    return sorted(points, key=lambda p: (p.sustained_gbit, p.power_mw,
                                         p.report.config_name,
                                         p.report.mapping_name))


#: Column order of the provisioning CSV export (one row per choice).
PROVISION_CSV_FIELDS = (
    "rank", "config_name", "mapping_name", "channels", "sustained_gbit",
    "total_peak_gbit", "oversizing_factor",
)


def provision_csv_rows(
    choices: Sequence[ProvisioningChoice],
) -> List[Dict[str, Any]]:
    """Flatten ranked provisioning choices into CSV rows.

    One :data:`PROVISION_CSV_FIELDS` row per choice, ranked 1..N in the
    given (cheapest-first) order — the machine-readable face of the
    ``repro provision`` table, exported through the store-level CSV
    writer.

    Args:
        choices: ranked output of :func:`provision`.
    """
    rows = []
    for rank, choice in enumerate(choices, start=1):
        rows.append({
            "rank": rank,
            "config_name": choice.report.config_name,
            "mapping_name": choice.report.mapping_name,
            "channels": choice.channels,
            "sustained_gbit": choice.report.sustained_gbit * choice.channels,
            "total_peak_gbit": choice.total_peak_gbit,
            "oversizing_factor": choice.oversizing_factor,
        })
    return rows


#: Column order of the Pareto CSV export (one row per point).
PARETO_CSV_FIELDS = (
    "config_name", "mapping_name", "channels", "sustained_gbit",
    "total_peak_gbit", "pj_per_bit", "channel_power_mw", "power_mw",
    "on_frontier",
)


def pareto_csv_rows(
    points: Sequence[EnergyProvisioningPoint],
) -> List[Dict[str, Any]]:
    """Flatten energy-Pareto points into CSV rows.

    One :data:`PARETO_CSV_FIELDS` row per point in the given order —
    the machine-readable face of the ``repro energy`` Pareto chart
    (``on_frontier`` is exported as ``0``/``1``).

    Args:
        points: output of :func:`energy_pareto`.
    """
    rows = []
    for point in points:
        rows.append({
            "config_name": point.report.config_name,
            "mapping_name": point.report.mapping_name,
            "channels": point.channels,
            "sustained_gbit": point.sustained_gbit,
            "total_peak_gbit": point.total_peak_gbit,
            "pj_per_bit": point.pj_per_bit,
            "channel_power_mw": point.channel_power_mw,
            "power_mw": point.power_mw,
            "on_frontier": int(point.on_frontier),
        })
    return rows
