"""Interleaver throughput and DRAM provisioning analysis (Sec. I & III).

The interleaver continuously alternates write and read phases on the
same device, so its sustained throughput on a DRAM channel is::

    throughput = min(util_write, util_read) x peak_bandwidth / 2

(the factor 2: every payload symbol crosses the DRAM bus twice, once
written and once read).  Because the row-major mapping's read phase
collapses on fast devices, a system architect has to *over-provision*
the DRAM — pick a faster speed grade or a wider bus — to reach a target
line rate; the optimized mapping removes that tax.  These helpers
quantify exactly that argument.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dram.presets import DramConfig
from repro.dram.simulator import InterleaverSimResult
from repro.units import gbit_per_s


@dataclass(frozen=True)
class ThroughputReport:
    """Sustained interleaver throughput on one configuration.

    Attributes:
        config_name: DRAM configuration.
        mapping_name: address mapping used.
        min_utilization: throughput-limiting phase utilization.
        peak_bandwidth_gbit: channel peak bandwidth in Gbit/s.
        sustained_gbit: achievable interleaver line rate in Gbit/s
            (both phases run on one device, hence the /2).
    """

    config_name: str
    mapping_name: str
    min_utilization: float
    peak_bandwidth_gbit: float
    sustained_gbit: float

    @property
    def efficiency(self) -> float:
        """Sustained line rate relative to the ideal device limit."""
        return self.sustained_gbit / (self.peak_bandwidth_gbit / 2)


def throughput_report(config: DramConfig, result: InterleaverSimResult) -> ThroughputReport:
    """Build a :class:`ThroughputReport` from a simulation result."""
    peak = gbit_per_s(config.peak_bandwidth_bytes_per_s)
    min_util = result.min_utilization
    return ThroughputReport(
        config_name=config.name,
        mapping_name=result.mapping_name,
        min_utilization=min_util,
        peak_bandwidth_gbit=peak,
        sustained_gbit=min_util * peak / 2,
    )


def required_channels(report: ThroughputReport, target_gbit: float) -> int:
    """Parallel channels of this configuration needed for a line rate."""
    if target_gbit <= 0:
        raise ValueError(f"target_gbit must be positive, got {target_gbit}")
    if report.sustained_gbit <= 0:
        raise ValueError(f"{report.config_name} sustains no throughput")
    return max(1, math.ceil(target_gbit / report.sustained_gbit))


@dataclass(frozen=True)
class ProvisioningChoice:
    """Cheapest configuration satisfying a target line rate."""

    target_gbit: float
    report: ThroughputReport
    channels: int

    @property
    def total_peak_gbit(self) -> float:
        """Raw bandwidth bought to reach the target (the oversizing)."""
        return self.report.peak_bandwidth_gbit * self.channels

    @property
    def oversizing_factor(self) -> float:
        """Bought peak bandwidth / minimum theoretically needed.

        The ideal device would need ``2 x target`` peak (write + read);
        values above that quantify the bandwidth tax of the mapping.
        """
        return self.total_peak_gbit / (2 * self.target_gbit)


def provision(
    reports: Sequence[ThroughputReport],
    target_gbit: float,
    max_channels: Optional[int] = None,
) -> List[ProvisioningChoice]:
    """Rank configurations by raw bandwidth needed for a target rate.

    Args:
        reports: one report per candidate configuration.
        target_gbit: required interleaver line rate.
        max_channels: optional cap on channel count per configuration.

    Returns:
        Feasible choices sorted by total peak bandwidth bought
        (ascending, i.e. cheapest first).
    """
    choices = []
    for report in reports:
        if report.sustained_gbit <= 0:
            continue
        channels = max(1, math.ceil(target_gbit / report.sustained_gbit))
        if max_channels is not None and channels > max_channels:
            continue
        choices.append(ProvisioningChoice(target_gbit=target_gbit, report=report,
                                          channels=channels))
    # Equal raw-bandwidth cost: prefer the choice with more headroom.
    return sorted(
        choices,
        key=lambda c: (c.total_peak_gbit, c.channels, -c.report.sustained_gbit),
    )
