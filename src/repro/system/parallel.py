"""Process-pool execution engine for simulation sweeps.

A sweep (Table I, size sweeps, ablations) decomposes into independent
``(configuration, mapping, phase)`` work items — each one a full
controller simulation that holds the GIL for seconds.  This module
fans those items out over a :class:`concurrent.futures.ProcessPoolExecutor`
and reassembles the results in submission order, with a serial fallback
when multiprocessing is unavailable (restricted environments) or not
worth the fork cost (``jobs=1``, single-item sweeps).

Work items are declarative (:class:`PhaseTask` names a preset config
and a registry mapping key rather than holding live objects), so they
pickle cheaply and each worker rebuilds its own space/mapping — no
shared state, deterministic results, identical to the serial path.

Two orthogonal knobs ride on every task:

* ``engine`` selects the scheduling arbiter
  (:data:`~repro.dram.controller.ENGINE_GENERAL` or the bit-identical
  batch-advance :data:`~repro.dram.controller.ENGINE_KERNEL`); it is
  an execution detail and deliberately **not** part of the store key —
  a kernel run and a general run of the same cell share one cache
  entry (pinned in ``tests/store``).
* :func:`share_phase_chunks` swaps a task's rebuild-in-worker address
  generation for a pre-materialized zero-copy
  :class:`~repro.system.shm.SharedChunks` payload, bit-identical for
  any ``jobs`` value.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional, Tuple

from repro.dram.controller import (
    ENGINE_GENERAL,
    OP_READ,
    OP_WRITE,
    ControllerConfig,
    MemoryController,
    _check_engine,
)
from repro.dram.mixed import MixedResult
from repro.dram.presets import DramConfig, get_config
from repro.dram.simulator import (
    InterleaverSimResult,
    simulate_interleaver,
    simulate_mixed_interleaver,
    simulate_phase,
)
from repro.dram.stats import PhaseStats
from repro.interleaver.triangular import TriangularIndexSpace
from repro.system.e2e import E2ECell, E2EResult, run_e2e
from repro.system.shm import SharedChunks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> parallel,
    # and campaign -> parallel, which rules out importing adaptive —
    # a campaign client — at module level; the execute functions below
    # import it lazily instead.
    from repro.mapping.base import InterleaverMapping
    from repro.store.store import ResultStore
    from repro.system.adaptive import (
        AdaptiveCell,
        AdaptiveResult,
        RareEventCell,
        RareEventResult,
        ScenarioCell,
        ScenarioResult,
    )


@dataclass(frozen=True)
class PhaseTask:
    """One independent simulation work item.

    Attributes:
        config_name: preset DRAM configuration name (see
            :mod:`repro.dram.presets`).
        mapping: mapping registry key (see
            :func:`repro.system.sweep.mapping_registry`), e.g.
            ``"row-major"``, ``"optimized"``, ``"no-tiling"``.
        op: :data:`~repro.dram.controller.OP_WRITE` or
            :data:`~repro.dram.controller.OP_READ`.
        n: triangular interleaver dimension.
        policy: optional controller policy overrides (picklable).
        use_arrays: forwarded to :func:`~repro.dram.simulator.simulate_phase`
            (``None`` = auto-select the vectorized path).
        engine: scheduling-engine hook
            (:data:`~repro.dram.controller.ENGINE_GENERAL` /
            :data:`~repro.dram.controller.ENGINE_KERNEL`); results are
            bit-identical either way, so the store key excludes it.
        chunks: optional pre-materialized address payload (see
            :func:`share_phase_chunks`); excluded from equality — the
            declarative fields alone identify the cell.
    """

    config_name: str
    mapping: str
    op: str
    n: int
    policy: Optional[ControllerConfig] = None
    use_arrays: Optional[bool] = None
    engine: str = ENGINE_GENERAL
    chunks: Optional[SharedChunks] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.op not in (OP_READ, OP_WRITE):
            raise ValueError(f"op must be {OP_READ!r} or {OP_WRITE!r}, got {self.op!r}")
        if self.n < 1:
            raise ValueError(f"interleaver dimension must be >= 1, got {self.n}")
        _check_engine(self.engine)


def _task_mapping(task_mapping: str, config_name: str,
                  n: int) -> "Tuple[DramConfig, InterleaverMapping]":
    """Resolve a task's (config, mapping) pair through the registry.

    Raises:
        KeyError: if ``config_name`` or ``task_mapping`` is not a known
            registry key.
    """
    # Imported here to avoid a circular import at module load time
    # (sweep builds tasks for this engine).
    from repro.system.sweep import mapping_registry

    registry = mapping_registry()
    try:
        factory = registry[task_mapping]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown mapping {task_mapping!r}; known: {known}") from None
    config = get_config(config_name)
    space = TriangularIndexSpace(n)
    return config, factory(space, config.geometry)


def share_phase_chunks(task: PhaseTask,
                       prefer_shared: bool = True) -> PhaseTask:
    """A copy of ``task`` carrying its address stream as a shared payload.

    Materializes the task's own vectorized address chunks once (in the
    submitting process) into a :class:`~repro.system.shm.SharedChunks`
    segment, so worker processes schedule the exact same requests
    without regenerating the mapping — and without pickling the
    payload, when shared memory is available.  Deriving the payload
    from the task itself is what keeps the chunk-bearing path
    bit-identical to the declarative one by construction.

    The caller owns the segment: call ``task.chunks.unlink()`` (or use
    it as a context manager) after the sweep completes.

    Args:
        task: the declarative work item to annotate.
        prefer_shared: forwarded to :class:`~repro.system.shm.SharedChunks`
            (``False`` forces the inline pickle fallback).
    """
    config, mapping = _task_mapping(task.mapping, task.config_name, task.n)
    stream = (mapping.write_addresses_array() if task.op == OP_WRITE
              else mapping.read_addresses_array())
    return replace(task, chunks=SharedChunks(stream, prefer_shared=prefer_shared))


def execute_phase_task(task: PhaseTask) -> PhaseStats:
    """Run one :class:`PhaseTask` to completion (also the worker entry).

    A chunk-bearing task (see :func:`share_phase_chunks`) feeds its
    shared payload straight into the controller; a declarative one
    rebuilds the mapping and simulates through
    :func:`~repro.dram.simulator.simulate_phase`.  Both paths are
    bit-identical.

    Raises:
        KeyError: if ``task.config_name`` or ``task.mapping`` is not a
            known registry key.
    """
    if task.chunks is not None:
        config = get_config(task.config_name)
        controller = MemoryController(config, task.policy, engine=task.engine)
        stats = controller.run_phase(task.chunks.chunks(), task.op).stats
        task.chunks.release()  # detach the worker-side view promptly
        return stats
    config, mapping = _task_mapping(task.mapping, task.config_name, task.n)
    return simulate_phase(config, mapping, task.op, task.policy,
                          use_arrays=task.use_arrays, engine=task.engine)


@dataclass(frozen=True)
class InterleaverTask:
    """One full write+read interleaver simulation work item.

    One worker runs both phases of a (configuration, mapping) cell and
    returns the complete :class:`~repro.dram.simulator
    .InterleaverSimResult` — the unit the energy table and the
    provisioning reports consume (the per-phase
    :class:`~repro.dram.stats.EnergyTally` rides along on each
    ``PhaseStats``, so energy accounting survives the process
    boundary for free).

    Attributes:
        config_name: preset DRAM configuration name.
        mapping: mapping registry key (e.g. ``"row-major"``).
        n: triangular interleaver dimension.
        policy: optional controller policy overrides (picklable).
        engine: scheduling-engine hook (excluded from the store key;
            results are bit-identical across engines).
    """

    config_name: str
    mapping: str
    n: int
    policy: Optional[ControllerConfig] = None
    engine: str = ENGINE_GENERAL

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"interleaver dimension must be >= 1, got {self.n}")
        _check_engine(self.engine)


def execute_interleaver_task(task: InterleaverTask) -> InterleaverSimResult:
    """Run one :class:`InterleaverTask` to completion (also the worker entry).

    Raises:
        KeyError: if ``task.config_name`` or ``task.mapping`` is not a
            known registry key.
    """
    config, mapping = _task_mapping(task.mapping, task.config_name, task.n)
    return simulate_interleaver(config, mapping, task.policy,
                                engine=task.engine)


@dataclass(frozen=True)
class MixedTask:
    """One steady-state mixed-traffic simulation work item.

    Attributes:
        config_name: preset DRAM configuration name.
        mapping: mapping registry key (e.g. ``"row-major"``).
        n: triangular interleaver dimension.
        group: same-direction requests issued back to back before the
            stream switches direction (see
            :func:`repro.dram.mixed.interleaved_stream`).
        policy: optional controller policy overrides (picklable).
        engine: scheduling-engine hook (excluded from the store key;
            mixed streams always schedule through the general core).
    """

    config_name: str
    mapping: str
    n: int
    group: int = 16
    policy: Optional[ControllerConfig] = None
    engine: str = ENGINE_GENERAL

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"interleaver dimension must be >= 1, got {self.n}")
        if self.group < 1:
            raise ValueError(f"group must be >= 1, got {self.group}")
        _check_engine(self.engine)


def execute_mixed_task(task: MixedTask) -> MixedResult:
    """Run one :class:`MixedTask` to completion (also the worker entry).

    Raises:
        KeyError: if ``task.config_name`` or ``task.mapping`` is not a
            known registry key.
    """
    config, mapping = _task_mapping(task.mapping, task.config_name, task.n)
    return simulate_mixed_interleaver(config, mapping, group=task.group,
                                      policy=task.policy, engine=task.engine)


@dataclass(frozen=True)
class E2ETask:
    """One end-to-end downlink -> DRAM co-simulation work item.

    Unlike the other task kinds the work description already *is* a
    declarative frozen dataclass of primitives —
    :class:`~repro.system.e2e.E2ECell` — so the task simply carries it;
    keeping the wrapper gives the co-simulation the same task/worker
    shape (and the same ``--jobs`` bit-identity contract) as every
    other grid in this module.

    Attributes:
        cell: the joint (channel x interleaver x DRAM config x mapping
            x seed) experiment to run.
    """

    cell: E2ECell


def execute_e2e_task(task: E2ETask) -> E2EResult:
    """Run one :class:`E2ETask` to completion (also the worker entry).

    Args:
        task: the work item.

    Returns:
        The joint :class:`~repro.system.e2e.E2EResult` of the cell.

    Raises:
        KeyError: if the cell names an unknown DRAM configuration or
            mapping registry key.
        ValueError: if the cell's channel/interleaver/code dimensions
            are inconsistent or the mapping exceeds the device.
    """
    return run_e2e(task.cell)


@dataclass(frozen=True)
class AdaptiveTask:
    """One adaptive-stopping Monte Carlo work item.

    Like :class:`E2ETask`, the cell itself is already a declarative
    frozen dataclass of primitives; the wrapper gives adaptive cells
    the same task/worker shape — and the same ``--jobs`` bit-identity
    contract — as every other grid in this module.

    Attributes:
        cell: the adaptive experiment to run.
    """

    cell: "AdaptiveCell"


def execute_adaptive_task(task: AdaptiveTask) -> "AdaptiveResult":
    """Run one :class:`AdaptiveTask` to completion (also the worker entry)."""
    from repro.system.adaptive import evaluate_adaptive

    return evaluate_adaptive(task.cell)


@dataclass(frozen=True)
class RareEventTask:
    """One importance-sampled Monte Carlo work item.

    Attributes:
        cell: the rare-event experiment to run.
    """

    cell: "RareEventCell"


def execute_rare_event_task(task: RareEventTask) -> "RareEventResult":
    """Run one :class:`RareEventTask` to completion (also the worker entry)."""
    from repro.system.adaptive import evaluate_rare_event

    return evaluate_rare_event(task.cell)


@dataclass(frozen=True)
class ScenarioTask:
    """One time-varying channel scenario work item.

    Attributes:
        cell: the piecewise-trajectory experiment to run.
    """

    cell: "ScenarioCell"


def execute_scenario_task(task: ScenarioTask) -> "ScenarioResult":
    """Run one :class:`ScenarioTask` to completion (also the worker entry)."""
    from repro.system.adaptive import evaluate_scenario

    return evaluate_scenario(task.cell)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs``-style argument to a worker count.

    ``None`` or ``1`` mean serial; ``0`` and negative values mean "all
    cores" (the make/pytest-xdist convention); anything else is taken
    literally.
    """
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _run_tasks(worker: Callable[[Any], Any], tasks: Iterable[Any],
               jobs: Optional[int]) -> List[Any]:
    """Fan ``tasks`` over a process pool; serial fallback, stable order.

    The process pool is an optimization, never a requirement: if worker
    processes cannot be spawned (sandboxes, exotic start methods) the
    engine silently degrades to the serial path, which produces the
    identical result list.
    """
    task_list = list(tasks)
    workers = min(resolve_jobs(jobs), len(task_list))
    if workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(worker, task_list))
        except (OSError, BrokenProcessPool, PermissionError):
            pass  # fall through to the serial path
    return [worker(task) for task in task_list]


def _run_tasks_stored(
    worker: Callable[[Any], Any],
    tasks: Iterable[Any],
    jobs: Optional[int],
    load: Callable[[Any], Any],
    save: Callable[[Any, Any], None],
) -> List[Any]:
    """The store-aware twin of :func:`_run_tasks`.

    Store hits skip the worker entirely (the cross-sweep-reuse
    invocation-counting tests rely on that); misses run on the pool and
    persist *the moment each result arrives*, so an interrupted sweep
    resumes from its last completed cell — the same discipline as the
    campaign engine.  Results are bit-identical to the storeless path:
    a hit returns the exact record a previous run computed, and records
    round-trip exactly.
    """
    task_list = list(tasks)
    results: List[Any] = [load(task) for task in task_list]
    pending = [index for index, result in enumerate(results)
               if result is None]
    workers = min(resolve_jobs(jobs), len(pending)) if pending else 0

    def record(index: int, result: Any) -> None:
        results[index] = result
        save(task_list[index], result)

    if workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                ordered = pool.map(worker,
                                   [task_list[index] for index in pending])
                for index, result in zip(pending, ordered):
                    record(index, result)
        except (OSError, BrokenProcessPool, PermissionError):
            pass  # fall through to the serial path for whatever is left
    for index in pending:
        if results[index] is None:
            record(index, worker(task_list[index]))
    return results


def run_phase_tasks(
    tasks: Iterable[PhaseTask],
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> List[PhaseStats]:
    """Execute phase tasks, parallel when asked, results in order.

    Args:
        tasks: work items; results come back in the same order.
        jobs: worker processes (see :func:`resolve_jobs`).  With one
            worker — or one task — everything runs in-process.
        store: optional shared result store — hits skip simulation,
            misses are persisted as they finish.
    """
    if store is None:
        return _run_tasks(execute_phase_task, tasks, jobs)
    return _run_tasks_stored(execute_phase_task, tasks, jobs,
                             store.load_phase, store.store_phase)


def run_mixed_tasks(
    tasks: Iterable[MixedTask],
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> List[MixedResult]:
    """Execute steady-state mixed-traffic tasks.

    Same contract as :func:`run_phase_tasks`.

    Args:
        tasks: work items; results come back in the same order.
        jobs: worker processes (see :func:`resolve_jobs`).
        store: optional shared result store.
    """
    if store is None:
        return _run_tasks(execute_mixed_task, tasks, jobs)
    return _run_tasks_stored(execute_mixed_task, tasks, jobs,
                             store.load_mixed, store.store_mixed)


def run_interleaver_tasks(
    tasks: Iterable[InterleaverTask],
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> List[InterleaverSimResult]:
    """Execute full-frame interleaver tasks.

    Same contract as :func:`run_phase_tasks`.  With a store, each cell
    is persisted (and looked up) as its two *phase* records, so a
    ``table1`` run and an ``energy`` run over the same (config,
    mapping, n) grid share work in either direction.

    Args:
        tasks: work items; results come back in the same order.
        jobs: worker processes (see :func:`resolve_jobs`).
        store: optional shared result store.
    """
    if store is None:
        return _run_tasks(execute_interleaver_task, tasks, jobs)
    return _run_tasks_stored(execute_interleaver_task, tasks, jobs,
                             store.load_interleaver, store.store_interleaver)


def run_e2e_tasks(
    tasks: Iterable[E2ETask],
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> List[E2EResult]:
    """Execute end-to-end co-simulation tasks.

    Same contract as :func:`run_phase_tasks`: results in submission
    order, bit-identical for any ``jobs`` value, serial fallback when
    the pool is unavailable.

    Args:
        tasks: work items; results come back in the same order.
        jobs: worker processes (see :func:`resolve_jobs`).
        store: optional shared result store.
    """
    if store is None:
        return _run_tasks(execute_e2e_task, tasks, jobs)
    return _run_tasks_stored(
        execute_e2e_task, tasks, jobs,
        lambda task: store.load_e2e(task.cell),
        lambda task, result: store.store_e2e(task.cell, result))


def run_adaptive_tasks(
    tasks: Iterable[AdaptiveTask],
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> List[AdaptiveResult]:
    """Execute adaptive-stopping campaign tasks.

    Same contract as :func:`run_phase_tasks`: results in submission
    order, bit-identical for any ``jobs`` value, serial fallback when
    the pool is unavailable, store hits skipping the worker entirely.

    Args:
        tasks: work items; results come back in the same order.
        jobs: worker processes (see :func:`resolve_jobs`).
        store: optional shared result store.
    """
    if store is None:
        return _run_tasks(execute_adaptive_task, tasks, jobs)
    return _run_tasks_stored(
        execute_adaptive_task, tasks, jobs,
        lambda task: store.load_adaptive(task.cell),
        lambda task, result: store.store_adaptive(result))


def run_rare_event_tasks(
    tasks: Iterable[RareEventTask],
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> List[RareEventResult]:
    """Execute importance-sampled campaign tasks.

    Same contract as :func:`run_phase_tasks`.

    Args:
        tasks: work items; results come back in the same order.
        jobs: worker processes (see :func:`resolve_jobs`).
        store: optional shared result store.
    """
    if store is None:
        return _run_tasks(execute_rare_event_task, tasks, jobs)
    return _run_tasks_stored(
        execute_rare_event_task, tasks, jobs,
        lambda task: store.load_rare_event(task.cell),
        lambda task, result: store.store_rare_event(result))


def run_scenario_tasks(
    tasks: Iterable[ScenarioTask],
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> List[ScenarioResult]:
    """Execute time-varying channel scenario tasks.

    Same contract as :func:`run_phase_tasks`.

    Args:
        tasks: work items; results come back in the same order.
        jobs: worker processes (see :func:`resolve_jobs`).
        store: optional shared result store.
    """
    if store is None:
        return _run_tasks(execute_scenario_task, tasks, jobs)
    return _run_tasks_stored(
        execute_scenario_task, tasks, jobs,
        lambda task: store.load_scenario(task.cell),
        lambda task, result: store.store_scenario(result))
