"""Parameter-sweep harness used by the benchmarks.

Runs (configuration x mapping) grids, interleaver-size sweeps and the
ablation sweep, and formats results as the paper's Table I.  Everything
returns plain data structures so benchmarks and tests can assert on
them directly.

Sweeps decompose into independent ``(config, mapping, phase)`` work
items executed by :mod:`repro.system.parallel` — pass ``jobs`` to fan
a grid out over worker processes (``0`` = all cores); the default stays
serial and produces identical results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import GilbertElliottParams, coherence_params
from repro.dram.controller import (
    ENGINE_GENERAL,
    OP_READ,
    OP_WRITE,
    POLICY_NAMES,
    ControllerConfig,
)
from repro.dram.energy import (
    EnergyReport,
    combine_interleaver_reports,
    energy_from_tally,
    phase_energy,
)
from repro.dram.presets import TABLE1_CONFIG_NAMES, DramConfig, get_config
from repro.dram.simulator import InterleaverSimResult, simulate_interleaver
from repro.dram.stats import PhaseStats
from repro.interleaver.triangular import TriangularIndexSpace
from repro.interleaver.two_stage import TwoStageConfig
from repro.mapping.base import InterleaverMapping
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping
from repro.system.e2e import E2ECell, E2EResult
from repro.system.parallel import (
    E2ETask,
    InterleaverTask,
    MixedTask,
    PhaseTask,
    run_e2e_tasks,
    run_interleaver_tasks,
    run_mixed_tasks,
    run_phase_tasks,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> sweep deps)
    from repro.store.store import ResultStore

#: Mapping factory signature: (space, geometry) -> mapping.
MappingFactory = Callable[[TriangularIndexSpace, object], InterleaverMapping]


def default_mappings() -> Dict[str, MappingFactory]:
    """The two mappings of Table I."""
    return {
        "row-major": lambda space, geometry: RowMajorMapping(space, geometry),
        "optimized": lambda space, geometry: OptimizedMapping(
            space, geometry, prefer_tall=False
        ),
    }


def ablation_factories() -> Dict[str, MappingFactory]:
    """Optimized-mapping variants with each optimization toggled off."""
    def make(**kwargs: bool) -> MappingFactory:
        return lambda space, geometry: OptimizedMapping(
            space, geometry, prefer_tall=False, **kwargs
        )

    return {
        "full": make(),
        "no-bank-rotation": make(enable_bank_rotation=False),
        "no-tiling": make(enable_tiling=False),
        "no-offset": make(enable_offset=False),
        "tiling-only": make(enable_bank_rotation=False, enable_offset=False),
        "rotation-only": make(enable_tiling=False, enable_offset=False),
    }


def mapping_registry() -> Dict[str, MappingFactory]:
    """All named mapping factories known to the sweep/parallel engine.

    Worker processes resolve :class:`~repro.system.parallel.PhaseTask`
    mapping keys through this registry, so everything listed here can be
    dispatched by name across process boundaries.
    """
    registry = dict(default_mappings())
    registry.update(ablation_factories())
    return registry


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I.

    Attributes:
        config_name: DRAM configuration.
        row_major: simulation result under the row-major mapping.
        optimized: simulation result under the optimized mapping.
    """

    config_name: str
    row_major: InterleaverSimResult
    optimized: InterleaverSimResult

    def cells(self) -> Tuple[float, float, float, float]:
        """(rm write, rm read, opt write, opt read) utilizations."""
        return (
            self.row_major.write_utilization,
            self.row_major.read_utilization,
            self.optimized.write_utilization,
            self.optimized.read_utilization,
        )


def run_table1(
    n: int = 512,
    config_names: Sequence[str] = TABLE1_CONFIG_NAMES,
    policy: Optional[ControllerConfig] = None,
    jobs: Optional[int] = None,
    use_arrays: Optional[bool] = None,
    store: Optional["ResultStore"] = None,
    engine: str = ENGINE_GENERAL,
) -> List[Table1Row]:
    """Regenerate Table I at triangle size ``n``.

    The paper uses 12.5 M elements (``n = 5000``); the default ``n=512``
    (~131 k elements) keeps the run fast while the utilizations are
    already within a few percent of the large-size values (see
    ``benchmarks/bench_interleaver_size.py``).

    Args:
        n: triangular interleaver dimension.
        config_names: subset of Table I configurations to run.
        policy: controller policy overrides applied to every cell.
        jobs: worker processes for the grid (``None``/``1`` serial,
            ``0`` = all cores).
        use_arrays: forwarded to the simulator (``None`` auto-selects
            the vectorized address path).
        store: optional shared result store — cells persisted by any
            prior sweep (including ``energy``) are reused, the rest
            are written back for later runs.
        engine: scheduling-engine hook
            (:data:`~repro.dram.controller.ENGINE_GENERAL` /
            :data:`~repro.dram.controller.ENGINE_KERNEL`); results and
            store keys are identical either way.
    """
    mapping_names = ("row-major", "optimized")
    ops = (OP_WRITE, OP_READ)
    tasks = [
        PhaseTask(config_name=config_name, mapping=mapping_name, op=op, n=n,
                  policy=policy, use_arrays=use_arrays, engine=engine)
        for config_name in config_names
        for mapping_name in mapping_names
        for op in ops
    ]
    stats = run_phase_tasks(tasks, jobs=jobs, store=store)
    rows = []
    cursor = 0
    for config_name in config_names:
        results = {}
        for mapping_name in mapping_names:
            write, read = stats[cursor], stats[cursor + 1]
            cursor += 2
            results[mapping_name] = InterleaverSimResult(
                config_name=config_name,
                mapping_name=mapping_name,
                write=write,
                read=read,
            )
        rows.append(Table1Row(config_name=config_name,
                              row_major=results["row-major"],
                              optimized=results["optimized"]))
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render rows in the layout of the paper's Table I.

    The throughput-limiting phase of each mapping is starred.  The
    limiter is picked *by index* (write unless the read utilization is
    strictly lower), never by comparing floats for equality — value
    comparison used to star both phases on exact ties and, after float
    round-trips, sometimes neither.
    """
    lines = [
        "DRAM           Row-Major Mapping     Optimized Mapping",
        "Configuration  Write      Read       Write      Read",
    ]
    for row in rows:
        cells = row.cells()

        def mark(index: int, limit_index: int) -> str:
            tag = "*" if index == limit_index else " "
            return f"{cells[index]:8.2%}{tag}"

        rm_limit = 0 if cells[0] <= cells[1] else 1
        opt_limit = 2 if cells[2] <= cells[3] else 3
        lines.append(
            f"{row.config_name:14s} {mark(0, rm_limit)} {mark(1, rm_limit)} "
            f"{mark(2, opt_limit)} {mark(3, opt_limit)}"
        )
    lines.append("(* = phase that limits interleaver throughput)")
    return "\n".join(lines)


@dataclass(frozen=True)
class MixedRow:
    """One steady-state mixed-traffic cell (config x mapping).

    Attributes:
        config_name: DRAM configuration.
        mapping_name: address mapping used for both frames.
        utilization: data-bus utilization of the interleaved stream.
        reads: read bursts issued (one frame's worth).
        writes: write bursts issued.
        turnarounds: data-bus direction switches that occurred.
    """

    config_name: str
    mapping_name: str
    utilization: float
    reads: int
    writes: int
    turnarounds: int


def run_mixed_table(
    n: int = 256,
    config_names: Sequence[str] = TABLE1_CONFIG_NAMES,
    group: int = 16,
    policy: Optional[ControllerConfig] = None,
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
    engine: str = ENGINE_GENERAL,
) -> List[MixedRow]:
    """Steady-state interleaved read/write utilization, Table I layout.

    Runs the single-device write(k+1)/read(k) operating mode (the
    engine's turnaround rule set active) for every requested
    configuration under both Table I mappings.  All cells run through
    the unified engine via
    :func:`~repro.dram.simulator.simulate_mixed_interleaver`, so mixed
    rows carry the same ``command_counts``/recording capabilities as
    the homogeneous tables.

    Args:
        n: triangular interleaver dimension.
        config_names: subset of Table I configurations.
        group: same-direction block length of the interleaved stream
            (larger groups amortize the turnaround penalty).
        policy: controller policy overrides applied to every cell.
        jobs: worker processes (``None``/``1`` serial, ``0`` = all cores).
        store: optional shared result store (hits skip simulation).
        engine: scheduling-engine hook (mixed streams schedule through
            the shared general core under either value).
    """
    mapping_names = ("row-major", "optimized")
    tasks = [
        MixedTask(config_name=config_name, mapping=mapping_name, n=n,
                  group=group, policy=policy, engine=engine)
        for config_name in config_names
        for mapping_name in mapping_names
    ]
    results = run_mixed_tasks(tasks, jobs=jobs, store=store)
    return [
        MixedRow(
            config_name=task.config_name,
            mapping_name=task.mapping,
            utilization=result.utilization,
            reads=result.reads,
            writes=result.writes,
            turnarounds=result.turnarounds,
        )
        for task, result in zip(tasks, results)
    ]


def format_mixed_table(rows: Sequence[MixedRow]) -> str:
    """Render mixed-traffic rows next to each other per configuration."""
    lines = [
        f"{'DRAM':14s} {'mapping':10s} {'mixed util':>10s} {'turnarounds':>12s}",
    ]
    for row in rows:
        lines.append(
            f"{row.config_name:14s} {row.mapping_name:10s} "
            f"{row.utilization:10.2%} {row.turnarounds:12d}"
        )
    lines.append("(single device, interleaved write/read with turnaround penalties)")
    return "\n".join(lines)


def _phase_energy_report(config: DramConfig, stats: PhaseStats,
                         op: str) -> EnergyReport:
    """Per-phase energy, preferring the engine's zero-cost tallies."""
    if stats.energy_tally is not None:
        return energy_from_tally(config, stats.energy_tally)
    return phase_energy(config, stats, op)


@dataclass(frozen=True)
class EnergyRow:
    """Energy accounting of one (configuration, mapping) Table I cell.

    Attributes:
        config_name: DRAM configuration.
        mapping_name: address mapping used for both phases.
        result: the underlying simulation result (utilizations — what
            the provisioning Pareto report pairs with the energy).
        write_energy: write-phase energy breakdown.
        read_energy: read-phase energy breakdown.
        combined: whole-frame breakdown (payload counted once,
            makespans added).
    """

    config_name: str
    mapping_name: str
    result: InterleaverSimResult
    write_energy: EnergyReport
    read_energy: EnergyReport
    combined: EnergyReport

    @property
    def pj_per_bit(self) -> float:
        """Frame energy per payload bit — the table's figure of merit."""
        return self.combined.pj_per_bit

    @property
    def avg_power_mw(self) -> float:
        """Average power over the whole frame (write + read makespans)."""
        return self.combined.avg_power_mw


def run_energy_table(
    n: int = 256,
    config_names: Sequence[str] = TABLE1_CONFIG_NAMES,
    policy: Optional[ControllerConfig] = None,
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
    engine: str = ENGINE_GENERAL,
) -> List[EnergyRow]:
    """Energy per interleaver frame, both mappings x every configuration.

    The energy analogue of :func:`run_table1`: each (configuration,
    mapping) cell runs both phases through the scheduling engine, whose
    zero-cost :class:`~repro.dram.stats.EnergyTally` counters feed
    :func:`~repro.dram.energy.energy_from_tally`.  Cells fan out over
    :func:`~repro.system.parallel.run_interleaver_tasks`; results are
    bit-identical for any ``jobs`` value.

    Args:
        n: triangular interleaver dimension.
        config_names: subset of Table I configurations.
        policy: controller policy overrides applied to every cell.
        jobs: worker processes (``None``/``1`` serial, ``0`` = all cores).
        store: optional shared result store — each cell is keyed as its
            two *phase* records, so an ``energy`` run reuses the exact
            entries a prior ``table1`` run at the same ``n`` persisted
            (and vice versa) with zero redundant engine invocations.
        engine: scheduling-engine hook (bit-identical results, shared
            store keys).
    """
    mapping_names = ("row-major", "optimized")
    tasks = [
        InterleaverTask(config_name=config_name, mapping=mapping_name, n=n,
                        policy=policy, engine=engine)
        for config_name in config_names
        for mapping_name in mapping_names
    ]
    results = run_interleaver_tasks(tasks, jobs=jobs, store=store)
    rows = []
    for task, result in zip(tasks, results):
        config = get_config(task.config_name)
        write_energy = _phase_energy_report(config, result.write, OP_WRITE)
        read_energy = _phase_energy_report(config, result.read, OP_READ)
        rows.append(
            EnergyRow(
                config_name=task.config_name,
                mapping_name=task.mapping,
                result=result,
                write_energy=write_energy,
                read_energy=read_energy,
                combined=combine_interleaver_reports(write_energy, read_energy),
            )
        )
    return rows


def format_energy_table(rows: Sequence[EnergyRow]) -> str:
    """Render energy rows as a per-frame breakdown table.

    One line per (configuration, mapping) cell: the four energy
    components in microjoules, the frame total, the energy per payload
    bit (each byte written once and read once counts as one bit of
    payload) and the average power over the frame.
    """
    lines = [
        f"{'DRAM':14s} {'mapping':10s} {'E_act uJ':>9s} {'E_burst uJ':>10s} "
        f"{'E_ref uJ':>9s} {'E_bg uJ':>9s} {'total uJ':>9s} "
        f"{'pJ/bit':>7s} {'avg mW':>8s}",
    ]
    for row in rows:
        combined = row.combined
        lines.append(
            f"{row.config_name:14s} {row.mapping_name:10s} "
            f"{combined.activation_nj / 1000.0:9.3f} "
            f"{combined.burst_nj / 1000.0:10.3f} "
            f"{combined.refresh_nj / 1000.0:9.3f} "
            f"{combined.background_nj / 1000.0:9.3f} "
            f"{combined.total_nj / 1000.0:9.3f} "
            f"{row.pj_per_bit:7.2f} {row.avg_power_mw:8.1f}"
        )
    lines.append("(per interleaver frame: write + read phase, payload counted once)")
    return "\n".join(lines)


#: Default Gilbert-Elliott channel of the e2e table: 60-symbol mean
#: fades covering 0.4 % of the stream, 70 % symbol error rate inside a
#: fade — the midpoint of the campaign CLI's default grid.
DEFAULT_E2E_CHANNEL = coherence_params(60.0, 0.004, p_bad=0.7)


@dataclass(frozen=True)
class E2ERow:
    """One joint co-simulation cell of the e2e table (config x mapping).

    Attributes:
        config_name: DRAM configuration.
        mapping_name: address mapping used for both phases.
        result: the full joint outcome (channel failure rates, DRAM
            phase statistics, per-frame latencies, energy).
    """

    config_name: str
    mapping_name: str
    result: E2EResult


def e2e_grid(
    n: int = 32,
    config_names: Sequence[str] = TABLE1_CONFIG_NAMES,
    frames: int = 40,
    channel: Optional[GilbertElliottParams] = None,
    symbols_per_element: int = 4,
    codeword_symbols: int = 24,
    t_correctable: int = 2,
    seed: int = 2024,
    policy: Optional[ControllerConfig] = None,
) -> List[E2ECell]:
    """Build the (config x mapping) cell grid of the e2e table.

    Every cell shares the channel, interleaver geometry, code and seed,
    so the table isolates the DRAM axis: the channel outcome is common
    while utilization, latency percentiles and energy vary per
    (configuration, mapping).

    Args:
        n: triangular interleaver dimension (the frame must hold whole
            code-word groups: ``n (n+1)/2`` divisible by
            ``codeword_symbols``; 15, 32 and 48 all qualify at the
            defaults).
        config_names: subset of Table I configurations.
        frames: frames co-simulated per cell.
        channel: Gilbert-Elliott parameters
            (default :data:`DEFAULT_E2E_CHANNEL`).
        symbols_per_element: symbols packed into one DRAM burst element.
        codeword_symbols: symbols per code word.
        t_correctable: decoder correction radius.
        seed: channel RNG seed shared by every cell.
        policy: controller policy overrides applied to every cell.

    Raises:
        ValueError: when the interleaver/code dimensions are
            inconsistent (e.g. the frame does not hold whole SRAM
            groups).
    """
    interleaver = TwoStageConfig(triangle_n=n,
                                 symbols_per_element=symbols_per_element,
                                 codeword_symbols=codeword_symbols)
    code = CodewordConfig(n_symbols=codeword_symbols,
                          t_correctable=t_correctable)
    return [
        E2ECell(
            channel=channel or DEFAULT_E2E_CHANNEL,
            interleaver=interleaver,
            code=code,
            config_name=config_name,
            mapping=mapping_name,
            seed=seed,
            frames=frames,
            policy=policy,
        )
        for config_name in config_names
        for mapping_name in ("row-major", "optimized")
    ]


def run_e2e_table(
    n: int = 32,
    config_names: Sequence[str] = TABLE1_CONFIG_NAMES,
    frames: int = 40,
    channel: Optional[GilbertElliottParams] = None,
    symbols_per_element: int = 4,
    codeword_symbols: int = 24,
    t_correctable: int = 2,
    seed: int = 2024,
    policy: Optional[ControllerConfig] = None,
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> List[E2ERow]:
    """The joint downlink -> DRAM co-simulation table.

    The end-to-end analogue of :func:`run_table1`: each cell runs one
    channel-corrupted interleaved frame stream *and* both DRAM phase
    traversals of those frames through
    :func:`~repro.system.e2e.run_e2e`, so one run yields channel
    code-word failure rates, DRAM utilization, per-frame latency
    percentiles and frame energy for every (configuration, mapping)
    cell.  Cells fan out over
    :func:`~repro.system.parallel.run_e2e_tasks`; results are
    bit-identical for any ``jobs`` value.

    Args:
        n: triangular interleaver dimension (see :func:`e2e_grid`).
        config_names: subset of Table I configurations.
        frames: frames co-simulated per cell.
        channel: Gilbert-Elliott parameters
            (default :data:`DEFAULT_E2E_CHANNEL`).
        symbols_per_element: symbols packed into one DRAM burst element.
        codeword_symbols: symbols per code word.
        t_correctable: decoder correction radius.
        seed: channel RNG seed shared by every cell.
        policy: controller policy overrides applied to every cell.
        jobs: worker processes (``None``/``1`` serial, ``0`` = all cores).
        store: optional shared result store (hits skip co-simulation).

    Returns:
        One :class:`E2ERow` per (configuration, mapping) cell, in grid
        order.
    """
    cells = e2e_grid(n=n, config_names=config_names, frames=frames,
                     channel=channel,
                     symbols_per_element=symbols_per_element,
                     codeword_symbols=codeword_symbols,
                     t_correctable=t_correctable, seed=seed, policy=policy)
    results = run_e2e_tasks([E2ETask(cell=cell) for cell in cells], jobs=jobs,
                            store=store)
    return [
        E2ERow(config_name=cell.config_name, mapping_name=cell.mapping,
               result=result)
        for cell, result in zip(cells, results)
    ]


def format_e2e_table(rows: Sequence[E2ERow]) -> str:
    """Render e2e rows as the joint co-simulation text table.

    One line per (configuration, mapping) cell: the interleaved
    code-word failure rate and pooled gain from the channel side, the
    write/read data-bus utilizations, the p50/p99 per-frame write and
    read service times in microseconds (nearest-rank percentiles, see
    :func:`~repro.system.e2e.latency_percentile_ps`) and the frame
    energy per payload bit.
    """
    lines = [
        f"{'DRAM':14s} {'mapping':10s} {'CWER intl':>10s} {'gain':>7s} "
        f"{'wr util':>8s} {'rd util':>8s} "
        f"{'wr p50us':>9s} {'wr p99us':>9s} {'rd p50us':>9s} {'rd p99us':>9s} "
        f"{'pJ/bit':>7s}",
    ]
    for row in rows:
        result = row.result
        gain = result.gain
        gain_text = "inf" if math.isinf(gain) else f"{gain:.1f}x"
        lines.append(
            f"{row.config_name:14s} {row.mapping_name:10s} "
            f"{result.cwer_interleaved:10.2e} {gain_text:>7s} "
            f"{result.write_utilization:8.2%} {result.read_utilization:8.2%} "
            f"{result.write_latency_percentile(50) / 1e6:9.3f} "
            f"{result.write_latency_percentile(99) / 1e6:9.3f} "
            f"{result.read_latency_percentile(50) / 1e6:9.3f} "
            f"{result.read_latency_percentile(99) / 1e6:9.3f} "
            f"{result.energy.pj_per_bit:7.2f}"
        )
    lines.append("(one joint run per cell: channel FER + DRAM phase "
                 "utilization/latency/energy)")
    return "\n".join(lines)


@dataclass(frozen=True)
class PolicyRow:
    """One (configuration, discipline) cell of the policy-axis table.

    Attributes:
        config_name: DRAM configuration.
        discipline: scheduling discipline the cell ran under (one of
            :data:`~repro.dram.policy.POLICY_NAMES`).
        write_utilization: write-phase data-bus utilization.
        read_utilization: read-phase data-bus utilization.
    """

    config_name: str
    discipline: str
    write_utilization: float
    read_utilization: float

    @property
    def min_utilization(self) -> float:
        """The throughput-limiting utilization of the cell."""
        return min(self.write_utilization, self.read_utilization)


def run_policy_table(
    n: int = 256,
    config_names: Sequence[str] = TABLE1_CONFIG_NAMES,
    disciplines: Sequence[str] = POLICY_NAMES,
    mapping: str = "optimized",
    policy: Optional[ControllerConfig] = None,
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
    engine: str = ENGINE_GENERAL,
) -> List[PolicyRow]:
    """The scheduling-policy axis of Table I.

    Runs every requested configuration under every requested
    discipline (same mapping, both phases) so the disciplines'
    throughput cost is directly comparable per device: open-page is the
    paper's operating point, closed-page bounds the row-locality
    benefit the interleaver mappings were designed to create, and
    FR-FCFS-cap / bank partitioning sit between.

    Args:
        n: triangular interleaver dimension.
        config_names: subset of Table I configurations.
        disciplines: subset of
            :data:`~repro.dram.policy.POLICY_NAMES` (default: all
            four).
        mapping: the Table I mapping every cell uses (the policy axis
            varies the scheduler, not the layout).
        policy: base controller policy the per-cell discipline is
            grafted onto (``None`` = defaults; its ``cap`` applies to
            the FR-FCFS-cap cells).
        jobs: worker processes (``None``/``1`` serial, ``0`` = all cores).
        store: optional shared result store — the open-page cells key
            identically to plain Table I phases at the same ``n``, so a
            prior ``table1`` run pre-warms this sweep's default column.
        engine: scheduling-engine hook (disciplines the kernel does not
            implement delegate to the general engine; results are
            identical either way).

    Raises:
        ValueError: on an unknown discipline name (via
            :class:`~repro.dram.controller.ControllerConfig`).
    """
    base = policy or ControllerConfig()
    tasks = [
        PhaseTask(config_name=config_name, mapping=mapping, op=op, n=n,
                  policy=replace(base, discipline=discipline), engine=engine)
        for config_name in config_names
        for discipline in disciplines
        for op in (OP_WRITE, OP_READ)
    ]
    stats = run_phase_tasks(tasks, jobs=jobs, store=store)
    rows = []
    cursor = 0
    for config_name in config_names:
        for discipline in disciplines:
            write, read = stats[cursor], stats[cursor + 1]
            cursor += 2
            rows.append(
                PolicyRow(
                    config_name=config_name,
                    discipline=discipline,
                    write_utilization=write.utilization,
                    read_utilization=read.utilization,
                )
            )
    return rows


def format_policy_table(rows: Sequence[PolicyRow]) -> str:
    """Render policy rows grouped per configuration.

    One line per (configuration, discipline) cell: both phase
    utilizations and the throughput-limiting minimum — the figure the
    disciplines are compared on.
    """
    lines = [
        f"{'DRAM':14s} {'discipline':14s} {'write':>8s} {'read':>8s} "
        f"{'limit':>8s}",
    ]
    for row in rows:
        lines.append(
            f"{row.config_name:14s} {row.discipline:14s} "
            f"{row.write_utilization:8.2%} {row.read_utilization:8.2%} "
            f"{row.min_utilization:8.2%}"
        )
    lines.append("(limit = min(write, read), the interleaver-throughput bound)")
    return "\n".join(lines)


@dataclass(frozen=True)
class SizeSweepPoint:
    """One (size, mapping) sample of the size sweep."""

    n: int
    elements: int
    mapping_name: str
    write_utilization: float
    read_utilization: float

    @property
    def min_utilization(self) -> float:
        """The throughput-limiting utilization of the sample."""
        return min(self.write_utilization, self.read_utilization)


def sweep_sizes(
    config: DramConfig,
    sizes: Sequence[int],
    mapping_factories: Optional[Dict[str, MappingFactory]] = None,
    policy: Optional[ControllerConfig] = None,
    jobs: Optional[int] = None,
) -> List[SizeSweepPoint]:
    """Utilization vs. interleaver dimension (paper: "differ only slightly").

    With ``jobs`` set, the (size x mapping) grid fans out over worker
    processes when the default Table I mappings are swept on a preset
    configuration; custom factories or configurations fall back to the
    serial path (callables do not travel across processes).

    Args:
        config: DRAM configuration to sweep on.
        sizes: triangular interleaver dimensions to sample.
        mapping_factories: named mapping constructors
            (default: the two Table I mappings).
        policy: controller policy overrides applied to every sample.
        jobs: worker processes (``None``/``1`` serial, ``0`` = all cores).

    Returns:
        One point per (size, mapping) sample, sizes outermost.
    """
    factories = mapping_factories or default_mappings()
    parallelizable = (
        mapping_factories is None and config.name in TABLE1_CONFIG_NAMES
    )
    if parallelizable:
        names = list(factories)
        tasks = [
            PhaseTask(config_name=config.name, mapping=name, op=op, n=n,
                      policy=policy)
            for n in sizes
            for name in names
            for op in (OP_WRITE, OP_READ)
        ]
        stats = run_phase_tasks(tasks, jobs=jobs)
        points = []
        cursor = 0
        for n in sizes:
            elements = TriangularIndexSpace(n).num_elements
            for name in names:
                write, read = stats[cursor], stats[cursor + 1]
                cursor += 2
                points.append(
                    SizeSweepPoint(
                        n=n,
                        elements=elements,
                        mapping_name=name,
                        write_utilization=write.utilization,
                        read_utilization=read.utilization,
                    )
                )
        return points

    points = []
    for n in sizes:
        space = TriangularIndexSpace(n)
        for name, factory in factories.items():
            result = simulate_interleaver(config, factory(space, config.geometry), policy)
            points.append(
                SizeSweepPoint(
                    n=n,
                    elements=space.num_elements,
                    mapping_name=name,
                    write_utilization=result.write_utilization,
                    read_utilization=result.read_utilization,
                )
            )
    return points


@dataclass(frozen=True)
class AblationPoint:
    """One (configuration, variant) sample of the ablation sweep."""

    config_name: str
    variant: str
    write_utilization: float
    read_utilization: float

    @property
    def min_utilization(self) -> float:
        """The throughput-limiting utilization of the variant."""
        return min(self.write_utilization, self.read_utilization)


#: Ablation sweeps default to shallow, hardware-realistic queues: with
#: deep queues a clever scheduler can partially reconstruct the bank
#: rotation by reordering, masking exactly the effect being measured.
ABLATION_POLICY = ControllerConfig(queue_depth=16, per_bank_depth=16)


def sweep_ablation(
    config_names: Sequence[str] = ("DDR4-3200", "LPDDR4-4266"),
    n: int = 256,
    variants: Optional[Sequence[str]] = None,
    policy: Optional[ControllerConfig] = None,
    jobs: Optional[int] = None,
    engine: str = ENGINE_GENERAL,
) -> List[AblationPoint]:
    """Quantify each optimization's contribution (paper Sec. II).

    Args:
        config_names: configurations to ablate on (default: the two most
            mapping-sensitive ones).
        n: triangular interleaver dimension.
        variants: subset of :func:`ablation_factories` keys (default:
            all six).
        policy: controller policy; ``None`` selects the shallow-queue
            :data:`ABLATION_POLICY` (deep queues would mask the very
            effects the ablation measures — pass an explicit
            ``ControllerConfig()`` to get them anyway).
        jobs: worker processes (``None``/``1`` serial, ``0`` = all cores).
        engine: scheduling-engine hook (bit-identical results).
    """
    if policy is None:
        policy = ABLATION_POLICY
    variant_names = list(variants) if variants is not None else list(ablation_factories())
    known = ablation_factories()
    unknown = [v for v in variant_names if v not in known]
    if unknown:
        raise KeyError(f"unknown ablation variants {unknown}; known: {sorted(known)}")
    tasks = [
        PhaseTask(config_name=config_name, mapping=variant, op=op, n=n,
                  policy=policy, engine=engine)
        for config_name in config_names
        for variant in variant_names
        for op in (OP_WRITE, OP_READ)
    ]
    stats = run_phase_tasks(tasks, jobs=jobs)
    points = []
    cursor = 0
    for config_name in config_names:
        for variant in variant_names:
            write, read = stats[cursor], stats[cursor + 1]
            cursor += 2
            points.append(
                AblationPoint(
                    config_name=config_name,
                    variant=variant,
                    write_utilization=write.utilization,
                    read_utilization=read.utilization,
                )
            )
    return points
