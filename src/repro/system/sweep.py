"""Parameter-sweep harness used by the benchmarks.

Runs (configuration x mapping) grids and interleaver-size sweeps, and
formats results as the paper's Table I.  Everything returns plain data
structures so benchmarks and tests can assert on them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.dram.controller import ControllerConfig
from repro.dram.presets import TABLE1_CONFIG_NAMES, DramConfig, get_config
from repro.dram.simulator import InterleaverSimResult, simulate_interleaver
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.base import InterleaverMapping
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping

#: Mapping factory signature: (space, geometry) -> mapping.
MappingFactory = Callable[[TriangularIndexSpace, object], InterleaverMapping]


def default_mappings() -> Dict[str, MappingFactory]:
    """The two mappings of Table I."""
    return {
        "row-major": lambda space, geometry: RowMajorMapping(space, geometry),
        "optimized": lambda space, geometry: OptimizedMapping(
            space, geometry, prefer_tall=False
        ),
    }


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table I.

    Attributes:
        config_name: DRAM configuration.
        row_major: simulation result under the row-major mapping.
        optimized: simulation result under the optimized mapping.
    """

    config_name: str
    row_major: InterleaverSimResult
    optimized: InterleaverSimResult

    def cells(self) -> Tuple[float, float, float, float]:
        """(rm write, rm read, opt write, opt read) utilizations."""
        return (
            self.row_major.write_utilization,
            self.row_major.read_utilization,
            self.optimized.write_utilization,
            self.optimized.read_utilization,
        )


def run_table1(
    n: int = 512,
    config_names: Sequence[str] = TABLE1_CONFIG_NAMES,
    policy: Optional[ControllerConfig] = None,
) -> List[Table1Row]:
    """Regenerate Table I at triangle size ``n``.

    The paper uses 12.5 M elements (``n = 5000``); the default ``n=512``
    (~131 k elements) keeps the pure-Python run in minutes while the
    utilizations are already within a few percent of the large-size
    values (see ``benchmarks/bench_interleaver_size.py``).
    """
    space = TriangularIndexSpace(n)
    mappings = default_mappings()
    rows = []
    for name in config_names:
        config = get_config(name)
        row_major = simulate_interleaver(
            config, mappings["row-major"](space, config.geometry), policy
        )
        optimized = simulate_interleaver(
            config, mappings["optimized"](space, config.geometry), policy
        )
        rows.append(Table1Row(config_name=name, row_major=row_major, optimized=optimized))
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render rows in the layout of the paper's Table I."""
    lines = [
        "DRAM           Row-Major Mapping     Optimized Mapping",
        "Configuration  Write      Read       Write      Read",
    ]
    for row in rows:
        rm_w, rm_r, opt_w, opt_r = row.cells()
        rm_bold = min(rm_w, rm_r)
        opt_bold = min(opt_w, opt_r)

        def mark(value: float, bold: float) -> str:
            tag = "*" if value == bold else " "
            return f"{value:8.2%}{tag}"

        lines.append(
            f"{row.config_name:14s} {mark(rm_w, rm_bold)} {mark(rm_r, rm_bold)} "
            f"{mark(opt_w, opt_bold)} {mark(opt_r, opt_bold)}"
        )
    lines.append("(* = phase that limits interleaver throughput)")
    return "\n".join(lines)


@dataclass(frozen=True)
class SizeSweepPoint:
    """One (size, mapping) sample of the size sweep."""

    n: int
    elements: int
    mapping_name: str
    write_utilization: float
    read_utilization: float

    @property
    def min_utilization(self) -> float:
        return min(self.write_utilization, self.read_utilization)


def sweep_sizes(
    config: DramConfig,
    sizes: Sequence[int],
    mapping_factories: Optional[Dict[str, MappingFactory]] = None,
    policy: Optional[ControllerConfig] = None,
) -> List[SizeSweepPoint]:
    """Utilization vs. interleaver dimension (paper: "differ only slightly")."""
    factories = mapping_factories or default_mappings()
    points = []
    for n in sizes:
        space = TriangularIndexSpace(n)
        for name, factory in factories.items():
            result = simulate_interleaver(config, factory(space, config.geometry), policy)
            points.append(
                SizeSweepPoint(
                    n=n,
                    elements=space.num_elements,
                    mapping_name=name,
                    write_utilization=result.write_utilization,
                    read_utilization=result.read_utilization,
                )
            )
    return points


def ablation_factories() -> Dict[str, MappingFactory]:
    """Optimized-mapping variants with each optimization toggled off."""
    def make(**kwargs) -> MappingFactory:
        return lambda space, geometry: OptimizedMapping(
            space, geometry, prefer_tall=False, **kwargs
        )

    return {
        "full": make(),
        "no-bank-rotation": make(enable_bank_rotation=False),
        "no-tiling": make(enable_tiling=False),
        "no-offset": make(enable_offset=False),
        "tiling-only": make(enable_bank_rotation=False, enable_offset=False),
        "rotation-only": make(enable_tiling=False, enable_offset=False),
    }
