"""Adaptive-precision and rare-event campaign estimators.

The naive Monte Carlo campaign of :mod:`repro.system.campaign` spends a
fixed frame budget per cell, which wastes frames on easy cells and
returns uselessly wide Wilson intervals on deep-fade ones.  This module
adds the three estimators ROADMAP item 1 calls for, all riding the
exact channel/decoder machinery the naive path proved correct:

* **adaptive stopping** (:class:`AdaptiveCell` /
  :func:`evaluate_adaptive`): run a cell in frame batches until the
  interleaved arm's 95 % Wilson half-width reaches a target, absolute
  (``ci_width``) or relative (``ci_rel``).  The batched channel
  consumes RNG frame-sequentially and every
  :class:`~repro.system.campaign.CellResult` field is an integer sum or
  max, so a cell stopped after N frames is **bit-identical** to a
  fixed-frame run of N frames — the differential battery in
  ``tests/system/test_adaptive.py`` pins that at odd batch boundaries.

* a **rare-event estimator** (:class:`RareEventCell` /
  :func:`evaluate_rare_event`): importance sampling on the
  Gilbert–Elliott *transition* probabilities.  Frames are drawn as
  independent trajectories from a fade-boosted proposal chain and
  reweighted by the exact per-trajectory likelihood ratio
  :func:`frame_weight`, which is a pure function of the four transition
  counts — the error draw given the states is untouched (``p_bad`` /
  ``p_good`` must match between chains), and the initial state is drawn
  from the *true* chain's stationary law so its ratio term is exactly
  one.  Differential-tested against naive MC (overlapping CIs) and
  against exhaustive trajectory enumeration (exact-mean agreement).

* **time-varying channel scenarios** (:class:`ScenarioCell` /
  :func:`evaluate_scenario`): piecewise Gilbert–Elliott parameter
  trajectories — e.g. the elevation-dependent contact pass of
  :func:`contact_pass_segments` — compiled down to the existing batched
  channel path, one :class:`~repro.system.downlink.OpticalDownlink` per
  segment sharing a single generator, proven bit-identical to the
  scalar per-segment reference :func:`evaluate_scenario_reference`.

Every estimator keeps the campaign design rules: cells are frozen
declarative dataclasses of primitives (pickle cheaply, rebuild all
state in the worker), randomness derives from the cell seed alone, and
results round-trip bit-identically through the content-addressed store
(:mod:`repro.store.records`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, cast

import numpy as np
from numpy.typing import NDArray

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import GilbertElliottParams, coherence_params
from repro.interleaver.two_stage import TwoStageConfig, TwoStageInterleaver
from repro.system.campaign import CampaignCell, CellResult, wilson_interval
from repro.system.downlink import DownlinkResult, OpticalDownlink


def _check_dimensions(interleaver: TwoStageConfig, code: CodewordConfig) -> None:
    """Fail fast when interleaver grouping and code length disagree.

    The same check :class:`~repro.system.downlink.OpticalDownlink`
    performs, hoisted to cell construction so a bad grid dies with a
    field-naming error before any worker is spawned.
    """
    if interleaver.codeword_symbols != code.n_symbols:
        raise ValueError(
            "interleaver.codeword_symbols and code.n_symbols disagree: "
            f"{interleaver.codeword_symbols} vs {code.n_symbols}"
        )


def _channel_dict(params: GilbertElliottParams,
                  prefix: str = "") -> Dict[str, object]:
    """Flat JSON-friendly form of one parameter set, keys prefixed."""
    return {
        prefix + "p_g2b": params.p_g2b,
        prefix + "p_b2g": params.p_b2g,
        prefix + "p_bad": params.p_bad,
        prefix + "p_good": params.p_good,
    }


def _channel_from_dict(data: Dict[str, object],
                       prefix: str = "") -> GilbertElliottParams:
    """Inverse of :func:`_channel_dict`."""
    return GilbertElliottParams(
        p_g2b=float(cast(float, data[prefix + "p_g2b"])),
        p_b2g=float(cast(float, data[prefix + "p_b2g"])),
        p_bad=float(cast(float, data[prefix + "p_bad"])),
        p_good=float(cast(float, data[prefix + "p_good"])),
    )


def _geometry_dict(interleaver: TwoStageConfig,
                   code: CodewordConfig) -> Dict[str, object]:
    """Flat JSON-friendly form of the interleaver/code axes."""
    return {
        "triangle_n": interleaver.triangle_n,
        "symbols_per_element": interleaver.symbols_per_element,
        "codeword_symbols": interleaver.codeword_symbols,
        "n_symbols": code.n_symbols,
        "t_correctable": code.t_correctable,
    }


def _interleaver_from_dict(data: Dict[str, object]) -> TwoStageConfig:
    """Rebuild the interleaver axis of :func:`_geometry_dict`."""
    return TwoStageConfig(
        triangle_n=int(cast(int, data["triangle_n"])),
        symbols_per_element=int(cast(int, data["symbols_per_element"])),
        codeword_symbols=int(cast(int, data["codeword_symbols"])),
    )


def _code_from_dict(data: Dict[str, object]) -> CodewordConfig:
    """Rebuild the code axis of :func:`_geometry_dict`."""
    return CodewordConfig(
        n_symbols=int(cast(int, data["n_symbols"])),
        t_correctable=int(cast(int, data["t_correctable"])),
    )


def _format_ci(low: float, high: float) -> str:
    """Compact ``[low,high]`` interval cell (same format as the campaign table)."""
    return f"[{low:.2e},{high:.2e}]"


def _format_gain(gain: float) -> str:
    """Gain column text (``inf`` = every baseline failure rescued)."""
    return "inf" if math.isinf(gain) else f"{gain:.1f}x"


# ---------------------------------------------------------------------------
# adaptive stopping
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AdaptiveCell:
    """One adaptive-stopping Monte Carlo experiment.

    The cell runs in ``batch_frames`` chunks until the interleaved
    arm's 95 % Wilson half-width meets a target or the ``max_frames``
    budget is exhausted.  At least one of the two targets must be set;
    when both are, whichever is satisfied first stops the cell.

    Attributes:
        channel: Gilbert–Elliott fade statistics.
        interleaver: two-stage interleaver dimensions.
        code: code-word length and correction radius.
        seed: RNG seed; the cell's entire randomness derives from it.
        max_frames: frame budget — the fixed-frame count an equivalent
            naive cell would spend.
        ci_width: absolute target — stop once the half-width is at most
            this value.
        ci_rel: relative target — stop once the half-width is at most
            ``ci_rel`` times the observed failure rate (only meaningful
            after the first failure; a zero-failure cell never satisfies
            it).
        batch_frames: frames simulated between half-width checks.
    """

    channel: GilbertElliottParams
    interleaver: TwoStageConfig
    code: CodewordConfig
    seed: int
    max_frames: int
    ci_width: Optional[float] = None
    ci_rel: Optional[float] = None
    batch_frames: int = 128

    def __post_init__(self) -> None:
        if self.max_frames < 1:
            raise ValueError(f"max_frames must be >= 1, got {self.max_frames}")
        if self.batch_frames < 1:
            raise ValueError(
                f"batch_frames must be >= 1, got {self.batch_frames}")
        if self.ci_width is None and self.ci_rel is None:
            raise ValueError(
                "at least one stopping target (ci_width or ci_rel) must be set")
        if self.ci_width is not None and self.ci_width <= 0:
            raise ValueError(f"ci_width must be positive, got {self.ci_width}")
        if self.ci_rel is not None and self.ci_rel <= 0:
            raise ValueError(f"ci_rel must be positive, got {self.ci_rel}")
        _check_dimensions(self.interleaver, self.code)

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly description (also the store-config basis)."""
        data = _channel_dict(self.channel)
        data.update(_geometry_dict(self.interleaver, self.code))
        data.update(
            seed=self.seed,
            max_frames=self.max_frames,
            ci_width=self.ci_width,
            ci_rel=self.ci_rel,
            batch_frames=self.batch_frames,
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AdaptiveCell":
        """Inverse of :meth:`to_dict`."""
        ci_width = data["ci_width"]
        ci_rel = data["ci_rel"]
        return cls(
            channel=_channel_from_dict(data),
            interleaver=_interleaver_from_dict(data),
            code=_code_from_dict(data),
            seed=int(cast(int, data["seed"])),
            max_frames=int(cast(int, data["max_frames"])),
            ci_width=None if ci_width is None else float(cast(float, ci_width)),
            ci_rel=None if ci_rel is None else float(cast(float, ci_rel)),
            batch_frames=int(cast(int, data["batch_frames"])),
        )

    def fixed_cell(self, frames: int) -> CampaignCell:
        """The naive fixed-frame cell this one is bit-identical to at ``frames``."""
        return CampaignCell(channel=self.channel, interleaver=self.interleaver,
                            code=self.code, seed=self.seed, frames=frames)


def half_width(failures: int, trials: int) -> float:
    """Half-width of the 95 % Wilson interval (the stopping criterion).

    Defined on the *reported* interval — ``(high - low) / 2`` after the
    [0, 1] clipping — so the stopping rule talks about exactly the
    numbers the campaign table prints.

    Args:
        failures: observed failure count.
        trials: number of Bernoulli trials (> 0).
    """
    low, high = wilson_interval(failures, trials)
    return (high - low) / 2.0


def _target_met(cell: AdaptiveCell, failures: int, trials: int) -> bool:
    """Has the cell's stopping target been reached at these counts?"""
    width = half_width(failures, trials)
    if cell.ci_width is not None and width <= cell.ci_width:
        return True
    if cell.ci_rel is not None and failures:
        if width <= cell.ci_rel * (failures / trials):
            return True
    return False


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of one adaptive-stopping cell.

    Attributes:
        cell: the adaptive experiment description.
        result: the counts, packaged as the
            :class:`~repro.system.campaign.CellResult` of the
            equivalent fixed-frame cell (``result.cell.frames`` is the
            frame count actually spent) — bit-identical to evaluating
            that cell directly.
        batches: frame batches simulated before stopping.
        converged: whether a stopping target was met within the budget
            (``False`` = the ``max_frames`` cap fired).
    """

    cell: AdaptiveCell
    result: CellResult
    batches: int
    converged: bool

    @property
    def frames_used(self) -> int:
        """Frames actually simulated."""
        return self.result.cell.frames

    @property
    def frames_saved_ratio(self) -> float:
        """Budgeted over spent frames (>= 1; higher = more saved)."""
        return self.cell.max_frames / self.result.cell.frames

    @property
    def achieved_half_width(self) -> float:
        """Wilson half-width of the interleaved arm at stop time."""
        return half_width(self.result.failed_interleaved,
                          self.result.codewords)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (store payloads)."""
        return {
            "cell": self.cell.to_dict(),
            "result": self.result.to_dict(),
            "batches": self.batches,
            "converged": self.converged,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AdaptiveResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            cell=AdaptiveCell.from_dict(
                cast(Dict[str, object], data["cell"])),
            result=CellResult.from_dict(
                cast(Dict[str, object], data["result"])),
            batches=int(cast(int, data["batches"])),
            converged=bool(data["converged"]),
        )


def evaluate_adaptive(cell: AdaptiveCell) -> AdaptiveResult:
    """Run one adaptive cell to its stopping target (also the worker entry).

    Batches run through the same
    :meth:`~repro.system.downlink.OpticalDownlink.run_batched` path as
    the naive campaign on one shared generator.  RNG consumption is
    frame-sequential regardless of chunking and every accumulated field
    is an integer sum or max, so the returned counts are bit-identical
    to a fixed-frame run of ``frames_used`` frames — stopping early
    changes *where* the campaign stops reading the random stream, never
    what it read.
    """
    downlink = OpticalDownlink(
        cell.interleaver,
        cell.code,
        cell.channel,
        rng=np.random.default_rng(cell.seed),
    )
    codewords = 0
    failed_interleaved = 0
    failed_baseline = 0
    error_symbols = 0
    max_burst = 0
    max_errors_interleaved = 0
    max_errors_baseline = 0
    frames_run = 0
    batches = 0
    converged = False
    while frames_run < cell.max_frames:
        block = min(cell.batch_frames, cell.max_frames - frames_run)
        outcome = downlink.run_batched(block)
        batches += 1
        frames_run += block
        codewords += outcome.interleaved.codewords
        failed_interleaved += outcome.interleaved.failed
        failed_baseline += outcome.baseline.failed
        error_symbols += outcome.channel_profile.error_symbols
        max_burst = max(max_burst, outcome.channel_profile.max_burst)
        max_errors_interleaved = max(max_errors_interleaved,
                                     outcome.max_errors_interleaved)
        max_errors_baseline = max(max_errors_baseline,
                                  outcome.max_errors_baseline)
        if _target_met(cell, failed_interleaved, codewords):
            converged = True
            break
    result = CellResult(
        cell=cell.fixed_cell(frames_run),
        codewords=codewords,
        failed_interleaved=failed_interleaved,
        failed_baseline=failed_baseline,
        error_symbols=error_symbols,
        max_burst=max_burst,
        max_errors_interleaved=max_errors_interleaved,
        max_errors_baseline=max_errors_baseline,
    )
    return AdaptiveResult(cell=cell, result=result, batches=batches,
                          converged=converged)


def format_adaptive(results: Sequence[AdaptiveResult]) -> str:
    """Render adaptive results as a per-cell text table.

    One row per cell with the frames spent against the budget, the
    achieved half-width, the interleaved failure rate with its Wilson
    interval and the gain; the footer totals the frame savings.
    """
    header = (
        f"{'fade':>6s} {'frac':>7s} {'n':>4s} {'seed':>6s} "
        f"{'frames':>13s} {'half-width':>10s} "
        f"{'CWER intl':>10s} {'95% CI':>21s} {'gain':>8s} {'conv':>4s}"
    )
    lines = [header]
    total_used = 0
    total_budget = 0
    for outcome in results:
        cell = outcome.cell
        result = outcome.result
        total_used += outcome.frames_used
        total_budget += cell.max_frames
        frames_text = f"{outcome.frames_used}/{cell.max_frames}"
        lines.append(
            f"{cell.channel.mean_fade_symbols:6.0f} "
            f"{cell.channel.stationary_bad:7.4f} "
            f"{cell.interleaver.triangle_n:4d} {cell.seed:6d} "
            f"{frames_text:>13s} {outcome.achieved_half_width:10.2e} "
            f"{result.failure_rate_interleaved:10.2e} "
            f"{_format_ci(*result.interval_interleaved):>21s} "
            f"{_format_gain(result.gain):>8s} "
            f"{'yes' if outcome.converged else 'cap':>4s}"
        )
    if total_used:
        ratio = total_budget / total_used
        lines.append(f"(adaptive stopping spent {total_used} of "
                     f"{total_budget} budgeted frames — {ratio:.1f}x fewer; "
                     f"conv = target met before the frame cap)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# rare-event importance sampling
# ---------------------------------------------------------------------------


def default_proposal(params: GilbertElliottParams,
                     boost: float) -> GilbertElliottParams:
    """The standard fade-boosted proposal chain for importance sampling.

    Fades become ``boost`` times more frequent (``p_g2b`` scaled up,
    clipped to one) and ``boost`` times longer (``p_b2g`` scaled down),
    while the in-state error probabilities stay untouched — the
    likelihood ratio then depends on the state trajectory alone.

    Args:
        params: the true channel.
        boost: fade tilt factor (>= 1; 1 = no tilt).
    """
    if boost < 1.0:
        raise ValueError(f"boost must be >= 1, got {boost}")
    return GilbertElliottParams(
        p_g2b=min(1.0, params.p_g2b * boost),
        p_b2g=params.p_b2g / boost,
        p_bad=params.p_bad,
        p_good=params.p_good,
    )


def transition_counts(states: NDArray[np.bool_]) -> Tuple[int, int, int, int]:
    """Count the four transition types along one state trajectory.

    Args:
        states: boolean fade trajectory (``True`` = bad state).

    Returns:
        ``(n_gg, n_gb, n_bg, n_bb)`` — good->good, good->bad,
        bad->good and bad->bad transition counts; they sum to
        ``states.size - 1``.
    """
    previous = states[:-1]
    current = states[1:]
    n_bb = int(np.count_nonzero(previous & current))
    n_bg = int(np.count_nonzero(previous)) - n_bb
    n_gb = int(np.count_nonzero(current)) - n_bb
    n_gg = (int(states.size) - 1) - n_bb - n_bg - n_gb
    return n_gg, n_gb, n_bg, n_bb


def _transition_ratios(
        true: GilbertElliottParams,
        proposal: GilbertElliottParams) -> Tuple[float, float, float, float]:
    """Per-transition likelihood ratios ``p/q`` of the two chains.

    Returns:
        ``(r_gg, r_gb, r_bg, r_bb)`` matching the
        :func:`transition_counts` order.  A stay-ratio whose proposal
        probability is zero (``q.p_g2b == 1`` or ``q.p_b2g == 1``) is
        returned as ``0.0``: the matching transition then never occurs
        under the proposal, and ``0.0 ** 0 == 1`` keeps the weight
        exact.
    """
    r_gb = true.p_g2b / proposal.p_g2b
    r_bg = true.p_b2g / proposal.p_b2g
    stay_good = 1.0 - proposal.p_g2b
    stay_bad = 1.0 - proposal.p_b2g
    r_gg = (1.0 - true.p_g2b) / stay_good if stay_good > 0.0 else 0.0
    r_bb = (1.0 - true.p_b2g) / stay_bad if stay_bad > 0.0 else 0.0
    return r_gg, r_gb, r_bg, r_bb


def frame_weight(true: GilbertElliottParams, proposal: GilbertElliottParams,
                 states: NDArray[np.bool_]) -> float:
    """Exact likelihood ratio ``p(states) / q(states)`` of one trajectory.

    Both chains are evaluated *conditional on the initial state*: the
    estimator draws the initial state from the true chain's stationary
    law, so the initial-state ratio is exactly one and the weight is a
    pure product over the four transition counts.  This is the single
    home of the reweighting math — the enumeration battery in
    ``tests/system/test_adaptive.py`` checks
    ``q(trajectory) * weight == p(trajectory)`` for every trajectory of
    a small frame.

    Args:
        true: the channel being estimated.
        proposal: the chain the trajectory was sampled from.
        states: boolean fade trajectory (``True`` = bad state).
    """
    n_gg, n_gb, n_bg, n_bb = transition_counts(states)
    r_gg, r_gb, r_bg, r_bb = _transition_ratios(true, proposal)
    return (r_gg ** n_gg) * (r_gb ** n_gb) * (r_bg ** n_bg) * (r_bb ** n_bb)


@dataclass(frozen=True)
class RareEventCell:
    """One importance-sampled Monte Carlo experiment.

    Frames are independent trajectories of the ``proposal`` chain
    (initial state from the *true* chain's stationary law), reweighted
    by :func:`frame_weight`.  The in-state error probabilities must
    match between the chains — the error draw conditional on the states
    is then identically distributed and needs no reweighting.

    Attributes:
        channel: the true Gilbert–Elliott fade statistics.
        proposal: the fade-boosted sampling chain (see
            :func:`default_proposal`).
        interleaver: two-stage interleaver dimensions.
        code: code-word length and correction radius.
        seed: RNG seed; the cell's entire randomness derives from it.
        frames: independent proposal trajectories to sample.
    """

    channel: GilbertElliottParams
    proposal: GilbertElliottParams
    interleaver: TwoStageConfig
    code: CodewordConfig
    seed: int
    frames: int

    def __post_init__(self) -> None:
        if self.frames < 1:
            raise ValueError(f"frames must be >= 1, got {self.frames}")
        if (self.proposal.p_bad != self.channel.p_bad
                or self.proposal.p_good != self.channel.p_good):
            raise ValueError(
                "proposal must keep the channel's in-state error "
                "probabilities (the likelihood ratio covers transitions "
                f"only): p_bad {self.proposal.p_bad} vs "
                f"{self.channel.p_bad}, p_good {self.proposal.p_good} vs "
                f"{self.channel.p_good}")
        _check_dimensions(self.interleaver, self.code)

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly description (also the store-config basis)."""
        data = _channel_dict(self.channel)
        data.update(_channel_dict(self.proposal, prefix="q_"))
        data.update(_geometry_dict(self.interleaver, self.code))
        data.update(seed=self.seed, frames=self.frames)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RareEventCell":
        """Inverse of :meth:`to_dict`."""
        return cls(
            channel=_channel_from_dict(data),
            proposal=_channel_from_dict(data, prefix="q_"),
            interleaver=_interleaver_from_dict(data),
            code=_code_from_dict(data),
            seed=int(cast(int, data["seed"])),
            frames=int(cast(int, data["frames"])),
        )


def _sample_frame_states(rng: np.random.Generator,
                         params: GilbertElliottParams,
                         row: NDArray[np.bool_], init_bad: bool) -> None:
    """Fill ``row`` with one independent frame trajectory of ``params``.

    The same alternating-geometric-dwell construction as the channel's
    carry-over sampler, but frame-local: each frame restarts from its
    own initial state and a dwell running past the frame boundary is
    simply truncated.  Truncation keeps the trajectory law exact — the
    tail event "the dwell covers the remaining ``k`` symbols" has
    probability ``(1 - p_leave) ** (k - 1)``, exactly the product of
    the ``k - 1`` remaining stay-transitions.
    """
    count = row.size
    position = 0
    state_bad = init_bad
    while position < count:
        p_leave = params.p_b2g if state_bad else params.p_g2b
        run = int(rng.geometric(p_leave))
        end = min(position + run, count)
        row[position:end] = state_bad
        position = end
        state_bad = not state_bad


@dataclass(frozen=True)
class RareEventResult:
    """Aggregate outcome of one importance-sampled cell.

    The stored moments are the exact accumulator values, so results
    round-trip bit-identically through the store; every rate, interval
    and diagnostic derives from them.

    Attributes:
        cell: the experiment description.
        codewords: code words decoded per arm (``frames`` x words per
            frame).
        sum_weight: sum of per-frame likelihood-ratio weights.
        sum_weight_sq: sum of squared weights (ESS diagnostic).
        weighted_failed_interleaved: sum of per-frame
            ``weight * failed`` counts, interleaved arm.
        weighted_failed_interleaved_sq: sum of squares of those
            per-frame terms (variance estimate).
        weighted_failed_baseline: baseline-arm weighted failure sum.
        weighted_failed_baseline_sq: baseline-arm sum of squares.
        raw_failed_interleaved: unweighted failure count under the
            proposal (a diagnostic: how many failures were *observed*).
        raw_failed_baseline: baseline-arm unweighted failure count.
        error_symbols: symbols corrupted across all sampled frames.
    """

    cell: RareEventCell
    codewords: int
    sum_weight: float
    sum_weight_sq: float
    weighted_failed_interleaved: float
    weighted_failed_interleaved_sq: float
    weighted_failed_baseline: float
    weighted_failed_baseline_sq: float
    raw_failed_interleaved: int
    raw_failed_baseline: int
    error_symbols: int

    @property
    def failure_rate_interleaved(self) -> float:
        """Importance-sampled code-word failure rate, interleaved arm."""
        return (self.weighted_failed_interleaved / self.codewords
                if self.codewords else 0.0)

    @property
    def failure_rate_baseline(self) -> float:
        """Importance-sampled code-word failure rate, baseline arm."""
        return (self.weighted_failed_baseline / self.codewords
                if self.codewords else 0.0)

    @property
    def interval_interleaved(self) -> Tuple[float, float]:
        """95 % normal-approximation CI of the interleaved rate."""
        return self._interval(self.weighted_failed_interleaved,
                              self.weighted_failed_interleaved_sq)

    @property
    def interval_baseline(self) -> Tuple[float, float]:
        """95 % normal-approximation CI of the baseline rate."""
        return self._interval(self.weighted_failed_baseline,
                              self.weighted_failed_baseline_sq)

    @property
    def effective_sample_size(self) -> float:
        """Kish effective sample size of the weights (<= ``frames``).

        A collapsed ESS (a few huge weights dominating) means the
        proposal is tilted too hard for the cell; the CLI table prints
        it as the estimator's health diagnostic.
        """
        if self.sum_weight_sq <= 0.0:
            return 0.0
        return (self.sum_weight * self.sum_weight) / self.sum_weight_sq

    @property
    def gain(self) -> float:
        """Failure-rate ratio baseline / interleaved (``inf`` = rescued all)."""
        if self.weighted_failed_interleaved == 0.0:
            return 1.0 if self.weighted_failed_baseline == 0.0 else float("inf")
        return self.weighted_failed_baseline / self.weighted_failed_interleaved

    def _interval(self, weighted_sum: float,
                  weighted_sq_sum: float) -> Tuple[float, float]:
        """Normal CI on the mean of per-frame ``weight * failed`` terms.

        The per-frame observations are i.i.d., so the standard error is
        the sample standard deviation over ``sqrt(frames)``; the
        interval is clipped to [0, 1] and vacuous for a single frame.
        """
        frames = self.cell.frames
        words = self.codewords // frames if frames else 0
        if frames < 2 or words < 1:
            return (0.0, 1.0)
        mean = weighted_sum / frames
        variance = (weighted_sq_sum - frames * mean * mean) / (frames - 1)
        half = 1.96 * math.sqrt(max(0.0, variance) / frames) / words
        rate = mean / words
        return (max(0.0, rate - half), min(1.0, rate + half))

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (store payloads; floats round-trip exactly)."""
        return {
            "cell": self.cell.to_dict(),
            "codewords": self.codewords,
            "sum_weight": self.sum_weight,
            "sum_weight_sq": self.sum_weight_sq,
            "weighted_failed_interleaved": self.weighted_failed_interleaved,
            "weighted_failed_interleaved_sq":
                self.weighted_failed_interleaved_sq,
            "weighted_failed_baseline": self.weighted_failed_baseline,
            "weighted_failed_baseline_sq": self.weighted_failed_baseline_sq,
            "raw_failed_interleaved": self.raw_failed_interleaved,
            "raw_failed_baseline": self.raw_failed_baseline,
            "error_symbols": self.error_symbols,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RareEventResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            cell=RareEventCell.from_dict(
                cast(Dict[str, object], data["cell"])),
            codewords=int(cast(int, data["codewords"])),
            sum_weight=float(cast(float, data["sum_weight"])),
            sum_weight_sq=float(cast(float, data["sum_weight_sq"])),
            weighted_failed_interleaved=float(
                cast(float, data["weighted_failed_interleaved"])),
            weighted_failed_interleaved_sq=float(
                cast(float, data["weighted_failed_interleaved_sq"])),
            weighted_failed_baseline=float(
                cast(float, data["weighted_failed_baseline"])),
            weighted_failed_baseline_sq=float(
                cast(float, data["weighted_failed_baseline_sq"])),
            raw_failed_interleaved=int(
                cast(int, data["raw_failed_interleaved"])),
            raw_failed_baseline=int(cast(int, data["raw_failed_baseline"])),
            error_symbols=int(cast(int, data["error_symbols"])),
        )


def evaluate_rare_event(cell: RareEventCell) -> RareEventResult:
    """Run one importance-sampled cell (also the worker entry).

    Per frame: draw the initial state from the *true* stationary law,
    sample the fade trajectory from the proposal chain, compute the
    exact transition likelihood ratio, then draw errors and count
    per-code-word failures with the same sparse bincount-through-the-
    permutation construction as the batched campaign path.  Frames are
    independent (no dwell carry-over), which is what makes the
    per-frame weighted observations i.i.d. and the normal CI valid.
    """
    rng = np.random.default_rng(cell.seed)
    interleaver = TwoStageInterleaver(cell.interleaver)
    symbols = interleaver.frame_symbols
    codeword_symbols = cell.code.n_symbols
    words = symbols // codeword_symbols
    threshold = cell.code.t_correctable
    # Channel position s lands in payload code word perm[s] // n — the
    # same sparse decode the batched campaign path uses.
    word_of_channel_pos = interleaver.permutation() // codeword_symbols
    stationary_bad = cell.channel.stationary_bad
    proposal = cell.proposal
    p_bad = proposal.p_bad
    p_good = proposal.p_good
    states = np.empty(symbols, dtype=bool)
    sum_weight = 0.0
    sum_weight_sq = 0.0
    weighted_failed_interleaved = 0.0
    weighted_failed_interleaved_sq = 0.0
    weighted_failed_baseline = 0.0
    weighted_failed_baseline_sq = 0.0
    raw_failed_interleaved = 0
    raw_failed_baseline = 0
    error_symbols = 0
    for _ in range(cell.frames):
        init_bad = bool(rng.random() < stationary_bad)
        _sample_frame_states(rng, proposal, states, init_bad)
        weight = frame_weight(cell.channel, proposal, states)
        draws = rng.random(symbols)
        errors = np.less(draws, p_bad)
        errors &= states
        if p_good > 0.0:
            good_hits = np.less(draws, p_good)
            good_hits &= ~states
            errors |= good_hits
        sym_idx = np.nonzero(errors)[0]
        counts_int = np.bincount(word_of_channel_pos[sym_idx],
                                 minlength=words)
        counts_base = np.bincount(sym_idx // codeword_symbols,
                                  minlength=words)
        failed_int = int(np.count_nonzero(counts_int > threshold))
        failed_base = int(np.count_nonzero(counts_base > threshold))
        term_int = weight * failed_int
        term_base = weight * failed_base
        sum_weight += weight
        sum_weight_sq += weight * weight
        weighted_failed_interleaved += term_int
        weighted_failed_interleaved_sq += term_int * term_int
        weighted_failed_baseline += term_base
        weighted_failed_baseline_sq += term_base * term_base
        raw_failed_interleaved += failed_int
        raw_failed_baseline += failed_base
        error_symbols += int(sym_idx.size)
    return RareEventResult(
        cell=cell,
        codewords=cell.frames * words,
        sum_weight=sum_weight,
        sum_weight_sq=sum_weight_sq,
        weighted_failed_interleaved=weighted_failed_interleaved,
        weighted_failed_interleaved_sq=weighted_failed_interleaved_sq,
        weighted_failed_baseline=weighted_failed_baseline,
        weighted_failed_baseline_sq=weighted_failed_baseline_sq,
        raw_failed_interleaved=raw_failed_interleaved,
        raw_failed_baseline=raw_failed_baseline,
        error_symbols=error_symbols,
    )


def format_rare_event(results: Sequence[RareEventResult]) -> str:
    """Render rare-event results as a per-cell text table.

    One row per cell with the effective sample size (the estimator's
    health diagnostic), both arms' importance-sampled failure rates
    with normal 95 % CIs, and the gain.
    """
    header = (
        f"{'fade':>6s} {'frac':>7s} {'n':>4s} {'seed':>6s} {'frames':>7s} "
        f"{'ESS':>8s} {'CWER base':>10s} {'95% CI':>21s} "
        f"{'CWER intl':>10s} {'95% CI':>21s} {'gain':>8s}"
    )
    lines = [header]
    for result in results:
        cell = result.cell
        lines.append(
            f"{cell.channel.mean_fade_symbols:6.0f} "
            f"{cell.channel.stationary_bad:7.4f} "
            f"{cell.interleaver.triangle_n:4d} {cell.seed:6d} "
            f"{cell.frames:7d} {result.effective_sample_size:8.1f} "
            f"{result.failure_rate_baseline:10.2e} "
            f"{_format_ci(*result.interval_baseline):>21s} "
            f"{result.failure_rate_interleaved:10.2e} "
            f"{_format_ci(*result.interval_interleaved):>21s} "
            f"{_format_gain(result.gain):>8s}"
        )
    lines.append("(importance sampling on the fade-boosted proposal; "
                 "ESS = Kish effective sample size of the weights)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# time-varying channel scenarios
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSegment:
    """One piecewise-constant stretch of a channel trajectory.

    Attributes:
        channel: Gilbert–Elliott statistics during the segment.
        frames: frames transmitted under them.
        label: short display name (e.g. ``"el=10"``).
    """

    channel: GilbertElliottParams
    frames: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.frames < 1:
            raise ValueError(f"frames must be >= 1, got {self.frames}")

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly description."""
        data = _channel_dict(self.channel)
        data.update(frames=self.frames, label=self.label)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSegment":
        """Inverse of :meth:`to_dict`."""
        return cls(channel=_channel_from_dict(data),
                   frames=int(cast(int, data["frames"])),
                   label=str(data["label"]))


@dataclass(frozen=True)
class ScenarioCell:
    """One time-varying channel experiment.

    Segments share a single seeded generator in order, so the whole
    scenario's randomness derives from the cell seed alone and the cell
    is one declarative, store-addressable unit like every other grid
    cell.

    Attributes:
        segments: the piecewise channel trajectory, in time order.
        interleaver: two-stage interleaver dimensions.
        code: code-word length and correction radius.
        seed: RNG seed; the cell's entire randomness derives from it.
    """

    segments: Tuple[ScenarioSegment, ...]
    interleaver: TwoStageConfig
    code: CodewordConfig
    seed: int

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("segments must be non-empty")
        _check_dimensions(self.interleaver, self.code)

    @property
    def total_frames(self) -> int:
        """Frames across the whole trajectory."""
        return sum(segment.frames for segment in self.segments)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly description (also the store-config basis)."""
        data: Dict[str, object] = {
            "segments": [segment.to_dict() for segment in self.segments],
        }
        data.update(_geometry_dict(self.interleaver, self.code))
        data.update(seed=self.seed)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioCell":
        """Inverse of :meth:`to_dict`."""
        return cls(
            segments=tuple(
                ScenarioSegment.from_dict(cast(Dict[str, object], entry))
                for entry in cast(List[object], data["segments"])),
            interleaver=_interleaver_from_dict(data),
            code=_code_from_dict(data),
            seed=int(cast(int, data["seed"])),
        )


@dataclass(frozen=True)
class SegmentResult:
    """Decoding counts of one scenario segment (all integers).

    Attributes:
        label: the segment's display name.
        frames: frames transmitted in the segment.
        codewords: code words decoded per arm.
        failed_interleaved / failed_baseline: failure counts per arm.
        error_symbols: symbols the channel corrupted.
        max_burst: longest fade observed.
        max_errors_interleaved / max_errors_baseline: worst
            per-code-word error counts.
    """

    label: str
    frames: int
    codewords: int
    failed_interleaved: int
    failed_baseline: int
    error_symbols: int
    max_burst: int
    max_errors_interleaved: int
    max_errors_baseline: int

    @property
    def failure_rate_interleaved(self) -> float:
        """Code-word failure rate with the interleaver."""
        return self.failed_interleaved / self.codewords if self.codewords else 0.0

    @property
    def failure_rate_baseline(self) -> float:
        """Code-word failure rate without interleaving."""
        return self.failed_baseline / self.codewords if self.codewords else 0.0

    @property
    def gain(self) -> float:
        """Failure-rate ratio baseline / interleaved (``inf`` = rescued all)."""
        if self.failed_interleaved == 0:
            return 1.0 if self.failed_baseline == 0 else float("inf")
        return self.failed_baseline / self.failed_interleaved

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (store payloads)."""
        return {
            "label": self.label,
            "frames": self.frames,
            "codewords": self.codewords,
            "failed_interleaved": self.failed_interleaved,
            "failed_baseline": self.failed_baseline,
            "error_symbols": self.error_symbols,
            "max_burst": self.max_burst,
            "max_errors_interleaved": self.max_errors_interleaved,
            "max_errors_baseline": self.max_errors_baseline,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SegmentResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            label=str(data["label"]),
            frames=int(cast(int, data["frames"])),
            codewords=int(cast(int, data["codewords"])),
            failed_interleaved=int(cast(int, data["failed_interleaved"])),
            failed_baseline=int(cast(int, data["failed_baseline"])),
            error_symbols=int(cast(int, data["error_symbols"])),
            max_burst=int(cast(int, data["max_burst"])),
            max_errors_interleaved=int(
                cast(int, data["max_errors_interleaved"])),
            max_errors_baseline=int(cast(int, data["max_errors_baseline"])),
        )


@dataclass(frozen=True)
class ScenarioResult:
    """Per-segment and pooled outcome of one scenario cell.

    Attributes:
        cell: the experiment description.
        segments: one :class:`SegmentResult` per trajectory segment, in
            time order.
    """

    cell: ScenarioCell
    segments: Tuple[SegmentResult, ...]

    @property
    def codewords(self) -> int:
        """Code words decoded per arm across the whole trajectory."""
        return sum(segment.codewords for segment in self.segments)

    @property
    def failed_interleaved(self) -> int:
        """Pooled interleaved-arm failure count."""
        return sum(segment.failed_interleaved for segment in self.segments)

    @property
    def failed_baseline(self) -> int:
        """Pooled baseline-arm failure count."""
        return sum(segment.failed_baseline for segment in self.segments)

    @property
    def failure_rate_interleaved(self) -> float:
        """Pooled code-word failure rate with the interleaver."""
        codewords = self.codewords
        return self.failed_interleaved / codewords if codewords else 0.0

    @property
    def failure_rate_baseline(self) -> float:
        """Pooled code-word failure rate without interleaving."""
        codewords = self.codewords
        return self.failed_baseline / codewords if codewords else 0.0

    @property
    def interval_interleaved(self) -> Tuple[float, float]:
        """95 % Wilson interval of the pooled interleaved rate."""
        return wilson_interval(self.failed_interleaved, self.codewords)

    @property
    def interval_baseline(self) -> Tuple[float, float]:
        """95 % Wilson interval of the pooled baseline rate."""
        return wilson_interval(self.failed_baseline, self.codewords)

    @property
    def gain(self) -> float:
        """Pooled failure-rate ratio baseline / interleaved."""
        if self.failed_interleaved == 0:
            return 1.0 if self.failed_baseline == 0 else float("inf")
        return self.failed_baseline / self.failed_interleaved

    @property
    def max_burst(self) -> int:
        """Longest fade observed anywhere in the trajectory."""
        return max(segment.max_burst for segment in self.segments)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (store payloads)."""
        return {
            "cell": self.cell.to_dict(),
            "segments": [segment.to_dict() for segment in self.segments],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            cell=ScenarioCell.from_dict(
                cast(Dict[str, object], data["cell"])),
            segments=tuple(
                SegmentResult.from_dict(cast(Dict[str, object], entry))
                for entry in cast(List[object], data["segments"])),
        )


def _segment_result(segment: ScenarioSegment,
                    outcome: DownlinkResult) -> SegmentResult:
    """Package one segment's :class:`~repro.system.downlink.DownlinkResult`."""
    return SegmentResult(
        label=segment.label,
        frames=segment.frames,
        codewords=outcome.interleaved.codewords,
        failed_interleaved=outcome.interleaved.failed,
        failed_baseline=outcome.baseline.failed,
        error_symbols=outcome.channel_profile.error_symbols,
        max_burst=outcome.channel_profile.max_burst,
        max_errors_interleaved=outcome.max_errors_interleaved,
        max_errors_baseline=outcome.max_errors_baseline,
    )


def evaluate_scenario(cell: ScenarioCell) -> ScenarioResult:
    """Run one scenario through the batched channel path (worker entry).

    Each segment builds an :class:`~repro.system.downlink.OpticalDownlink`
    for its parameters on the *shared* cell generator and runs
    :meth:`~repro.system.downlink.OpticalDownlink.run_batched` —
    bit-identical to the scalar reference
    :func:`evaluate_scenario_reference` because the batched and scalar
    downlink paths consume the generator identically.
    """
    rng = np.random.default_rng(cell.seed)
    results = []
    for segment in cell.segments:
        downlink = OpticalDownlink(cell.interleaver, cell.code,
                                   segment.channel, rng=rng)
        results.append(_segment_result(segment,
                                       downlink.run_batched(segment.frames)))
    return ScenarioResult(cell=cell, segments=tuple(results))


def evaluate_scenario_reference(cell: ScenarioCell) -> ScenarioResult:
    """Scalar per-frame reference of :func:`evaluate_scenario`.

    Identical segment construction on the shared generator, but each
    segment runs the per-frame
    :meth:`~repro.system.downlink.OpticalDownlink.run` loop.  Exists
    for the differential battery; results are bit-identical.
    """
    rng = np.random.default_rng(cell.seed)
    results = []
    for segment in cell.segments:
        downlink = OpticalDownlink(cell.interleaver, cell.code,
                                   segment.channel, rng=rng)
        results.append(_segment_result(segment,
                                       downlink.run(segment.frames)))
    return ScenarioResult(cell=cell, segments=tuple(results))


#: Default elevation steps of one contact pass, in degrees: horizon ->
#: zenith -> horizon.
CONTACT_PASS_ELEVATIONS_DEG = (10.0, 20.0, 35.0, 55.0, 75.0, 90.0,
                               75.0, 55.0, 35.0, 20.0, 10.0)


def contact_pass_segments(
    elevations_deg: Sequence[float] = CONTACT_PASS_ELEVATIONS_DEG,
    frames_per_segment: int = 40,
    zenith_fade_symbols: float = 60.0,
    zenith_fade_fraction: float = 0.002,
    p_bad: float = 0.7,
    p_good: float = 0.0,
) -> Tuple[ScenarioSegment, ...]:
    """Piecewise Gilbert–Elliott trajectory of one LEO contact pass.

    A pass sweeps elevation up and back down; scintillation worsens
    toward the horizon roughly with the atmospheric air mass
    ``1 / sin(elevation)`` — fades lengthen *and* cover a larger time
    fraction.  This helper scales the zenith fade statistics by the air
    mass of each elevation step: a deliberately simple model, but one
    with the qualitative shape that stresses the interleaver — hard
    horizon segments bracketing an easy zenith plateau.

    Args:
        elevations_deg: elevation steps in degrees, each in (0, 90].
        frames_per_segment: frames transmitted per step.
        zenith_fade_symbols: mean fade duration at 90° elevation (> 1).
        zenith_fade_fraction: fade time fraction at 90° elevation
            (in (0, 0.5]); horizon fractions are clipped at 0.5.
        p_bad: symbol error probability inside fades.
        p_good: symbol error probability outside fades.
    """
    if not elevations_deg:
        raise ValueError("elevations_deg must be non-empty")
    if frames_per_segment < 1:
        raise ValueError(
            f"frames_per_segment must be >= 1, got {frames_per_segment}")
    if zenith_fade_symbols <= 1.0:
        raise ValueError("zenith_fade_symbols must exceed one symbol, "
                         f"got {zenith_fade_symbols}")
    if not 0.0 < zenith_fade_fraction <= 0.5:
        raise ValueError("zenith_fade_fraction must be in (0, 0.5], "
                         f"got {zenith_fade_fraction}")
    segments = []
    for elevation in elevations_deg:
        if not 0.0 < elevation <= 90.0:
            raise ValueError(
                f"elevations must be in (0, 90] degrees, got {elevation}")
        air_mass = 1.0 / math.sin(math.radians(elevation))
        segments.append(
            ScenarioSegment(
                channel=coherence_params(
                    zenith_fade_symbols * air_mass,
                    min(0.5, zenith_fade_fraction * air_mass),
                    p_bad=p_bad,
                    p_good=p_good,
                ),
                frames=frames_per_segment,
                label=f"el={elevation:g}",
            )
        )
    return tuple(segments)


#: Default cloud-attenuation trace, in dB: clear sky, a cloud moving
#: through the beam, clear sky again.
WEATHER_ATTENUATIONS_DB = (0.0, 1.0, 2.0, 4.0, 6.0, 4.0, 2.0, 1.0, 0.0)


def weather_segments(
    attenuations_db: Sequence[float] = WEATHER_ATTENUATIONS_DB,
    frames_per_segment: int = 40,
    clear_fade_symbols: float = 60.0,
    clear_fade_fraction: float = 0.002,
    p_bad: float = 0.7,
    p_good: float = 0.0,
) -> Tuple[ScenarioSegment, ...]:
    """Piecewise Gilbert–Elliott trajectory of a cloud-attenuation trace.

    Clouds attenuate the optical beam; lower received power drives the
    receiver deeper into its fade regime, so each attenuation step
    scales the clear-sky fade statistics by the linear power factor
    ``10^(A/10)`` — fades lengthen *and* cover a larger time fraction,
    monotonically in the attenuation (the property pinned in
    ``tests/system/test_scenario_builders.py``).  Like the contact-pass
    model this is deliberately simple, but it has the shape that
    matters: a smooth degradation ramp instead of the pass's
    elevation-symmetric bathtub.

    Args:
        attenuations_db: cloud attenuation per step, in dB (each >= 0;
            0 dB = the clear-sky statistics unchanged).
        frames_per_segment: frames transmitted per step.
        clear_fade_symbols: mean fade duration at 0 dB (> 1).
        clear_fade_fraction: fade time fraction at 0 dB (in (0, 0.5]);
            attenuated fractions are clipped at 0.5.
        p_bad: symbol error probability inside fades.
        p_good: symbol error probability outside fades.
    """
    if not attenuations_db:
        raise ValueError("attenuations_db must be non-empty")
    if frames_per_segment < 1:
        raise ValueError(
            f"frames_per_segment must be >= 1, got {frames_per_segment}")
    if clear_fade_symbols <= 1.0:
        raise ValueError("clear_fade_symbols must exceed one symbol, "
                         f"got {clear_fade_symbols}")
    if not 0.0 < clear_fade_fraction <= 0.5:
        raise ValueError("clear_fade_fraction must be in (0, 0.5], "
                         f"got {clear_fade_fraction}")
    segments = []
    for attenuation_db in attenuations_db:
        if attenuation_db < 0.0:
            raise ValueError(
                f"attenuations must be >= 0 dB, got {attenuation_db}")
        factor = 10.0 ** (attenuation_db / 10.0)
        segments.append(
            ScenarioSegment(
                channel=coherence_params(
                    clear_fade_symbols * factor,
                    min(0.5, clear_fade_fraction * factor),
                    p_bad=p_bad,
                    p_good=p_good,
                ),
                frames=frames_per_segment,
                label=f"att={attenuation_db:g}dB",
            )
        )
    return tuple(segments)


def multi_pass_segments(
    passes: int = 3,
    elevations_deg: Sequence[float] = CONTACT_PASS_ELEVATIONS_DEG,
    frames_per_segment: int = 40,
    zenith_fade_symbols: float = 60.0,
    zenith_fade_fraction: float = 0.002,
    p_bad: float = 0.7,
    p_good: float = 0.0,
) -> Tuple[ScenarioSegment, ...]:
    """A multi-pass contact window: several elevation passes in a row.

    A ground station sees a LEO satellite several times per day; each
    sighting is one elevation pass, separated by gaps below the
    horizon.  Nothing is transmitted during a gap, so a gap contributes
    no segment — the trajectory is exactly the per-pass
    :func:`contact_pass_segments` repeated ``passes`` times with each
    segment relabeled ``p<k>:el=...``.  That makes the builder's
    correctness argument a concatenation identity (pinned in
    ``tests/system/test_scenario_builders.py``): evaluating the
    multi-pass trajectory batch-wise equals evaluating each pass's
    scalar reference in sequence.

    Args:
        passes: number of contact passes in the window (>= 1).
        elevations_deg: elevation steps of each pass, in degrees.
        frames_per_segment: frames transmitted per step.
        zenith_fade_symbols: mean fade duration at 90° elevation (> 1).
        zenith_fade_fraction: fade time fraction at 90° elevation.
        p_bad: symbol error probability inside fades.
        p_good: symbol error probability outside fades.
    """
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    single = contact_pass_segments(
        elevations_deg=elevations_deg,
        frames_per_segment=frames_per_segment,
        zenith_fade_symbols=zenith_fade_symbols,
        zenith_fade_fraction=zenith_fade_fraction,
        p_bad=p_bad,
        p_good=p_good,
    )
    segments = []
    for index in range(1, passes + 1):
        for segment in single:
            segments.append(
                replace(segment, label=f"p{index}:{segment.label}"))
    return tuple(segments)


def _pool_segments(results: Sequence[ScenarioResult],
                   index: int) -> SegmentResult:
    """Pool segment ``index`` across same-structured scenario results."""
    members = [result.segments[index] for result in results]
    first = members[0]
    return SegmentResult(
        label=first.label,
        frames=sum(member.frames for member in members),
        codewords=sum(member.codewords for member in members),
        failed_interleaved=sum(m.failed_interleaved for m in members),
        failed_baseline=sum(m.failed_baseline for m in members),
        error_symbols=sum(m.error_symbols for m in members),
        max_burst=max(m.max_burst for m in members),
        max_errors_interleaved=max(m.max_errors_interleaved for m in members),
        max_errors_baseline=max(m.max_errors_baseline for m in members),
    )


def format_scenario(results: Sequence[ScenarioResult]) -> str:
    """Render scenario results as a per-segment pooled text table.

    All results must share one segment structure (the same trajectory
    run under different seeds); seeds pool per segment position, and a
    total row pools the whole pass.

    Raises:
        ValueError: if the results disagree on segment count, labels or
            per-segment frame counts.
    """
    if not results:
        return "(no scenario results)"
    structure = tuple((segment.label, segment.frames)
                      for segment in results[0].cell.segments)
    for result in results[1:]:
        shape = tuple((segment.label, segment.frames)
                      for segment in result.cell.segments)
        if shape != structure:
            raise ValueError(
                "scenario results disagree on segment structure; pool "
                "only same-trajectory cells")
    header = (
        f"{'segment':>10s} {'fade':>6s} {'frac':>7s} {'frames':>7s} "
        f"{'words':>8s} {'CWER base':>10s} {'CWER intl':>10s} "
        f"{'95% CI':>21s} {'gain':>8s}"
    )
    lines = [header]
    pooled = [_pool_segments(results, index)
              for index in range(len(structure))]
    for index, segment in enumerate(pooled):
        channel = results[0].cell.segments[index].channel
        low, high = wilson_interval(segment.failed_interleaved,
                                    segment.codewords)
        lines.append(
            f"{segment.label:>10s} {channel.mean_fade_symbols:6.0f} "
            f"{channel.stationary_bad:7.4f} {segment.frames:7d} "
            f"{segment.codewords:8d} "
            f"{segment.failure_rate_baseline:10.2e} "
            f"{segment.failure_rate_interleaved:10.2e} "
            f"{_format_ci(low, high):>21s} "
            f"{_format_gain(segment.gain):>8s}"
        )
    total_codewords = sum(segment.codewords for segment in pooled)
    total_failed_int = sum(segment.failed_interleaved for segment in pooled)
    total_failed_base = sum(segment.failed_baseline for segment in pooled)
    if total_failed_int:
        total_gain = total_failed_base / total_failed_int
    else:
        total_gain = 1.0 if total_failed_base == 0 else float("inf")
    low, high = wilson_interval(total_failed_int, total_codewords)
    rate_base = total_failed_base / total_codewords
    rate_int = total_failed_int / total_codewords
    total_frames = sum(segment.frames for segment in pooled)
    lines.append(
        f"{'total':>10s} {'':>6s} {'':>7s} {total_frames:7d} "
        f"{total_codewords:8d} {rate_base:10.2e} {rate_int:10.2e} "
        f"{_format_ci(low, high):>21s} {_format_gain(total_gain):>8s}"
    )
    lines.append("(per-segment rows pool all seeds at the same trajectory "
                 "position; total pools the whole pass)")
    return "\n".join(lines)
