"""Monte Carlo downlink campaign engine.

The paper's system argument (Sec. I) is statistical: the triangular
interleaver keeps per-code-word error counts below the correction
radius *across the distribution of fades*, not in one lucky frame.
This module turns the single-scenario :class:`~repro.system.downlink.
OpticalDownlink` demo into a campaign: a grid of

    (GilbertElliottParams x TwoStageConfig x CodewordConfig x seed)

cells, each an independent Monte Carlo experiment of many frames
through the batched channel/decoder hot path, fanned out over the
process-pool engine of :mod:`repro.system.parallel` and aggregated into
code-word failure rates with Wilson confidence intervals and
interleaving-gain statistics.

Design rules mirrored from the sweep engine:

* cells are declarative frozen dataclasses of primitives — they pickle
  cheaply and every worker rebuilds its own simulator state;
* each cell derives its RNG from its own seed, so results are
  bit-identical for any worker count (``--jobs`` must never perturb the
  statistics — regression-tested);
* the pool is an optimization, never a requirement: restricted
  environments silently fall back to the serial path with identical
  results.

Campaigns can be long; results persist in the content-addressed
:class:`repro.store.store.ResultStore` (``store`` / ``cache_dir``), one
atomic JSON entry per cell keyed by a hash of its full configuration,
so an interrupted campaign resumes without recomputing finished cells
(``--resume``) and other consumers — the ``repro serve`` job engine,
later CLI invocations — reuse the same entries.
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

import numpy as np

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import GilbertElliottParams
from repro.interleaver.two_stage import TwoStageConfig
from repro.system.downlink import OpticalDownlink
from repro.system.parallel import resolve_jobs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> campaign)
    from repro.store.store import ResultStore

#: Bump when the cell evaluation or result schema changes: stale cache
#: entries from older code must miss, not resurface.
CACHE_VERSION = 1


def wilson_interval(failures: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    The standard interval for Monte Carlo failure rates: unlike the
    normal approximation it stays inside ``[0, 1]`` and behaves at the
    extremes (0 or ``trials`` failures), which is exactly where a good
    interleaver run lands.

    Args:
        failures: observed failure count.
        trials: number of Bernoulli trials (> 0).
        z: normal quantile (1.96 = 95 % coverage).
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 0 <= failures <= trials:
        raise ValueError(f"failures must be in [0, {trials}], got {failures}")
    if z <= 0:
        raise ValueError(f"z must be positive, got {z}")
    p = failures / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    center = (p + z2 / (2.0 * trials)) / denominator
    half = z * math.sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))
    half /= denominator
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass(frozen=True)
class CampaignCell:
    """One independent Monte Carlo experiment of the campaign grid.

    Attributes:
        channel: Gilbert–Elliott fade statistics.
        interleaver: two-stage interleaver dimensions.
        code: code-word length and correction radius.
        seed: RNG seed; the cell's entire randomness derives from it.
        frames: frames to simulate.
    """

    channel: GilbertElliottParams
    interleaver: TwoStageConfig
    code: CodewordConfig
    seed: int
    frames: int

    def __post_init__(self) -> None:
        if self.frames < 1:
            raise ValueError(f"frames must be >= 1, got {self.frames}")
        if self.interleaver.codeword_symbols != self.code.n_symbols:
            raise ValueError(
                "interleaver.codeword_symbols and code.n_symbols disagree: "
                f"{self.interleaver.codeword_symbols} vs "
                f"{self.code.n_symbols}")

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly description (also the cache-key basis)."""
        return {
            "p_g2b": self.channel.p_g2b,
            "p_b2g": self.channel.p_b2g,
            "p_bad": self.channel.p_bad,
            "p_good": self.channel.p_good,
            "triangle_n": self.interleaver.triangle_n,
            "symbols_per_element": self.interleaver.symbols_per_element,
            "codeword_symbols": self.interleaver.codeword_symbols,
            "n_symbols": self.code.n_symbols,
            "t_correctable": self.code.t_correctable,
            "seed": self.seed,
            "frames": self.frames,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignCell":
        """Inverse of :meth:`to_dict`."""
        return cls(
            channel=GilbertElliottParams(
                p_g2b=float(data["p_g2b"]),
                p_b2g=float(data["p_b2g"]),
                p_bad=float(data["p_bad"]),
                p_good=float(data["p_good"]),
            ),
            interleaver=TwoStageConfig(
                triangle_n=int(data["triangle_n"]),
                symbols_per_element=int(data["symbols_per_element"]),
                codeword_symbols=int(data["codeword_symbols"]),
            ),
            code=CodewordConfig(
                n_symbols=int(data["n_symbols"]),
                t_correctable=int(data["t_correctable"]),
            ),
            seed=int(data["seed"]),
            frames=int(data["frames"]),
        )

    def cache_key(self) -> str:
        """Stable hash of the full cell configuration (resume cache key)."""
        payload = dict(self.to_dict())
        payload["cache_version"] = CACHE_VERSION
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:32]


@dataclass(frozen=True)
class CellResult:
    """Aggregate outcome of one campaign cell.

    All statistics (rates, intervals, gain) derive from the stored
    counts, so equality between two results means the underlying Monte
    Carlo runs were identical — the determinism tests rely on that.
    """

    cell: CampaignCell
    codewords: int
    failed_interleaved: int
    failed_baseline: int
    error_symbols: int
    max_burst: int
    max_errors_interleaved: int
    max_errors_baseline: int

    def __post_init__(self) -> None:
        if self.codewords < 1:
            raise ValueError(
                f"codewords must be >= 1, got {self.codewords}")
        for field in ("failed_interleaved", "failed_baseline"):
            value = int(getattr(self, field))
            if not 0 <= value <= self.codewords:
                raise ValueError(
                    f"{field} must be in [0, codewords={self.codewords}], "
                    f"got {value}")

    @property
    def failure_rate_interleaved(self) -> float:
        """Code-word failure rate with the two-stage interleaver."""
        return self.failed_interleaved / self.codewords if self.codewords else 0.0

    @property
    def failure_rate_baseline(self) -> float:
        """Code-word failure rate without interleaving."""
        return self.failed_baseline / self.codewords if self.codewords else 0.0

    @property
    def interval_interleaved(self) -> Tuple[float, float]:
        """95 % Wilson interval of the interleaved failure rate."""
        return wilson_interval(self.failed_interleaved, self.codewords)

    @property
    def interval_baseline(self) -> Tuple[float, float]:
        """95 % Wilson interval of the baseline failure rate."""
        return wilson_interval(self.failed_baseline, self.codewords)

    @property
    def gain(self) -> float:
        """Failure-rate ratio baseline / interleaved (``inf`` = rescued all)."""
        if self.failed_interleaved == 0:
            return 1.0 if self.failed_baseline == 0 else float("inf")
        return self.failed_baseline / self.failed_interleaved

    @property
    def symbol_error_rate(self) -> float:
        """Observed channel symbol error rate over the whole cell."""
        total = self.cell.frames * self.cell.interleaver.symbols_per_frame
        return self.error_symbols / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (cache entries and exports)."""
        data = {"cell": self.cell.to_dict()}
        data.update(
            codewords=self.codewords,
            failed_interleaved=self.failed_interleaved,
            failed_baseline=self.failed_baseline,
            error_symbols=self.error_symbols,
            max_burst=self.max_burst,
            max_errors_interleaved=self.max_errors_interleaved,
            max_errors_baseline=self.max_errors_baseline,
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CellResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            cell=CampaignCell.from_dict(data["cell"]),
            codewords=int(data["codewords"]),
            failed_interleaved=int(data["failed_interleaved"]),
            failed_baseline=int(data["failed_baseline"]),
            error_symbols=int(data["error_symbols"]),
            max_burst=int(data["max_burst"]),
            max_errors_interleaved=int(data["max_errors_interleaved"]),
            max_errors_baseline=int(data["max_errors_baseline"]),
        )


def evaluate_cell(cell: CampaignCell) -> CellResult:
    """Run one cell to completion (also the process-pool worker entry).

    The cell's generator is derived from its seed alone, and the frames
    run through :meth:`~repro.system.downlink.OpticalDownlink.run_batched`
    — bit-identical to the per-frame loop, several times faster.
    """
    downlink = OpticalDownlink(
        cell.interleaver,
        cell.code,
        cell.channel,
        rng=np.random.default_rng(cell.seed),
    )
    outcome = downlink.run_batched(cell.frames)
    return CellResult(
        cell=cell,
        codewords=outcome.interleaved.codewords,
        failed_interleaved=outcome.interleaved.failed,
        failed_baseline=outcome.baseline.failed,
        error_symbols=outcome.channel_profile.error_symbols,
        max_burst=outcome.channel_profile.max_burst,
        max_errors_interleaved=outcome.max_errors_interleaved,
        max_errors_baseline=outcome.max_errors_baseline,
    )


def campaign_grid(
    channels: Sequence[GilbertElliottParams],
    interleavers: Sequence[TwoStageConfig],
    codes: Sequence[CodewordConfig],
    seeds: Sequence[int],
    frames: int,
) -> List[CampaignCell]:
    """The full cross product of campaign axes, in deterministic order.

    Interleaver/code pairs whose dimensions disagree (the
    :class:`~repro.system.downlink.OpticalDownlink` constructor would
    reject them) are skipped, so mixed code lengths can share one grid.

    Args:
        channels: Gilbert–Elliott parameter sets to sweep.
        interleavers: two-stage interleaver geometries to sweep.
        codes: code configurations to sweep.
        seeds: RNG seeds replicated per configuration.
        frames: frames per cell.

    Returns:
        One cell per compatible (channel, interleaver, code, seed)
        combination, in nested-loop order.
    """
    cells = []
    for channel in channels:
        for interleaver in interleavers:
            for code in codes:
                if interleaver.codeword_symbols != code.n_symbols:
                    continue
                for seed in seeds:
                    cells.append(
                        CampaignCell(
                            channel=channel,
                            interleaver=interleaver,
                            code=code,
                            seed=int(seed),
                            frames=frames,
                        )
                    )
    return cells


def run_campaign(
    cells: Iterable[CampaignCell],
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    resume: bool = False,
    store: Optional["ResultStore"] = None,
) -> List[CellResult]:
    """Evaluate cells, parallel when asked, and return results in order.

    Args:
        cells: work items; results come back in the same order.
        jobs: worker processes (see
            :func:`repro.system.parallel.resolve_jobs`).
        cache_dir: directory for a per-cell result store; created if
            missing.  Shorthand for ``store=ResultStore(cache_dir)``,
            kept for API compatibility with the PR 2 cache.
        resume: reuse existing store entries instead of recomputing
            (entries whose configuration does not match are recomputed,
            never trusted; unreadable entries warn once to stderr).
        store: the shared :class:`~repro.store.store.ResultStore` to
            persist finished cells into (always written).  Takes
            precedence over ``cache_dir``.

    Results are bit-identical for any ``jobs`` value: every cell's
    randomness comes from its own seed, and the pool falls back to the
    serial path when worker processes cannot be spawned.
    """
    if store is None and cache_dir:
        # Imported here to avoid a circular import at module load time
        # (the store's record schema imports this module).
        from repro.store.store import ResultStore
        store = ResultStore(cache_dir)
    cell_list: List[CampaignCell] = list(cells)
    results: List[Optional[CellResult]] = [None] * len(cell_list)
    if store is not None and resume:
        for index, cell in enumerate(cell_list):
            results[index] = store.load_campaign(cell)
    pending = [index for index, result in enumerate(results) if result is None]
    workers = min(resolve_jobs(jobs), len(pending)) if pending else 0

    def record(index: int, result: CellResult) -> None:
        # Persist every cell the moment it finishes: an interrupted
        # campaign must be resumable from the last completed cell, not
        # from zero.
        results[index] = result
        if store is not None:
            store.store_campaign(result)

    if workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                ordered = pool.map(
                    evaluate_cell, [cell_list[index] for index in pending])
                for index, result in zip(pending, ordered):
                    record(index, result)
        except (OSError, BrokenProcessPool, PermissionError):
            pass  # fall through to the serial path for whatever is left
    for index in pending:
        if results[index] is None:
            record(index, evaluate_cell(cell_list[index]))
    return [result for result in results if result is not None]


@dataclass(frozen=True)
class CampaignSummary:
    """Per-configuration statistics pooled across seeds.

    Attributes:
        channel / interleaver / code: the configuration axis values.
        cells: seeds pooled into this row.
        frames: total frames across those seeds.
        codewords: total code words decoded per arm.
        failed_interleaved / failed_baseline: pooled failure counts.
        gains: per-cell interleaving gains (``inf`` = that seed's
            failures were fully rescued).
        max_errors_interleaved: worst per-code-word error count seen
            with interleaving across all seeds.
        max_burst: longest channel fade observed.
    """

    channel: GilbertElliottParams
    interleaver: TwoStageConfig
    code: CodewordConfig
    cells: int
    frames: int
    codewords: int
    failed_interleaved: int
    failed_baseline: int
    gains: Tuple[float, ...]
    max_errors_interleaved: int
    max_burst: int

    @property
    def failure_rate_interleaved(self) -> float:
        """Pooled code-word failure rate with the interleaver."""
        return self.failed_interleaved / self.codewords if self.codewords else 0.0

    @property
    def failure_rate_baseline(self) -> float:
        """Pooled code-word failure rate without interleaving."""
        return self.failed_baseline / self.codewords if self.codewords else 0.0

    @property
    def interval_interleaved(self) -> Tuple[float, float]:
        """95 % Wilson interval of the pooled interleaved rate."""
        return wilson_interval(self.failed_interleaved, self.codewords)

    @property
    def interval_baseline(self) -> Tuple[float, float]:
        """95 % Wilson interval of the pooled baseline rate."""
        return wilson_interval(self.failed_baseline, self.codewords)

    @property
    def pooled_gain(self) -> float:
        """Gain of the pooled failure counts (robust to zero-failure seeds)."""
        if self.failed_interleaved == 0:
            return 1.0 if self.failed_baseline == 0 else float("inf")
        return self.failed_baseline / self.failed_interleaved

    @property
    def mean_fade_symbols(self) -> float:
        """Mean fade duration of the row's channel, in symbols."""
        return self.channel.mean_fade_symbols

    @property
    def fade_fraction(self) -> float:
        """Long-run fraction of time the row's channel spends fading."""
        return self.channel.stationary_bad

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form for exports.

        An infinite pooled gain (zero interleaved failures against a
        failing baseline) serializes as ``null`` — ``json.dump`` would
        otherwise emit the non-RFC token ``Infinity`` that strict
        parsers (jq, ``JSON.parse``) reject.
        """
        low_i, high_i = self.interval_interleaved
        low_b, high_b = self.interval_baseline
        gain = self.pooled_gain
        return {
            "p_g2b": self.channel.p_g2b,
            "p_b2g": self.channel.p_b2g,
            "p_bad": self.channel.p_bad,
            "p_good": self.channel.p_good,
            "mean_fade_symbols": self.mean_fade_symbols,
            "fade_fraction": self.fade_fraction,
            "triangle_n": self.interleaver.triangle_n,
            "symbols_per_element": self.interleaver.symbols_per_element,
            "n_symbols": self.code.n_symbols,
            "t_correctable": self.code.t_correctable,
            "cells": self.cells,
            "frames": self.frames,
            "codewords": self.codewords,
            "failed_interleaved": self.failed_interleaved,
            "failed_baseline": self.failed_baseline,
            "failure_rate_interleaved": self.failure_rate_interleaved,
            "ci_low_interleaved": low_i,
            "ci_high_interleaved": high_i,
            "failure_rate_baseline": self.failure_rate_baseline,
            "ci_low_baseline": low_b,
            "ci_high_baseline": high_b,
            "pooled_gain": gain if math.isfinite(gain) else None,
            "max_errors_interleaved": self.max_errors_interleaved,
            "max_burst": self.max_burst,
        }


def summarize_campaign(results: Sequence[CellResult]) -> List[CampaignSummary]:
    """Pool per-seed cells into per-configuration summary rows.

    Rows appear in first-seen order of their configuration, so the
    summary follows the grid layout of the input.
    """
    grouped: Dict[Tuple, List[CellResult]] = {}
    order: List[Tuple] = []
    for result in results:
        cell = result.cell
        key = (cell.channel, cell.interleaver, cell.code)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(result)
    summaries = []
    for key in order:
        members = grouped[key]
        channel, interleaver, code = key
        summaries.append(
            CampaignSummary(
                channel=channel,
                interleaver=interleaver,
                code=code,
                cells=len(members),
                frames=sum(m.cell.frames for m in members),
                codewords=sum(m.codewords for m in members),
                failed_interleaved=sum(m.failed_interleaved for m in members),
                failed_baseline=sum(m.failed_baseline for m in members),
                gains=tuple(m.gain for m in members),
                max_errors_interleaved=max(
                    m.max_errors_interleaved for m in members),
                max_burst=max(m.max_burst for m in members),
            )
        )
    return summaries


def _format_ci(low: float, high: float) -> str:
    return f"[{low:.2e},{high:.2e}]"


def format_campaign(summaries: Sequence[CampaignSummary]) -> str:
    """Render summary rows as the campaign's headline text table.

    One row per (channel x interleaver x code) configuration; failure
    rates come with 95 % Wilson intervals, the gain column is the
    pooled baseline/interleaved failure ratio.
    """
    header = (
        f"{'fade':>6s} {'frac':>7s} {'n':>4s} {'t':>3s} {'words':>9s} "
        f"{'CWER base':>10s} {'95% CI':>21s} "
        f"{'CWER intl':>10s} {'95% CI':>21s} {'gain':>8s} {'worst':>5s}"
    )
    lines = [header]
    for summary in summaries:
        gain = summary.pooled_gain
        gain_text = "inf" if math.isinf(gain) else f"{gain:.1f}x"
        lines.append(
            f"{summary.mean_fade_symbols:6.0f} {summary.fade_fraction:7.4f} "
            f"{summary.interleaver.triangle_n:4d} {summary.code.t_correctable:3d} "
            f"{summary.codewords:9d} "
            f"{summary.failure_rate_baseline:10.2e} "
            f"{_format_ci(*summary.interval_baseline):>21s} "
            f"{summary.failure_rate_interleaved:10.2e} "
            f"{_format_ci(*summary.interval_interleaved):>21s} "
            f"{gain_text:>8s} {summary.max_errors_interleaved:5d}"
        )
    lines.append("(CWER = code-word failure rate; gain = pooled base/intl ratio; "
                 "worst = max errors in any interleaved code word)")
    return "\n".join(lines)


def campaign_report(results: Sequence[CellResult],
                    summaries: Sequence[CampaignSummary]) -> str:
    """The campaign's full stdout report: size header plus table.

    Shared verbatim by ``repro campaign`` and the ``repro serve`` job
    engine's ``/jobs/<id>/table`` endpoint, so the two can never drift
    apart — the serve smoke test diffs them byte for byte.

    Args:
        results: per-cell outcomes (sizes the header line).
        summaries: pooled per-configuration rows (the table body).
    """
    header = (f"campaign: {len(results)} cells, "
              f"{sum(r.cell.frames for r in results)} frames, "
              f"{sum(r.codewords for r in results)} code words per arm")
    return header + "\n" + format_campaign(summaries)


def export_json(results: Sequence[CellResult],
                summaries: Sequence[CampaignSummary], stream: TextIO) -> None:
    """Write the full campaign (cells + summaries) as one JSON document.

    Args:
        results: per-cell outcomes, exported under ``"cells"``.
        summaries: pooled per-configuration rows, exported under
            ``"summaries"``.
        stream: writable text stream receiving the document.
    """
    json.dump(
        {
            "cache_version": CACHE_VERSION,
            "cells": [result.to_dict() for result in results],
            "summaries": [summary.to_dict() for summary in summaries],
        },
        stream,
        indent=2,
        sort_keys=True,
        allow_nan=False,  # fail loud rather than emit non-RFC Infinity/NaN
    )
    stream.write("\n")


#: Column order of the CSV export (one row per cell).
CSV_FIELDS = (
    "p_g2b", "p_b2g", "p_bad", "p_good", "triangle_n", "symbols_per_element",
    "codeword_symbols", "n_symbols", "t_correctable", "seed", "frames",
    "codewords", "failed_interleaved", "failed_baseline",
    "failure_rate_interleaved", "ci_low_interleaved", "ci_high_interleaved",
    "failure_rate_baseline", "ci_low_baseline", "ci_high_baseline",
    "gain", "error_symbols", "max_burst",
    "max_errors_interleaved", "max_errors_baseline",
)


def export_csv(results: Sequence[CellResult], stream: TextIO) -> None:
    """Write one CSV row per cell (flat schema, spreadsheet-ready).

    Args:
        results: per-cell outcomes; one :data:`CSV_FIELDS` row each.
        stream: writable text stream receiving header plus rows.
    """
    writer = csv.DictWriter(stream, fieldnames=list(CSV_FIELDS))
    writer.writeheader()
    for result in results:
        row = dict(result.cell.to_dict())
        low_i, high_i = result.interval_interleaved
        low_b, high_b = result.interval_baseline
        row.update(
            codewords=result.codewords,
            failed_interleaved=result.failed_interleaved,
            failed_baseline=result.failed_baseline,
            failure_rate_interleaved=result.failure_rate_interleaved,
            ci_low_interleaved=low_i,
            ci_high_interleaved=high_i,
            failure_rate_baseline=result.failure_rate_baseline,
            ci_low_baseline=low_b,
            ci_high_baseline=high_b,
            # Non-finite gains are unrepresentable in both documented
            # export formats: JSON serializes them as null, CSV as an
            # empty field.  The finite counts in the row reconstruct
            # the gain either way.
            gain=result.gain if math.isfinite(result.gain) else "",
            error_symbols=result.error_symbols,
            max_burst=result.max_burst,
            max_errors_interleaved=result.max_errors_interleaved,
            max_errors_baseline=result.max_errors_baseline,
        )
        writer.writerow(row)
