"""End-to-end optical LEO downlink simulation (the paper's Sec. I context).

Pipeline per frame::

    payload symbols
      -> two-stage interleaver (SRAM block + triangular DRAM stage)
      -> Gilbert-Elliott burst channel
      -> deinterleaver
      -> bounded-distance decoder (t symbol errors per code word)

The simulation demonstrates the interleaver's purpose: at the same
average symbol error rate, the burst channel destroys many code words
when symbols are transmitted in order, while the triangular interleaver
spreads each fade over many code words and keeps the per-word error
count below the correction radius.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.channel.burst_stats import (
    BurstProfile,
    FrameBurstArrays,
    burst_profile,
    errors_per_codeword,
    frame_burst_arrays,
)
from repro.channel.codeword import (
    CodewordConfig,
    DecodingReport,
    decode_mask,
    report_from_counts,
)
from repro.channel.gilbert_elliott import GilbertElliottChannel, GilbertElliottParams
from repro.interleaver.two_stage import TwoStageConfig, TwoStageInterleaver


@dataclass(frozen=True)
class DownlinkResult:
    """Per-run comparison of interleaved vs. uninterleaved transmission.

    Attributes:
        channel_profile: burstiness of the raw channel mask.
        interleaved: decoding outcome with the two-stage interleaver.
        baseline: decoding outcome without any interleaving.
        max_errors_interleaved: worst per-code-word error count with
            interleaving.
        max_errors_baseline: worst per-code-word error count without.
    """

    channel_profile: BurstProfile
    interleaved: DecodingReport
    baseline: DecodingReport
    max_errors_interleaved: int
    max_errors_baseline: int

    @property
    def gain(self) -> float:
        """Code-word failure-rate ratio baseline / interleaved."""
        if self.interleaved.codeword_error_rate == 0.0:
            if self.baseline.codeword_error_rate == 0.0:
                return 1.0
            return float("inf")
        return self.baseline.codeword_error_rate / self.interleaved.codeword_error_rate


def merge_burst_profiles(profiles: Sequence[BurstProfile]) -> BurstProfile:
    """Aggregate per-frame burst profiles the way :meth:`OpticalDownlink.run` does."""
    return BurstProfile(
        total_symbols=sum(p.total_symbols for p in profiles),
        error_symbols=sum(p.error_symbols for p in profiles),
        burst_count=sum(p.burst_count for p in profiles),
        max_burst=max(p.max_burst for p in profiles),
        mean_burst=float(
            np.mean([p.mean_burst for p in profiles if p.burst_count])
        ) if any(p.burst_count for p in profiles) else 0.0,
    )


def merge_decoding_reports(reports: Sequence[DecodingReport]) -> DecodingReport:
    """Sum per-frame decoding outcomes into one aggregate report."""
    return DecodingReport(
        codewords=sum(r.codewords for r in reports),
        failed=sum(r.failed for r in reports),
        corrected_symbols=sum(r.corrected_symbols for r in reports),
        residual_symbol_errors=sum(r.residual_symbol_errors for r in reports),
    )


def _merge_burst_arrays(bursts: Sequence[FrameBurstArrays],
                        symbols: int) -> BurstProfile:
    """Aggregate chunked :class:`FrameBurstArrays` like :func:`merge_burst_profiles`.

    Bit-identical to expanding every chunk to per-frame
    :class:`BurstProfile` objects and merging those: the mean-burst
    average runs over the same per-frame float64 values in the same
    frame order.
    """
    burst_counts = np.concatenate([b.burst_counts for b in bursts])
    mean_lengths = np.concatenate([b.mean_lengths for b in bursts])
    with_bursts = burst_counts > 0
    return BurstProfile(
        total_symbols=symbols * int(burst_counts.size),
        error_symbols=int(sum(int(b.error_counts.sum()) for b in bursts)),
        burst_count=int(burst_counts.sum()),
        max_burst=int(max(int(b.max_lengths.max(initial=0)) for b in bursts)),
        mean_burst=float(np.mean(mean_lengths[with_bursts]))
        if with_bursts.any() else 0.0,
    )


class OpticalDownlink:
    """Frame-based downlink simulator.

    Args:
        interleaver_config: two-stage interleaver dimensions.
        code: code-word length and correction radius.
        channel_params: Gilbert–Elliott fade statistics.
        rng: optional generator for reproducible runs.
    """

    def __init__(
        self,
        interleaver_config: TwoStageConfig,
        code: CodewordConfig,
        channel_params: GilbertElliottParams,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if interleaver_config.codeword_symbols != code.n_symbols:
            raise ValueError(
                "interleaver grouping and code length disagree: "
                f"{interleaver_config.codeword_symbols} vs {code.n_symbols}"
            )
        self.interleaver = TwoStageInterleaver(interleaver_config)
        self.code = code
        self.channel = GilbertElliottChannel(channel_params, rng)

    def run_frame(self) -> DownlinkResult:
        """Transmit one frame and compare with the uninterleaved baseline.

        Error propagation is tracked through the permutation directly
        (a mask permutes exactly like the payload), so the result is
        exact for any symbol alphabet.
        """
        frame_symbols = self.interleaver.frame_symbols
        channel_mask = self.channel.error_mask(frame_symbols)

        # Interleaved path: the transmitted stream is a permutation of
        # the payload; the channel corrupts transmit positions, and the
        # receiver's deinterleaver maps the mask back to payload order.
        mask_int = channel_mask.astype(np.uint8)
        payload_order_mask = self.interleaver.deinterleave(mask_int).astype(bool)
        interleaved = decode_mask(payload_order_mask, self.code)

        # Baseline: payload transmitted in order.
        baseline = decode_mask(channel_mask, self.code)

        per_word_int = errors_per_codeword(payload_order_mask, self.code.n_symbols)
        per_word_base = errors_per_codeword(channel_mask, self.code.n_symbols)
        return DownlinkResult(
            channel_profile=burst_profile(channel_mask),
            interleaved=interleaved,
            baseline=baseline,
            max_errors_interleaved=int(per_word_int.max(initial=0)),
            max_errors_baseline=int(per_word_base.max(initial=0)),
        )

    def run(self, frames: int) -> DownlinkResult:
        """Aggregate :meth:`run_frame` over several frames."""
        if frames < 1:
            raise ValueError(f"frames must be >= 1, got {frames}")
        results = [self.run_frame() for _ in range(frames)]
        return DownlinkResult(
            channel_profile=merge_burst_profiles(
                [r.channel_profile for r in results]),
            interleaved=merge_decoding_reports([r.interleaved for r in results]),
            baseline=merge_decoding_reports([r.baseline for r in results]),
            max_errors_interleaved=max(r.max_errors_interleaved for r in results),
            max_errors_baseline=max(r.max_errors_baseline for r in results),
        )

    #: Frames per batch in :meth:`run_batched`.  Large enough to
    #: amortize NumPy call overhead over the whole block, small enough
    #: that the block's mask/uniform buffers stay cache-resident
    #: instead of streaming multi-hundred-MB temporaries through DRAM.
    BATCH_FRAMES = 128

    def run_batched(self, frames: int,
                    batch_frames: Optional[int] = None) -> DownlinkResult:
        """Vectorized :meth:`run`: same result, 2-D frame blocks per stage.

        Frames are sampled in ``(batch_frames, symbols)`` mask blocks.
        Error masks on fade channels are sparse, so everything past the
        channel works on the ``nonzero`` error positions: per-code-word
        error counts are one ``bincount`` through the precomputed
        two-stage permutation (the full deinterleave gather never
        happens), and burst runs fall out of gaps in the sorted
        positions.  The returned :class:`DownlinkResult` is
        bit-identical to :meth:`run` from the same generator state
        (differential-tested in
        ``tests/channel/test_batched_channel.py``).

        Args:
            frames: frames to transmit (>= 1).
            batch_frames: frames sampled per 2-D block
                (default ``BATCH_FRAMES``).

        Returns:
            The aggregate :class:`DownlinkResult` over all frames.

        Raises:
            ValueError: on a non-positive ``frames`` or
                ``batch_frames``.
        """
        if frames < 1:
            raise ValueError(f"frames must be >= 1, got {frames}")
        if batch_frames is None:
            batch_frames = self.BATCH_FRAMES
        if batch_frames < 1:
            raise ValueError(f"batch_frames must be >= 1, got {batch_frames}")
        symbols = self.interleaver.frame_symbols
        codeword_symbols = self.code.n_symbols
        words = symbols // codeword_symbols
        # Channel position s lands at payload position perm[s] (the
        # receiver applies the inverse permutation), hence in payload
        # code word perm[s] // codeword_symbols.
        word_of_channel_pos = self.interleaver.permutation() // codeword_symbols
        bursts = []
        reports_int = []
        reports_base = []
        max_int = 0
        max_base = 0
        done = 0
        while done < frames:
            block = min(batch_frames, frames - done)
            frame_idx, sym_idx = self.channel.error_positions(symbols, block)
            word_slots = frame_idx * words
            counts_int = np.bincount(
                word_slots + word_of_channel_pos[sym_idx],
                minlength=block * words).reshape(block, words)
            counts_base = np.bincount(
                word_slots + sym_idx // codeword_symbols,
                minlength=block * words).reshape(block, words)
            bursts.append(frame_burst_arrays(frame_idx, sym_idx, block, symbols))
            reports_int.append(report_from_counts(counts_int, self.code))
            reports_base.append(report_from_counts(counts_base, self.code))
            max_int = max(max_int, int(counts_int.max(initial=0)))
            max_base = max(max_base, int(counts_base.max(initial=0)))
            done += block
        return DownlinkResult(
            channel_profile=_merge_burst_arrays(bursts, symbols),
            interleaved=merge_decoding_reports(reports_int),
            baseline=merge_decoding_reports(reports_base),
            max_errors_interleaved=max_int,
            max_errors_baseline=max_base,
        )
