"""End-to-end optical LEO downlink simulation (the paper's Sec. I context).

Pipeline per frame::

    payload symbols
      -> two-stage interleaver (SRAM block + triangular DRAM stage)
      -> Gilbert-Elliott burst channel
      -> deinterleaver
      -> bounded-distance decoder (t symbol errors per code word)

The simulation demonstrates the interleaver's purpose: at the same
average symbol error rate, the burst channel destroys many code words
when symbols are transmitted in order, while the triangular interleaver
spreads each fade over many code words and keeps the per-word error
count below the correction radius.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.channel.burst_stats import BurstProfile, burst_profile, errors_per_codeword
from repro.channel.codeword import CodewordConfig, DecodingReport, decode_mask
from repro.channel.gilbert_elliott import GilbertElliottChannel, GilbertElliottParams
from repro.interleaver.two_stage import TwoStageConfig, TwoStageInterleaver


@dataclass(frozen=True)
class DownlinkResult:
    """Per-run comparison of interleaved vs. uninterleaved transmission.

    Attributes:
        channel_profile: burstiness of the raw channel mask.
        interleaved: decoding outcome with the two-stage interleaver.
        baseline: decoding outcome without any interleaving.
        max_errors_interleaved: worst per-code-word error count with
            interleaving.
        max_errors_baseline: worst per-code-word error count without.
    """

    channel_profile: BurstProfile
    interleaved: DecodingReport
    baseline: DecodingReport
    max_errors_interleaved: int
    max_errors_baseline: int

    @property
    def gain(self) -> float:
        """Code-word failure-rate ratio baseline / interleaved."""
        if self.interleaved.codeword_error_rate == 0.0:
            if self.baseline.codeword_error_rate == 0.0:
                return 1.0
            return float("inf")
        return self.baseline.codeword_error_rate / self.interleaved.codeword_error_rate


class OpticalDownlink:
    """Frame-based downlink simulator.

    Args:
        interleaver_config: two-stage interleaver dimensions.
        code: code-word length and correction radius.
        channel_params: Gilbert–Elliott fade statistics.
        rng: optional generator for reproducible runs.
    """

    def __init__(
        self,
        interleaver_config: TwoStageConfig,
        code: CodewordConfig,
        channel_params: GilbertElliottParams,
        rng: Optional[np.random.Generator] = None,
    ):
        if interleaver_config.codeword_symbols != code.n_symbols:
            raise ValueError(
                "interleaver grouping and code length disagree: "
                f"{interleaver_config.codeword_symbols} vs {code.n_symbols}"
            )
        self.interleaver = TwoStageInterleaver(interleaver_config)
        self.code = code
        self.channel = GilbertElliottChannel(channel_params, rng)

    def run_frame(self) -> DownlinkResult:
        """Transmit one frame and compare with the uninterleaved baseline.

        Error propagation is tracked through the permutation directly
        (a mask permutes exactly like the payload), so the result is
        exact for any symbol alphabet.
        """
        frame_symbols = self.interleaver.frame_symbols
        channel_mask = self.channel.error_mask(frame_symbols)

        # Interleaved path: the transmitted stream is a permutation of
        # the payload; the channel corrupts transmit positions, and the
        # receiver's deinterleaver maps the mask back to payload order.
        mask_int = channel_mask.astype(np.uint8)
        payload_order_mask = self.interleaver.deinterleave(mask_int).astype(bool)
        interleaved = decode_mask(payload_order_mask, self.code)

        # Baseline: payload transmitted in order.
        baseline = decode_mask(channel_mask, self.code)

        per_word_int = errors_per_codeword(payload_order_mask, self.code.n_symbols)
        per_word_base = errors_per_codeword(channel_mask, self.code.n_symbols)
        return DownlinkResult(
            channel_profile=burst_profile(channel_mask),
            interleaved=interleaved,
            baseline=baseline,
            max_errors_interleaved=int(per_word_int.max(initial=0)),
            max_errors_baseline=int(per_word_base.max(initial=0)),
        )

    def run(self, frames: int) -> DownlinkResult:
        """Aggregate :meth:`run_frame` over several frames."""
        if frames < 1:
            raise ValueError(f"frames must be >= 1, got {frames}")
        results = [self.run_frame() for _ in range(frames)]
        profile = BurstProfile(
            total_symbols=sum(r.channel_profile.total_symbols for r in results),
            error_symbols=sum(r.channel_profile.error_symbols for r in results),
            burst_count=sum(r.channel_profile.burst_count for r in results),
            max_burst=max(r.channel_profile.max_burst for r in results),
            mean_burst=float(
                np.mean([r.channel_profile.mean_burst for r in results if r.channel_profile.burst_count])
            ) if any(r.channel_profile.burst_count for r in results) else 0.0,
        )

        def merge(reports):
            return DecodingReport(
                codewords=sum(r.codewords for r in reports),
                failed=sum(r.failed for r in reports),
                corrected_symbols=sum(r.corrected_symbols for r in reports),
                residual_symbol_errors=sum(r.residual_symbol_errors for r in reports),
            )

        return DownlinkResult(
            channel_profile=profile,
            interleaved=merge([r.interleaved for r in results]),
            baseline=merge([r.baseline for r in results]),
            max_errors_interleaved=max(r.max_errors_interleaved for r in results),
            max_errors_baseline=max(r.max_errors_baseline for r in results),
        )
