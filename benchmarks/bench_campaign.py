"""Campaign hot path: batched channel/decoder vs. the per-frame loop.

The acceptance bar for the Monte Carlo campaign engine: at 1000 frames
the batched path (2-D mask sampling, sparse position decode through the
precomputed two-stage permutation) must be >= 5x faster than the
per-frame ``run_frame`` loop while producing bit-identical results
(equality is asserted here on the full aggregate, and per-field in
``tests/channel/test_batched_channel.py``).

The speedup grows as frames shrink: per-frame overhead is fixed per
frame while the batched cost is dominated by the RNG stream, which both
paths must consume identically.  The assertion therefore runs on the
campaign's small default cell (triangle 15); larger cells are reported
in ``extra_info``.
"""

import time

import numpy as np
import pytest

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import GilbertElliottParams
from repro.interleaver.two_stage import TwoStageConfig
from repro.system.campaign import campaign_grid, run_campaign
from repro.system.downlink import OpticalDownlink

FRAMES = 1000
CHANNEL = GilbertElliottParams(p_g2b=0.004 / 0.996 / 60.0, p_b2g=1 / 60.0,
                               p_bad=0.7)
CODE = CodewordConfig(n_symbols=24, t_correctable=2)


def _downlink(triangle_n, seed=3):
    return OpticalDownlink(
        TwoStageConfig(triangle_n=triangle_n, symbols_per_element=4,
                       codeword_symbols=24),
        CODE,
        CHANNEL,
        rng=np.random.default_rng(seed),
    )


def _best_of(make_runner, rounds=3):
    best = float("inf")
    for _ in range(rounds):
        runner = make_runner()
        start = time.perf_counter()
        result = runner()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.paper_artifact("campaign hot path speedup")
def test_batched_channel_speedup(benchmark):
    speedups = {}
    for triangle_n in (15, 32, 48):
        per_frame_s, reference = _best_of(
            lambda n=triangle_n: lambda: _downlink(n).run(FRAMES))
        batched_s, outcome = _best_of(
            lambda n=triangle_n: lambda: _downlink(n).run_batched(FRAMES))
        assert outcome == reference, "batched path must be bit-identical"
        speedups[triangle_n] = per_frame_s / batched_s
        benchmark.extra_info[f"per_frame_ms_n{triangle_n}"] = round(
            per_frame_s * 1e3, 1)
        benchmark.extra_info[f"batched_ms_n{triangle_n}"] = round(
            batched_s * 1e3, 1)
        benchmark.extra_info[f"speedup_n{triangle_n}"] = round(
            speedups[triangle_n], 1)

    # Time the asserted configuration once more under the harness.
    benchmark.pedantic(_downlink(15).run_batched, args=(FRAMES,),
                       rounds=1, iterations=1)
    if not benchmark.disabled:  # smoke runs only check for rot, not timing
        assert speedups[15] >= 5.0, (
            f"batched path only {speedups[15]:.1f}x faster at 1000 frames; "
            f"all: { {n: round(s, 1) for n, s in speedups.items()} }"
        )


@pytest.mark.paper_artifact("campaign throughput")
def test_campaign_100_cells(benchmark):
    """A >= 100-cell campaign (the CLI acceptance grid) end to end."""
    channels = [
        GilbertElliottParams(p_g2b=fraction / (1 - fraction) / length,
                             p_b2g=1.0 / length, p_bad=0.7)
        for length in (40.0, 60.0, 90.0)
        for fraction in (0.002, 0.004, 0.008)
    ]
    interleavers = [
        TwoStageConfig(triangle_n=n, symbols_per_element=4, codeword_symbols=24)
        for n in (15, 32)
    ]
    cells = campaign_grid(channels, interleavers, [CODE], range(6), frames=200)
    assert len(cells) >= 100
    results = benchmark.pedantic(run_campaign, args=(cells,),
                                 rounds=1, iterations=1)
    benchmark.extra_info["cells"] = len(results)
    benchmark.extra_info["frames"] = sum(r.cell.frames for r in results)
    benchmark.extra_info["codewords"] = sum(r.codewords for r in results)
    failed = sum(r.failed_interleaved for r in results)
    benchmark.extra_info["pooled_interleaved_cwer"] = round(
        failed / sum(r.codewords for r in results), 6)
    assert len(results) == len(cells)
