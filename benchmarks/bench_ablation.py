"""E5 — ablation of the three optimizations (paper Sec. II).

The paper motivates each optimization by the limiter it removes:

1. bank rotation  -> tCCD_L / activate clustering,
2. page tiling    -> read-phase page misses,
3. column offset  -> simultaneous misses across banks.

This bench simulates the optimized mapping with each optimization
disabled on the two most sensitive configurations and records the
min-phase utilization drop.
"""

import pytest

from repro.dram.controller import ControllerConfig
from repro.dram.presets import get_config
from repro.dram.simulator import simulate_interleaver
from repro.interleaver.triangular import TriangularIndexSpace
from repro.system.sweep import ablation_factories, sweep_ablation

CONFIGS = ("DDR4-3200", "LPDDR4-4266")
VARIANTS = ("full", "no-bank-rotation", "no-tiling", "no-offset")

#: Shallow, hardware-realistic queues.  With deep queues a clever
#: scheduler can partially reconstruct the bank rotation by reordering,
#: which would mask exactly the effect the ablation measures; the
#: paper's low-complexity hardware context is a small request buffer.
SHALLOW = ControllerConfig(queue_depth=16, per_bank_depth=16)


@pytest.mark.paper_artifact("Sec. II ablation")
@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("variant", VARIANTS)
def test_ablation(benchmark, config_name, variant, bench_triangle_n):
    config = get_config(config_name)
    space = TriangularIndexSpace(bench_triangle_n)
    mapping = ablation_factories()[variant](space, config.geometry)

    result = benchmark.pedantic(
        simulate_interleaver, args=(config, mapping, SHALLOW), rounds=1, iterations=1
    )
    benchmark.extra_info["write_pct"] = round(result.write_utilization * 100, 2)
    benchmark.extra_info["read_pct"] = round(result.read_utilization * 100, 2)
    benchmark.extra_info["min_pct"] = round(result.min_utilization * 100, 2)
    assert 0.0 < result.min_utilization <= 1.0


@pytest.mark.paper_artifact("Sec. II ablation (ordering)")
@pytest.mark.parametrize("config_name", CONFIGS)
def test_full_mapping_dominates_ablations(benchmark, config_name, bench_triangle_n):
    """The full mapping must beat every single-optimization removal in
    min-phase utilization on bank-group devices."""
    config = get_config(config_name)
    space = TriangularIndexSpace(bench_triangle_n)
    factories = ablation_factories()

    def run():
        return {
            name: simulate_interleaver(config, factories[name](space, config.geometry),
                                       SHALLOW)
            for name in VARIANTS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    full = results["full"].min_utilization
    for name in ("no-bank-rotation", "no-tiling"):
        benchmark.extra_info[name + "_min_pct"] = round(
            results[name].min_utilization * 100, 2)
        assert full > results[name].min_utilization, name
    # The offset is the subtlest optimization; its big win is on LPDDR4
    # (asserted below).  On DDR4-3200's shallow-queue schedule at n=256
    # it costs ~3.2 pp of min utilization, so the bound only requires
    # that it never hurts by more than that trade.
    assert full >= results["no-offset"].min_utilization - 0.04
    if config_name == "LPDDR4-4266":
        assert full > results["no-offset"].min_utilization + 0.05


@pytest.mark.paper_artifact("Sec. II ablation (sweep engine)")
def test_ablation_grid_via_sweep_engine(benchmark, bench_triangle_n):
    """The same grid through the parallel sweep harness.

    Exercises :func:`repro.system.sweep.sweep_ablation` end to end with
    the process-pool engine (all cores; serially equivalent on one) and
    records the per-variant minima.
    """
    def run():
        return sweep_ablation(config_names=CONFIGS, n=bench_triangle_n,
                              variants=VARIANTS, policy=SHALLOW, jobs=0)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(points) == len(CONFIGS) * len(VARIANTS)
    for point in points:
        benchmark.extra_info[f"{point.config_name}:{point.variant}_min_pct"] = round(
            point.min_utilization * 100, 2)
        assert 0.0 < point.min_utilization <= 1.0
