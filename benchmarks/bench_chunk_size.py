"""Address-pipeline chunk sizing: throughput vs in-flight byte budget.

The vectorized address pipeline batches its work into columnar chunks
sized by a byte budget (``chunk_bytes``, default 6 MiB — see
:data:`repro.interleaver.triangular.DEFAULT_CHUNK_BYTES`).  Too small a
budget drowns the pipeline in per-chunk Python/NumPy call overhead; too
large a budget spills the working set out of cache and grows the
footprint without gaining anything.  This benchmark drains the full
write+read pipeline of one paper-scale mapping across a geometric sweep
of budgets and asserts the default sits on the flat part of the curve:
no sweep point may beat it by more than ``FLATNESS_FACTOR``.
"""

import time

import pytest

from repro.dram.presets import get_config
from repro.interleaver.triangular import DEFAULT_CHUNK_BYTES, TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping

#: The default budget must be within this factor of the sweep's best
#: point (generous: the curve is flat over an order of magnitude, but
#: shared CI hosts are noisy).
FLATNESS_FACTOR = 1.5

#: Byte budgets swept, default included: 1/256x .. 16x around 6 MiB.
BUDGETS = tuple(DEFAULT_CHUNK_BYTES * k // 256 for k in (1, 16, 64)) + (
    DEFAULT_CHUNK_BYTES,
    DEFAULT_CHUNK_BYTES * 4,
    DEFAULT_CHUNK_BYTES * 16,
)

N = 2048


def _drain(mapping, chunk_bytes):
    """Consume both pipeline directions; return (bursts, checksum)."""
    bursts = 0
    checksum = 0
    for stream in (mapping.write_addresses_array(chunk_bytes=chunk_bytes),
                   mapping.read_addresses_array(chunk_bytes=chunk_bytes)):
        for banks, rows, columns in stream:
            bursts += int(banks.shape[0])
            checksum += int(banks.sum()) + int(rows.sum()) + int(columns.sum())
    return bursts, checksum


@pytest.mark.paper_artifact("address pipeline (chunk sizing)")
def test_default_chunk_bytes_on_flat_part_of_curve(benchmark):
    """Sweep the budget, pin the default onto the curve's flat region.

    Every sweep point must drain the identical burst set (count and
    checksum pinned) — granularity changes batching, never content.
    Per-budget wall-clocks land in ``extra_info``; under
    ``--benchmark-disable`` (CI smoke) only the content check runs.
    """
    config = get_config("DDR4-3200")
    mapping = OptimizedMapping(TriangularIndexSpace(N), config.geometry,
                               prefer_tall=False)

    expected = benchmark.pedantic(_drain, args=(mapping, DEFAULT_CHUNK_BYTES),
                                  rounds=1, iterations=1)
    assert expected[0] == mapping.space.num_elements * 2

    benchmark.extra_info["default_chunk_bytes"] = DEFAULT_CHUNK_BYTES
    benchmark.extra_info["bursts"] = expected[0]
    if benchmark.disabled:  # smoke runs only check for rot, not timing
        return

    seconds = {}
    for budget in BUDGETS:
        _drain(mapping, budget)  # warmup this working-set size
        best = float("inf")
        for _ in range(2):
            t0 = time.perf_counter()
            result = _drain(mapping, budget)
            best = min(best, time.perf_counter() - t0)
        assert result == expected  # identical bursts at every granularity
        seconds[budget] = best
        benchmark.extra_info[f"drain_s_at_{budget // 1024}KiB"] = round(best, 3)

    fastest = min(seconds.values())
    default_seconds = seconds[DEFAULT_CHUNK_BYTES]
    benchmark.extra_info["default_vs_best"] = round(default_seconds / fastest, 3)
    assert default_seconds <= fastest * FLATNESS_FACTOR
