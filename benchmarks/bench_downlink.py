"""E6 — the Sec. I motivation: interleaving enables reliable
transmission over the bursty optical channel.

Not a table in the paper, but the claim every other number rests on;
regenerated as a code-word failure-rate comparison with and without the
two-stage interleaver at equal symbol error rate.
"""

import numpy as np
import pytest

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import GilbertElliottParams
from repro.interleaver.two_stage import TwoStageConfig
from repro.system.downlink import OpticalDownlink


def _downlink(seed):
    return OpticalDownlink(
        TwoStageConfig(triangle_n=48, symbols_per_element=4, codeword_symbols=24),
        CodewordConfig(n_symbols=24, t_correctable=2),
        GilbertElliottParams(p_g2b=0.004 / 0.996 / 60.0, p_b2g=1 / 60.0, p_bad=0.7),
        rng=np.random.default_rng(seed),
    )


@pytest.mark.paper_artifact("Sec. I interleaving gain")
def test_interleaving_gain(benchmark):
    downlink = _downlink(seed=42)
    result = benchmark.pedantic(downlink.run, args=(40,), rounds=1, iterations=1)
    benchmark.extra_info["baseline_cw_failures"] = result.baseline.failed
    benchmark.extra_info["interleaved_cw_failures"] = result.interleaved.failed
    benchmark.extra_info["gain"] = (
        round(result.gain, 2) if result.gain != float("inf") else "inf"
    )
    benchmark.extra_info["channel_max_burst"] = result.channel_profile.max_burst
    assert result.baseline.failed > result.interleaved.failed


@pytest.mark.paper_artifact("Sec. I worst-case dispersion")
def test_worst_codeword_flattening(benchmark):
    downlink = _downlink(seed=7)
    result = benchmark.pedantic(downlink.run, args=(40,), rounds=1, iterations=1)
    benchmark.extra_info["max_errors_baseline"] = result.max_errors_baseline
    benchmark.extra_info["max_errors_interleaved"] = result.max_errors_interleaved
    assert result.max_errors_interleaved < result.max_errors_baseline
