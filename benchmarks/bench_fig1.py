"""E2 — Fig. 1: the four mapping-scheme panels.

Renders Fig. 1a-1d for a figure-scale device (2 banks, small pages) and
checks the structural facts the figure communicates: the diagonal bank
pattern, the page-tile column layout, and that the offset panel differs
from the non-offset one by a circular shift.
"""

import pytest

from repro.dram.geometry import Geometry
from repro.interleaver.triangular import RectangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.viz import render_banks, render_columns, render_figure1, render_full


@pytest.fixture
def fig_geometry():
    """Two banks and a four-burst page, as in the paper's figure."""
    return Geometry(bank_groups=2, banks_per_group=1, rows=64, columns=32,
                    bus_width_bits=64, burst_length=8)


@pytest.fixture
def fig_space():
    return RectangularIndexSpace(8, 8)


@pytest.mark.paper_artifact("Fig. 1")
def test_fig1_panels_render(benchmark, fig_geometry, fig_space):
    text = benchmark(render_figure1, fig_space, fig_geometry)
    for tag in ("(a)", "(b)", "(c)", "(d)"):
        assert tag in text


@pytest.mark.paper_artifact("Fig. 1a")
def test_fig1a_diagonal_banks(benchmark, fig_geometry, fig_space):
    mapping = OptimizedMapping(fig_space, fig_geometry)
    text = benchmark(render_banks, mapping)
    lines = text.splitlines()
    # Diagonal pattern: every row starts one bank later than the last.
    assert lines[0].split()[0] == "B0"
    assert lines[1].split()[0] == "B1"
    assert lines[0].split()[1] == "B1"


@pytest.mark.paper_artifact("Fig. 1b")
def test_fig1b_page_tiles(benchmark, fig_geometry, fig_space):
    mapping = OptimizedMapping(fig_space, fig_geometry, enable_offset=False)
    text = benchmark(render_columns, mapping)
    labels = {token for line in text.splitlines() for token in line.split()}
    # A 4-burst page yields columns C0..C3.
    assert {"C0", "C1", "C2", "C3"} <= labels


@pytest.mark.paper_artifact("Fig. 1c vs 1d")
def test_fig1d_offset_shifts_cells(benchmark, fig_geometry, fig_space):
    no_offset = OptimizedMapping(fig_space, fig_geometry, enable_offset=False)
    offset = OptimizedMapping(fig_space, fig_geometry)
    text = benchmark(render_full, offset)
    assert text != render_full(no_offset)
    # Bank-0 cells are unshifted: identical labels in both panels.
    for i in range(fig_space.height):
        for j in range(fig_space.width):
            if offset.bank_of(i, j) == 0:
                assert offset.address_tuple(i, j) == no_offset.address_tuple(i, j)
