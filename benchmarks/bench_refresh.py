"""E3 — the refresh-disabled experiment (paper Sec. III, last paragraph).

"When refresh is disabled ... a bandwidth utilization of over 99 % is
consistently achieved."  Legal whenever interleaver data lives shorter
than the DRAM retention period (32-64 ms).  Regenerated here for the
optimized mapping across all standards' fast grades.
"""

import pytest

from repro.dram.controller import ControllerConfig
from repro.dram.presets import get_config
from repro.dram.simulator import simulate_interleaver
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping

FAST_GRADES = ("DDR3-1600", "DDR4-3200", "DDR5-6400", "LPDDR4-4266", "LPDDR5-8533")


@pytest.mark.paper_artifact("refresh-disabled >99%")
@pytest.mark.parametrize("config_name", FAST_GRADES)
def test_refresh_disabled_utilization(benchmark, config_name, bench_triangle_n):
    config = get_config(config_name)
    space = TriangularIndexSpace(bench_triangle_n)
    mapping = OptimizedMapping(space, config.geometry, prefer_tall=False)

    def run():
        off = simulate_interleaver(config, mapping,
                                   ControllerConfig(refresh_enabled=False))
        on = simulate_interleaver(config, mapping,
                                  ControllerConfig(refresh_enabled=True))
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["refresh_on_min_pct"] = round(on.min_utilization * 100, 2)
    benchmark.extra_info["refresh_off_min_pct"] = round(off.min_utilization * 100, 2)
    benchmark.extra_info["refresh_cost_pct"] = round(
        (off.min_utilization - on.min_utilization) * 100, 2)
    # Refresh occasionally *helps* a miss-heavy pattern by batching
    # precharges, so allow sub-percent noise in the comparison.
    assert off.min_utilization >= on.min_utilization - 0.005
    assert off.write.refreshes == 0 and off.read.refreshes == 0


@pytest.mark.paper_artifact("refresh legality bound")
def test_interleaver_lifetime_vs_retention(benchmark):
    """The argument that makes disabling refresh legal: at 100 Gbit/s the
    paper-scale interleaver holds any symbol for far less than the
    32 ms retention floor."""
    from repro.interleaver.triangular import interleaver_delay

    def worst_dwell_ms():
        space = TriangularIndexSpace(5000)          # 12.5 M elements
        # Worst-case dwell is bounded by one full frame of elements.
        elements = space.num_elements
        bits_per_element = 512                       # one DRAM burst
        line_rate_bit_per_s = 100e9
        frame_seconds = elements * bits_per_element / line_rate_bit_per_s
        # Spot-check the delay profile on a scaled model.
        small = TriangularIndexSpace(256)
        max_delay = max(interleaver_delay(small, i, 0) for i in range(small.n))
        assert max_delay < small.num_elements
        return frame_seconds * 1e3

    dwell_ms = benchmark(worst_dwell_ms)
    benchmark.extra_info["worst_dwell_ms"] = round(dwell_ms, 2)
    benchmark.extra_info["retention_window_ms"] = "32-64"
    # One frame (the upper bound on dwell) fits within the 32-64 ms
    # retention window the paper quotes — the legality condition for
    # disabling refresh (64.01 ms at exactly 100 Gbit/s; any practical
    # line rate above that shortens it).
    assert dwell_ms <= 64.5
