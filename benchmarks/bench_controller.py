"""Controller-engine benchmark: unified scheduler vs the frozen seed.

Times the full Table I phase workload (all ten configurations, both
mappings, both phases, n=512, vectorized address chunks) through the
unified scheduling engine and through the frozen pre-engine scheduler
(:mod:`repro.dram._reference`), asserting both that the results are
bit-identical and that the engine delivers the refactor's promised
serial speedup.  A small mixed-traffic cell times the turnaround rule
set through the same engine core.
"""

import time

import pytest

from repro.dram._reference import reference_run_phase
from repro.dram.controller import OP_READ, OP_WRITE, ControllerConfig, MemoryController
from repro.dram.mixed import steady_state_interleaver
from repro.dram.presets import TABLE1_CONFIG_NAMES, get_config
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping

#: The engine must beat the seed scheduler by at least this factor on
#: the Table I phase workload (measured ~1.4x on an idle core; the
#: threshold leaves headroom for noisy hosts).
REQUIRED_SPEEDUP = 1.3

N = 512


def _phase_grid():
    for config_name in TABLE1_CONFIG_NAMES:
        config = get_config(config_name)
        space = TriangularIndexSpace(N)
        for mapping in (RowMajorMapping(space, config.geometry),
                        OptimizedMapping(space, config.geometry, prefer_tall=False)):
            for op in (OP_WRITE, OP_READ):
                yield config, mapping, op


def _chunks(mapping, op):
    return (mapping.write_addresses_array() if op == OP_WRITE
            else mapping.read_addresses_array())


@pytest.mark.paper_artifact("Table I (scheduling engine)")
def test_engine_vs_seed_scheduler_speedup(benchmark):
    """Wall-clock of every Table I phase, engine vs frozen seed.

    Both sides consume identical columnar address chunks, so the
    comparison isolates the scheduler loop itself.  The wall-clocks and
    speedup land in ``extra_info``; results must be bit-identical.
    """

    def engine_grid():
        return [
            MemoryController(config, ControllerConfig())
            .run_phase(_chunks(mapping, op), op).stats
            for config, mapping, op in _phase_grid()
        ]

    def seed_grid():
        return [
            reference_run_phase(config, _chunks(mapping, op), op,
                                ControllerConfig()).stats
            for config, mapping, op in _phase_grid()
        ]

    # Wall-clock around pedantic: benchmark.stats is unavailable under
    # --benchmark-disable (the CI smoke run), a plain timer always is.
    # Both sides run twice, interleaved, and score their best round —
    # a single-round pair flakes when a background load hits one side.
    t0 = time.perf_counter()
    engine_stats = benchmark.pedantic(engine_grid, rounds=1, iterations=1)
    engine_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    seed_stats = seed_grid()
    seed_seconds = time.perf_counter() - t1

    assert engine_stats == seed_stats  # bit-identical before it may be faster

    t2 = time.perf_counter()
    engine_grid()
    engine_seconds = min(engine_seconds, time.perf_counter() - t2)
    t3 = time.perf_counter()
    seed_grid()
    seed_seconds = min(seed_seconds, time.perf_counter() - t3)

    speedup = seed_seconds / engine_seconds
    benchmark.extra_info["engine_s"] = round(engine_seconds, 2)
    benchmark.extra_info["seed_scheduler_s"] = round(seed_seconds, 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["phases"] = 40
    benchmark.extra_info["requests_per_phase"] = TriangularIndexSpace(N).num_elements

    if not benchmark.disabled:  # smoke runs only check for rot, not timing
        assert speedup > REQUIRED_SPEEDUP


@pytest.mark.paper_artifact("steady-state mixed traffic")
def test_mixed_steady_state_cell(benchmark):
    """One steady-state interleaved read/write cell through the engine.

    Pins the mixed path of the unified core into the benchmark suite:
    utilization, turnaround count and the per-direction split land in
    ``extra_info``.
    """
    config = get_config("DDR4-3200")
    mapping = OptimizedMapping(TriangularIndexSpace(192), config.geometry,
                               prefer_tall=False)

    result = benchmark.pedantic(
        steady_state_interleaver,
        args=(config, mapping),
        kwargs={"group": 16},
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["utilization_pct"] = round(result.utilization * 100, 2)
    benchmark.extra_info["reads"] = result.reads
    benchmark.extra_info["writes"] = result.writes
    benchmark.extra_info["turnarounds"] = result.turnarounds
    assert result.reads == result.writes == mapping.space.num_elements
    assert 0.0 < result.utilization <= 1.0
