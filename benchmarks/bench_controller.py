"""Controller-engine benchmark: kernel vs engine vs the frozen seed.

Times the full Table I phase workload (all ten configurations, both
mappings, both phases, n=512, vectorized address chunks) through three
arbiters: the event-wheel batch-advance kernel
(:mod:`repro.dram.kernel`), the unified scheduling engine
(:mod:`repro.dram.engine`) and the frozen pre-engine scheduler
(:mod:`repro.dram._reference`).  All three must be bit-identical; the
engine must beat the seed and the kernel must beat the engine by the
pinned factors below.  A small mixed-traffic cell times the turnaround
rule set through the shared engine core.

Timing protocol: each comparison runs one untimed warmup round, then
three timed rounds with the contenders interleaved inside every round,
and scores each side's best round — a background load burst then hits
all sides of the round it lands in instead of biasing one contender.
"""

import math
import time

import pytest

from repro.dram import _kernelc
from repro.dram._reference import reference_run_phase
from repro.dram.controller import (
    ENGINE_KERNEL,
    OP_READ,
    OP_WRITE,
    ControllerConfig,
    MemoryController,
)
from repro.dram.mixed import steady_state_interleaver
from repro.dram.presets import TABLE1_CONFIG_NAMES, get_config
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping

#: The engine must beat the seed scheduler by at least this factor on
#: the Table I phase workload (measured ~1.4x on an idle core; the
#: threshold leaves headroom for noisy hosts).
REQUIRED_SPEEDUP = 1.3

#: The compiled batch-advance kernel must beat the general engine by at
#: least this factor on the same workload (measured ~10x on an idle
#: core; the threshold leaves wide headroom for noisy hosts).
KERNEL_REQUIRED_SPEEDUP = 3.0

#: Timed rounds per comparison, after one untimed warmup round.
ROUNDS = 3

N = 512


def _phase_grid():
    for config_name in TABLE1_CONFIG_NAMES:
        config = get_config(config_name)
        space = TriangularIndexSpace(N)
        for mapping in (RowMajorMapping(space, config.geometry),
                        OptimizedMapping(space, config.geometry, prefer_tall=False)):
            for op in (OP_WRITE, OP_READ):
                yield config, mapping, op


def _chunks(mapping, op):
    return (mapping.write_addresses_array() if op == OP_WRITE
            else mapping.read_addresses_array())


def _engine_grid():
    return [
        MemoryController(config, ControllerConfig())
        .run_phase(_chunks(mapping, op), op).stats
        for config, mapping, op in _phase_grid()
    ]


def _kernel_grid():
    return [
        MemoryController(config, ControllerConfig(), engine=ENGINE_KERNEL)
        .run_phase(_chunks(mapping, op), op).stats
        for config, mapping, op in _phase_grid()
    ]


def _seed_grid():
    return [
        reference_run_phase(config, _chunks(mapping, op), op,
                            ControllerConfig()).stats
        for config, mapping, op in _phase_grid()
    ]


def _interleaved_best(sides, rounds=ROUNDS):
    """Best wall-clock per side: warmup round, then interleaved rounds.

    Every timed round runs all ``sides`` back to back (same order), so
    transient host noise degrades whole rounds rather than single
    contenders, and the best round per side discards it.  Wall-clock is
    measured with a plain timer because ``benchmark.stats`` is
    unavailable under ``--benchmark-disable`` (the CI smoke run).
    """
    for fn in sides:
        fn()  # warmup: page caches, allocator pools, lazy imports
    best = [math.inf] * len(sides)
    for _ in range(rounds):
        for k, fn in enumerate(sides):
            t0 = time.perf_counter()
            fn()
            best[k] = min(best[k], time.perf_counter() - t0)
    return best


@pytest.mark.paper_artifact("Table I (scheduling engine)")
def test_engine_vs_seed_scheduler_speedup(benchmark):
    """Wall-clock of every Table I phase, engine vs frozen seed.

    Both sides consume identical columnar address chunks, so the
    comparison isolates the scheduler loop itself.  The wall-clocks and
    speedup land in ``extra_info``; results must be bit-identical.
    """
    engine_stats = benchmark.pedantic(_engine_grid, rounds=1, iterations=1)
    seed_stats = _seed_grid()
    assert engine_stats == seed_stats  # bit-identical before it may be faster

    benchmark.extra_info["phases"] = 40
    benchmark.extra_info["requests_per_phase"] = TriangularIndexSpace(N).num_elements
    if benchmark.disabled:  # smoke runs only check for rot, not timing
        return

    engine_seconds, seed_seconds = _interleaved_best((_engine_grid, _seed_grid))
    speedup = seed_seconds / engine_seconds
    benchmark.extra_info["engine_s"] = round(engine_seconds, 2)
    benchmark.extra_info["seed_scheduler_s"] = round(seed_seconds, 2)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup > REQUIRED_SPEEDUP


@pytest.mark.paper_artifact("Table I (batch-advance kernel)")
def test_kernel_vs_engine_speedup(benchmark):
    """Wall-clock of every Table I phase, batch-advance kernel vs engine.

    The kernel path (``--kernel`` / ``engine="kernel"``) must be
    bit-identical to the general engine on the full grid and — with the
    compiled backend available — at least ``KERNEL_REQUIRED_SPEEDUP``
    times faster.  Pure-Python-fallback identity is pinned separately
    by ``tests/dram/test_kernel_differential.py``; the speedup contract
    only applies to the compiled segment loop.
    """
    kernel_stats = benchmark.pedantic(_kernel_grid, rounds=1, iterations=1)
    engine_stats = _engine_grid()
    assert kernel_stats == engine_stats  # bit-identical before it may be faster

    benchmark.extra_info["phases"] = 40
    benchmark.extra_info["requests_per_phase"] = TriangularIndexSpace(N).num_elements
    benchmark.extra_info["native_backend"] = _kernelc.available()
    if benchmark.disabled:  # smoke runs only check for rot, not timing
        return
    if not _kernelc.available():
        pytest.skip("compiled kernel backend unavailable on this host")

    engine_seconds, kernel_seconds = _interleaved_best((_engine_grid, _kernel_grid))
    speedup = engine_seconds / kernel_seconds
    benchmark.extra_info["engine_s"] = round(engine_seconds, 2)
    benchmark.extra_info["kernel_s"] = round(kernel_seconds, 2)
    benchmark.extra_info["kernel_speedup"] = round(speedup, 2)
    assert speedup >= KERNEL_REQUIRED_SPEEDUP


@pytest.mark.paper_artifact("steady-state mixed traffic")
def test_mixed_steady_state_cell(benchmark):
    """One steady-state interleaved read/write cell through the engine.

    Pins the mixed path of the unified core into the benchmark suite:
    utilization, turnaround count and the per-direction split land in
    ``extra_info``.
    """
    config = get_config("DDR4-3200")
    mapping = OptimizedMapping(TriangularIndexSpace(192), config.geometry,
                               prefer_tall=False)

    result = benchmark.pedantic(
        steady_state_interleaver,
        args=(config, mapping),
        kwargs={"group": 16},
        rounds=1,
        iterations=1,
    )

    benchmark.extra_info["utilization_pct"] = round(result.utilization * 100, 2)
    benchmark.extra_info["reads"] = result.reads
    benchmark.extra_info["writes"] = result.writes
    benchmark.extra_info["turnarounds"] = result.turnarounds
    assert result.reads == result.writes == mapping.space.num_elements
    assert 0.0 < result.utilization <= 1.0
