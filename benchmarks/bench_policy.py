"""E8 — scheduling-policy zoo: per-policy throughput on the Table I grid.

Times one full Table I pass (all ten configurations, optimized
mapping, write + read phases) per scheduling discipline at n=512 and
records both the wall-clock throughput (requests scheduled per second)
and the resulting utilizations in ``extra_info``.  The open-page row
doubles as the baseline: every other discipline's utilization delta is
physics (closed-page pays a full ACT/PRE per burst, bank partitioning
halves each phase's bank-level parallelism), not scheduler overhead.
"""

import time

import pytest

from repro.dram.policy import POLICY_NAMES
from repro.dram.presets import TABLE1_CONFIG_NAMES
from repro.system.sweep import run_policy_table

#: Interleaver size for the throughput grid (~131 k bursts per phase).
POLICY_BENCH_N = 512

#: Requests per phase at ``POLICY_BENCH_N`` (triangular number).
_REQUESTS_PER_PHASE = POLICY_BENCH_N * (POLICY_BENCH_N + 1) // 2


@pytest.mark.paper_artifact("Policy zoo throughput")
@pytest.mark.parametrize("discipline", POLICY_NAMES)
def test_policy_grid_throughput(benchmark, discipline):
    def grid():
        return run_policy_table(n=POLICY_BENCH_N, disciplines=(discipline,))

    # Wall-clock around pedantic: benchmark.stats is unavailable under
    # --benchmark-disable (the CI smoke run), a plain timer always is.
    t0 = time.perf_counter()
    rows = benchmark.pedantic(grid, rounds=1, iterations=1)
    seconds = time.perf_counter() - t0

    assert len(rows) == len(TABLE1_CONFIG_NAMES)
    phases = 2 * len(rows)
    benchmark.extra_info["discipline"] = discipline
    benchmark.extra_info["grid_s"] = round(seconds, 2)
    benchmark.extra_info["requests_per_s"] = round(
        phases * _REQUESTS_PER_PHASE / seconds)
    benchmark.extra_info["min_utilization_pct"] = {
        row.config_name: round(row.min_utilization * 100, 2) for row in rows}
    for row in rows:
        assert row.discipline == discipline
        assert 0.0 < row.min_utilization <= 1.0
