"""E1 — Table I: DRAM bandwidth utilization for all ten configurations.

Regenerates every cell of the paper's Table I: (configuration) x
(row-major | optimized) x (write | read).  The utilizations land in
``extra_info`` of each benchmark record; the benchmark time itself
measures the simulator.
"""

import os
import time

import pytest

from repro.dram.controller import OP_READ, OP_WRITE
from repro.dram.presets import TABLE1_CONFIG_NAMES, get_config
from repro.dram.simulator import simulate_phase
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping
from repro.system.sweep import run_table1

#: Paper Table I values (write %, read %) for context in reports.
PAPER_TABLE1 = {
    ("DDR3-800", "row-major"): (95.99, 96.03),
    ("DDR3-800", "optimized"): (95.99, 96.26),
    ("DDR3-1600", "row-major"): (95.75, 64.16),
    ("DDR3-1600", "optimized"): (95.91, 96.16),
    ("DDR4-1600", "row-major"): (92.02, 73.92),
    ("DDR4-1600", "optimized"): (92.01, 92.37),
    ("DDR4-3200", "row-major"): (91.83, 43.50),
    ("DDR4-3200", "optimized"): (91.86, 92.15),
    ("DDR5-3200", "row-major"): (100.00, 96.37),
    ("DDR5-3200", "optimized"): (100.00, 100.00),
    ("DDR5-6400", "row-major"): (99.90, 88.95),
    ("DDR5-6400", "optimized"): (99.83, 99.97),
    ("LPDDR4-2133", "row-major"): (99.02, 66.00),
    ("LPDDR4-2133", "optimized"): (99.41, 98.30),
    ("LPDDR4-4266", "row-major"): (98.03, 35.77),
    ("LPDDR4-4266", "optimized"): (99.67, 99.72),
    ("LPDDR5-4267", "row-major"): (99.39, 55.87),
    ("LPDDR5-4267", "optimized"): (99.77, 100.00),
    ("LPDDR5-8533", "row-major"): (97.56, 47.25),
    ("LPDDR5-8533", "optimized"): (99.14, 99.66),
}


def _mapping(name, space, geometry):
    if name == "row-major":
        return RowMajorMapping(space, geometry)
    return OptimizedMapping(space, geometry, prefer_tall=False)


@pytest.mark.paper_artifact("Table I")
@pytest.mark.parametrize("config_name", TABLE1_CONFIG_NAMES)
@pytest.mark.parametrize("mapping_name", ["row-major", "optimized"])
@pytest.mark.parametrize("op", [OP_WRITE, OP_READ])
def test_table1_cell(benchmark, config_name, mapping_name, op, bench_triangle_n):
    config = get_config(config_name)
    space = TriangularIndexSpace(bench_triangle_n)
    mapping = _mapping(mapping_name, space, config.geometry)

    stats = benchmark.pedantic(
        simulate_phase,
        args=(config, mapping, op),
        rounds=1,
        iterations=1,
    )

    paper_write, paper_read = PAPER_TABLE1[(config_name, mapping_name)]
    benchmark.extra_info["utilization_pct"] = round(stats.utilization * 100, 2)
    benchmark.extra_info["paper_pct"] = paper_write if op == OP_WRITE else paper_read
    benchmark.extra_info["page_hit_rate"] = round(stats.hit_rate, 3)
    benchmark.extra_info["requests"] = stats.requests
    assert 0.0 < stats.utilization <= 1.0


@pytest.mark.paper_artifact("Table I (request pipeline)")
def test_table1_pipeline_speedup(benchmark):
    """Wall-clock of the full Table I grid at n=512, three ways.

    Compares the per-element tuple reference path against the vectorized
    address pipeline (columnar chunks into the controller's bulk intake)
    and, when the host has more than one core, the process-parallel
    sweep engine on top.  The wall-clocks and speedups land in
    ``extra_info``; results must be identical across all paths.
    """
    n = 512

    t0 = time.perf_counter()
    tuple_rows = run_table1(n=n, use_arrays=False)
    t1 = time.perf_counter()

    def vectorized():
        return run_table1(n=n, use_arrays=True)

    # Wall-clock around pedantic: benchmark.stats is unavailable under
    # --benchmark-disable (the CI smoke run), a plain timer always is.
    t1b = time.perf_counter()
    array_rows = benchmark.pedantic(vectorized, rounds=1, iterations=1)
    array_seconds = time.perf_counter() - t1b

    assert [r.cells() for r in array_rows] == [r.cells() for r in tuple_rows]

    tuple_seconds = t1 - t0
    benchmark.extra_info["tuple_path_s"] = round(tuple_seconds, 2)
    benchmark.extra_info["vectorized_s"] = round(array_seconds, 2)
    speedup = tuple_seconds / array_seconds
    benchmark.extra_info["vectorized_speedup"] = round(speedup, 2)

    cores = os.cpu_count() or 1
    if cores > 1:
        t2 = time.perf_counter()
        parallel_rows = run_table1(n=n, use_arrays=True, jobs=0)
        t3 = time.perf_counter()
        assert [r.cells() for r in parallel_rows] == [r.cells() for r in tuple_rows]
        benchmark.extra_info["parallel_jobs"] = cores
        benchmark.extra_info["parallel_s"] = round(t3 - t2, 2)
        benchmark.extra_info["pipeline_speedup"] = round(tuple_seconds / (t3 - t2), 2)

    # The vectorized intake must beat per-element tuples outright.  The
    # threshold is deliberately loose (measured ~1.6x on an idle core)
    # because both sides are single-round wall-clocks on a possibly
    # noisy host; the honest numbers live in extra_info.  The full
    # pipeline factor (x3+ vs the pre-pipeline seed) additionally needs
    # --jobs on multicore hosts, recorded above when available.
    if not benchmark.disabled:  # smoke runs only check for rot, not timing
        assert speedup > 1.1
