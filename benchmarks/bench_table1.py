"""E1 — Table I: DRAM bandwidth utilization for all ten configurations.

Regenerates every cell of the paper's Table I: (configuration) x
(row-major | optimized) x (write | read).  The utilizations land in
``extra_info`` of each benchmark record; the benchmark time itself
measures the simulator.
"""

import pytest

from repro.dram.controller import OP_READ, OP_WRITE
from repro.dram.presets import TABLE1_CONFIG_NAMES, get_config
from repro.dram.simulator import simulate_phase
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping

#: Paper Table I values (write %, read %) for context in reports.
PAPER_TABLE1 = {
    ("DDR3-800", "row-major"): (95.99, 96.03),
    ("DDR3-800", "optimized"): (95.99, 96.26),
    ("DDR3-1600", "row-major"): (95.75, 64.16),
    ("DDR3-1600", "optimized"): (95.91, 96.16),
    ("DDR4-1600", "row-major"): (92.02, 73.92),
    ("DDR4-1600", "optimized"): (92.01, 92.37),
    ("DDR4-3200", "row-major"): (91.83, 43.50),
    ("DDR4-3200", "optimized"): (91.86, 92.15),
    ("DDR5-3200", "row-major"): (100.00, 96.37),
    ("DDR5-3200", "optimized"): (100.00, 100.00),
    ("DDR5-6400", "row-major"): (99.90, 88.95),
    ("DDR5-6400", "optimized"): (99.83, 99.97),
    ("LPDDR4-2133", "row-major"): (99.02, 66.00),
    ("LPDDR4-2133", "optimized"): (99.41, 98.30),
    ("LPDDR4-4266", "row-major"): (98.03, 35.77),
    ("LPDDR4-4266", "optimized"): (99.67, 99.72),
    ("LPDDR5-4267", "row-major"): (99.39, 55.87),
    ("LPDDR5-4267", "optimized"): (99.77, 100.00),
    ("LPDDR5-8533", "row-major"): (97.56, 47.25),
    ("LPDDR5-8533", "optimized"): (99.14, 99.66),
}


def _mapping(name, space, geometry):
    if name == "row-major":
        return RowMajorMapping(space, geometry)
    return OptimizedMapping(space, geometry, prefer_tall=False)


@pytest.mark.paper_artifact("Table I")
@pytest.mark.parametrize("config_name", TABLE1_CONFIG_NAMES)
@pytest.mark.parametrize("mapping_name", ["row-major", "optimized"])
@pytest.mark.parametrize("op", [OP_WRITE, OP_READ])
def test_table1_cell(benchmark, config_name, mapping_name, op, bench_triangle_n):
    config = get_config(config_name)
    space = TriangularIndexSpace(bench_triangle_n)
    mapping = _mapping(mapping_name, space, config.geometry)

    stats = benchmark.pedantic(
        simulate_phase,
        args=(config, mapping, op),
        rounds=1,
        iterations=1,
    )

    paper_write, paper_read = PAPER_TABLE1[(config_name, mapping_name)]
    benchmark.extra_info["utilization_pct"] = round(stats.utilization * 100, 2)
    benchmark.extra_info["paper_pct"] = paper_write if op == OP_WRITE else paper_read
    benchmark.extra_info["page_hit_rate"] = round(stats.hit_rate, 3)
    benchmark.extra_info["requests"] = stats.requests
    assert 0.0 < stats.utilization <= 1.0
