"""Mechanical performance of the Python hot paths.

Not a paper artifact — tracks the speed of the address computation and
the controller inner loop so regressions in the simulator itself are
visible in CI history.
"""

import pytest

from repro.dram.controller import OP_WRITE, ControllerConfig, MemoryController
from repro.dram.presets import get_config
from repro.dram.simulator import simulate_phase
from repro.interleaver.block import TriangularInterleaver
from repro.interleaver.stream import sequential_symbols
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping


@pytest.fixture(scope="module")
def ddr4():
    return get_config("DDR4-3200")


class TestAddressComputation:
    def test_optimized_address_tuple(self, benchmark, ddr4):
        mapping = OptimizedMapping(TriangularIndexSpace(512), ddr4.geometry)
        cells = [(i, j) for i in range(0, 512, 7) for j in range(0, 512 - i, 7)]

        def run():
            address_tuple = mapping.address_tuple
            for i, j in cells:
                address_tuple(i, j)

        benchmark(run)
        benchmark.extra_info["addresses"] = len(cells)

    def test_row_major_address_tuple(self, benchmark, ddr4):
        mapping = RowMajorMapping(TriangularIndexSpace(512), ddr4.geometry)
        cells = [(i, j) for i in range(0, 512, 7) for j in range(0, 512 - i, 7)]

        def run():
            address_tuple = mapping.address_tuple
            for i, j in cells:
                address_tuple(i, j)

        benchmark(run)

    def test_write_sequence_generation(self, benchmark, ddr4):
        mapping = OptimizedMapping(TriangularIndexSpace(256), ddr4.geometry)
        count = benchmark(lambda: sum(1 for _ in mapping.write_addresses()))
        assert count == mapping.space.num_elements


class TestControllerThroughput:
    def test_controller_requests_per_second(self, benchmark, ddr4):
        space = TriangularIndexSpace(128)
        mapping = OptimizedMapping(space, ddr4.geometry)

        def run():
            return simulate_phase(ddr4, mapping, OP_WRITE)

        stats = benchmark(run)
        benchmark.extra_info["requests"] = stats.requests

    def test_controller_streaming_hits(self, benchmark, ddr4):
        requests = [(i % 16, 0, (i // 16) % 128) for i in range(10_000)]

        def run():
            controller = MemoryController(ddr4, ControllerConfig(refresh_enabled=False))
            return controller.run_phase(list(requests), OP_WRITE)

        result = benchmark(run)
        assert result.stats.requests == 10_000


class TestFunctionalInterleaver:
    def test_numpy_permutation_throughput(self, benchmark):
        interleaver = TriangularInterleaver(512)
        frame = sequential_symbols(interleaver.frame_symbols)
        out = benchmark(interleaver.interleave, frame)
        assert out.size == frame.size
