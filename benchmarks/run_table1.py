#!/usr/bin/env python
"""Regenerate the paper's Table I and print it side by side with the
published numbers.

Usage::

    python benchmarks/run_table1.py            # N=512 (~2 min)
    python benchmarks/run_table1.py --n 1024   # closer to paper scale
    python benchmarks/run_table1.py --no-refresh
    python benchmarks/run_table1.py --configs DDR4-3200 LPDDR4-4266

The paper simulates 12.5 M elements (N=5000); pass ``--paper-scale`` if
you have ~2 h of CPU time to spend.  Utilizations stabilize well before
that (see bench_interleaver_size.py).
"""

import argparse
import sys
import time

from repro.dram.controller import ControllerConfig
from repro.dram.presets import TABLE1_CONFIG_NAMES
from repro.system.sweep import run_table1

PAPER = {
    "DDR3-800": (95.99, 96.03, 95.99, 96.26),
    "DDR3-1600": (95.75, 64.16, 95.91, 96.16),
    "DDR4-1600": (92.02, 73.92, 92.01, 92.37),
    "DDR4-3200": (91.83, 43.50, 91.86, 92.15),
    "DDR5-3200": (100.00, 96.37, 100.00, 100.00),
    "DDR5-6400": (99.90, 88.95, 99.83, 99.97),
    "LPDDR4-2133": (99.02, 66.00, 99.41, 98.30),
    "LPDDR4-4266": (98.03, 35.77, 99.67, 99.72),
    "LPDDR5-4267": (99.39, 55.87, 99.77, 100.00),
    "LPDDR5-8533": (97.56, 47.25, 99.14, 99.66),
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=512,
                        help="triangle dimension (default 512)")
    parser.add_argument("--paper-scale", action="store_true",
                        help="N=5000 = 12.5 M elements, like the paper (slow)")
    parser.add_argument("--no-refresh", action="store_true",
                        help="disable refresh (the paper's >99%% experiment)")
    parser.add_argument("--configs", nargs="*", default=None,
                        help="subset of configurations to simulate")
    args = parser.parse_args(argv)

    n = 5000 if args.paper_scale else args.n
    names = tuple(args.configs) if args.configs else TABLE1_CONFIG_NAMES
    unknown = set(names) - set(TABLE1_CONFIG_NAMES)
    if unknown:
        parser.error(f"unknown configurations: {sorted(unknown)}")
    policy = ControllerConfig(refresh_enabled=not args.no_refresh)

    print(f"# Table I reproduction: N={n} "
          f"({n * (n + 1) // 2:,} elements/phase), refresh="
          f"{'off' if args.no_refresh else 'on'}")
    print(f"{'DRAM':14s} {'Row-Major Mapping':>24s}   {'Optimized Mapping':>24s}")
    print(f"{'Configuration':14s} {'Write':>11s} {'Read':>11s}   {'Write':>11s} {'Read':>11s}")

    start = time.time()
    for name in names:
        rows = run_table1(n=n, config_names=(name,), policy=policy)
        row = rows[0]
        rm_w, rm_r, opt_w, opt_r = (value * 100 for value in row.cells())
        paper = PAPER[name]

        def cell(value, reference):
            return f"{value:6.2f}({reference:5.1f})"

        print(f"{name:14s} {cell(rm_w, paper[0]):>11s} {cell(rm_r, paper[1]):>11s}   "
              f"{cell(opt_w, paper[2]):>11s} {cell(opt_r, paper[3]):>11s}",
              flush=True)
    print(f"# (paper values in parentheses)  elapsed {time.time() - start:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
