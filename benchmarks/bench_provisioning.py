"""E7 — the over-provisioning argument (paper Sec. I).

"the theoretical maximum bandwidth of a DRAM configuration must be
largely oversized (faster speed grade or wider data bus)" under the
row-major mapping.  Quantified: raw bandwidth one must buy per
configuration to sustain a 100 Gbit/s interleaver, per mapping.
"""

import pytest

from repro.dram.presets import get_config
from repro.dram.simulator import simulate_interleaver
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping
from repro.system.throughput import provision, throughput_report

TARGET_GBIT = 100.0
CONFIGS = ("DDR4-3200", "DDR5-6400", "LPDDR4-4266", "LPDDR5-8533")

#: At the benchmark's reduced interleaver size the DDR5-6400 row-major
#: read has not collapsed yet (column strides still fit the page span),
#: so the cost comparison is only asserted on the configurations whose
#: collapse already shows at this scale.
ASSERTED = ("DDR4-3200", "LPDDR4-4266", "LPDDR5-8533")


@pytest.mark.paper_artifact("over-provisioning")
@pytest.mark.parametrize("config_name", CONFIGS)
def test_oversizing_per_config(benchmark, config_name, bench_triangle_n):
    config = get_config(config_name)
    space = TriangularIndexSpace(bench_triangle_n)

    def run():
        row_major = throughput_report(
            config, simulate_interleaver(config, RowMajorMapping(space, config.geometry)))
        optimized = throughput_report(
            config, simulate_interleaver(
                config, OptimizedMapping(space, config.geometry, prefer_tall=False)))
        return row_major, optimized

    row_major, optimized = benchmark.pedantic(run, rounds=1, iterations=1)
    rm_choice = provision([row_major], TARGET_GBIT)[0]
    opt_choice = provision([optimized], TARGET_GBIT)[0]
    benchmark.extra_info["rm_channels"] = rm_choice.channels
    benchmark.extra_info["opt_channels"] = opt_choice.channels
    benchmark.extra_info["rm_peak_gbit"] = round(rm_choice.total_peak_gbit, 1)
    benchmark.extra_info["opt_peak_gbit"] = round(opt_choice.total_peak_gbit, 1)
    benchmark.extra_info["oversizing_rm"] = round(rm_choice.oversizing_factor, 2)
    benchmark.extra_info["oversizing_opt"] = round(opt_choice.oversizing_factor, 2)
    # The optimized mapping never needs more raw bandwidth, and on fast
    # grades it needs strictly less.
    if config_name in ASSERTED:
        assert opt_choice.total_peak_gbit <= rm_choice.total_peak_gbit


@pytest.mark.paper_artifact("over-provisioning (ranking)")
def test_provisioning_ranking(benchmark, bench_triangle_n):
    """Across all four fast grades, provisioning with the optimized
    mapping is cheapest for every configuration family."""
    space = TriangularIndexSpace(bench_triangle_n)

    def run():
        reports = []
        for name in CONFIGS:
            config = get_config(name)
            for mapping in (RowMajorMapping(space, config.geometry),
                            OptimizedMapping(space, config.geometry, prefer_tall=False)):
                result = simulate_interleaver(config, mapping)
                reports.append((config, throughput_report(config, result)))
        return reports

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    choices = provision([r for _c, r in reports], TARGET_GBIT)
    best_by_config = {}
    for choice in choices:
        best_by_config.setdefault(choice.report.config_name, choice)
    for name, choice in best_by_config.items():
        benchmark.extra_info[name] = choice.report.mapping_name
        if name in ASSERTED:
            assert choice.report.mapping_name == "optimized", name
