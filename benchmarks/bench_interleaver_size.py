"""E4 — "Results for other interleaver dimensions ... differ only
slightly" (paper Sec. III).

Sweeps the triangle dimension over nearly an order of magnitude on one
all-bank-refresh and one per-bank-refresh configuration and records the
spread of the optimized mapping's utilization.
"""

import pytest

from repro.dram.presets import get_config
from repro.system.sweep import sweep_sizes

SIZES = (256, 384, 512)


@pytest.mark.paper_artifact("size insensitivity")
@pytest.mark.parametrize("config_name", ["DDR4-3200", "LPDDR4-4266"])
def test_optimized_utilization_stable_across_sizes(benchmark, config_name):
    config = get_config(config_name)

    points = benchmark.pedantic(sweep_sizes, args=(config, SIZES),
                                rounds=1, iterations=1)
    optimized = [p for p in points if p.mapping_name == "optimized"]
    values = [p.min_utilization for p in optimized]
    spread = max(values) - min(values)
    for point in optimized:
        benchmark.extra_info[f"n{point.n}_min_pct"] = round(
            point.min_utilization * 100, 2)
    benchmark.extra_info["spread_pct"] = round(spread * 100, 2)
    # "differ only slightly": within a few points over this size range.
    assert spread < 0.06


@pytest.mark.paper_artifact("size trend (row-major)")
def test_row_major_read_worsens_with_size(benchmark):
    """Unlike the optimized mapping, the baseline read *degrades* as the
    triangle grows (column strides leave the page span)."""
    config = get_config("DDR4-3200")
    points = benchmark.pedantic(sweep_sizes, args=(config, (64, 512)),
                                rounds=1, iterations=1)
    row_major = {p.n: p for p in points if p.mapping_name == "row-major"}
    benchmark.extra_info["n64_read_pct"] = round(row_major[64].read_utilization * 100, 2)
    benchmark.extra_info["n512_read_pct"] = round(row_major[512].read_utilization * 100, 2)
    assert row_major[512].read_utilization < row_major[64].read_utilization
