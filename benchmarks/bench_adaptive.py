"""Adaptive stopping: frame savings at equal confidence-interval width.

The acceptance bar for the adaptive-precision campaign engine: on an
easy cell of the default grid (deep triangle-48 interleaver, the
default fade statistics) the adaptive run must reach the CI-width
target in at most one fifth of the fixed frame budget — a >= 5x frame
saving at *equal* confidence width, because the stopped run is
bit-identical to a fixed-frame run of the frames it spent (asserted
here on the full :class:`~repro.system.campaign.CellResult`, and at
odd batch boundaries in ``tests/system/test_adaptive.py``).

The saving is largest on easy cells, where the naive budget is sized
for the hardest cell of the grid and the Wilson half-width collapses
after a few batches; ``extra_info`` reports the frames spent, the
achieved half-width and the savings ratio.
"""

import pytest

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import GilbertElliottParams
from repro.interleaver.two_stage import TwoStageConfig
from repro.system.adaptive import AdaptiveCell, evaluate_adaptive
from repro.system.campaign import evaluate_cell

#: The naive fixed budget a hard deep-fade cell of the grid needs.
MAX_FRAMES = 2000
#: Absolute Wilson half-width target of the adaptive run.
CI_WIDTH = 1e-3
CHANNEL = GilbertElliottParams(p_g2b=0.004 / 0.996 / 60.0, p_b2g=1 / 60.0,
                               p_bad=0.7)
INTERLEAVER = TwoStageConfig(triangle_n=48, symbols_per_element=4,
                             codeword_symbols=24)
CODE = CodewordConfig(n_symbols=24, t_correctable=2)


@pytest.mark.paper_artifact("adaptive stopping frame savings")
def test_adaptive_frame_savings(benchmark):
    cell = AdaptiveCell(channel=CHANNEL, interleaver=INTERLEAVER, code=CODE,
                        seed=3, max_frames=MAX_FRAMES, ci_width=CI_WIDTH)
    outcome = benchmark.pedantic(evaluate_adaptive, args=(cell,),
                                 rounds=1, iterations=1)
    assert outcome.converged, "easy cell must reach the CI target"
    # Equal confidence width by construction; equal counts by identity.
    assert outcome.achieved_half_width <= CI_WIDTH
    assert outcome.result == evaluate_cell(
        cell.fixed_cell(outcome.frames_used)), \
        "stopped run must be bit-identical to the fixed-frame run"
    benchmark.extra_info["frames_used"] = outcome.frames_used
    benchmark.extra_info["frame_budget"] = MAX_FRAMES
    benchmark.extra_info["frames_saved_ratio"] = round(
        outcome.frames_saved_ratio, 1)
    benchmark.extra_info["achieved_half_width"] = float(
        f"{outcome.achieved_half_width:.3g}")
    benchmark.extra_info["ci_width_target"] = CI_WIDTH
    if not benchmark.disabled:  # smoke runs only check for rot, not timing
        assert outcome.frames_used * 5 <= MAX_FRAMES, (
            f"adaptive stopping spent {outcome.frames_used} of {MAX_FRAMES} "
            f"frames — only {outcome.frames_saved_ratio:.1f}x saved, "
            f"needed >= 5x at half-width {CI_WIDTH:g}"
        )
