"""E9 (extension) — steady-state mixed traffic vs. the per-phase model.

The paper evaluates write and read phases separately and takes the
minimum.  This bench simulates the alternative: one device serving both
streams interleaved (write frame k+1 / read frame k) at several block
granularities, charging the bus-turnaround penalties (tRTW, tWTR).
Fine-grained interleaving loses 30-50 % to turnarounds; block sizes of
a few hundred bursts recover the per-phase value — quantitative support
for the paper's block-alternating operating model.
"""

import pytest

from repro.dram.mixed import steady_state_interleaver
from repro.dram.presets import get_config
from repro.dram.simulator import simulate_interleaver
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping

CONFIGS = ("DDR4-3200", "LPDDR4-4266")
GROUPS = (1, 16, 256)


@pytest.mark.paper_artifact("per-phase methodology validation")
@pytest.mark.parametrize("config_name", CONFIGS)
@pytest.mark.parametrize("group", GROUPS)
def test_steady_state_utilization(benchmark, config_name, group):
    config = get_config(config_name)
    mapping = OptimizedMapping(TriangularIndexSpace(192), config.geometry,
                               prefer_tall=False)

    result = benchmark.pedantic(
        steady_state_interleaver, args=(config, mapping, group),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["utilization_pct"] = round(result.utilization * 100, 2)
    benchmark.extra_info["turnarounds"] = result.turnarounds
    assert 0.0 < result.utilization <= 1.0


@pytest.mark.paper_artifact("per-phase methodology validation (trend)")
@pytest.mark.parametrize("config_name", CONFIGS)
def test_block_size_recovers_phase_separated_value(benchmark, config_name):
    config = get_config(config_name)
    mapping = OptimizedMapping(TriangularIndexSpace(192), config.geometry,
                               prefer_tall=False)

    def run():
        fine = steady_state_interleaver(config, mapping, group=1)
        coarse = steady_state_interleaver(config, mapping, group=256)
        reference = simulate_interleaver(config, mapping)
        return fine, coarse, reference

    fine, coarse, reference = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["fine_pct"] = round(fine.utilization * 100, 2)
    benchmark.extra_info["coarse_pct"] = round(coarse.utilization * 100, 2)
    benchmark.extra_info["phase_min_pct"] = round(reference.min_utilization * 100, 2)
    assert fine.utilization < coarse.utilization
    assert coarse.utilization > 0.75 * reference.min_utilization
