"""Shared benchmark configuration.

Benchmarks regenerate the paper's artifacts, so each records its
scientific output (utilizations, gains) in ``benchmark.extra_info`` —
``pytest benchmarks/ --benchmark-only`` both times the harness and
reports the reproduced numbers.

Simulations are deterministic; heavy ones run as a single round via
``benchmark.pedantic`` so the suite stays in minutes.

Every run additionally emits one ``BENCH_<name>.json`` per executed
``bench_<name>.py`` module (the reproduced numbers in machine-readable
form: per-test outcome, wall-clock, and the ``extra_info`` payload).
The artifacts land in ``benchmarks/artifacts/`` by default —
``REPRO_BENCH_ARTIFACT_DIR`` overrides the directory, and CI's
benchmarks-smoke job uploads it so every pipeline run archives the
paper numbers it reproduced.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Generator, List

import pytest

#: Environment variable overriding where BENCH_*.json artifacts go.
ARTIFACT_DIR_ENV = "REPRO_BENCH_ARTIFACT_DIR"

#: Per-module result rows, keyed by bench module stem ("bench_fig1").
_RESULTS: Dict[str, List[Dict[str, Any]]] = {}


def pytest_configure(config: Any) -> None:
    config.addinivalue_line(
        "markers", "paper_artifact(name): benchmark regenerating a paper table/figure"
    )


def _artifact_name(module_stem: str) -> str:
    """``bench_fig1`` -> ``BENCH_fig1.json``."""
    stem = module_stem[len("bench_"):] if module_stem.startswith("bench_") else module_stem
    return f"BENCH_{stem}.json"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item: Any, call: Any) -> Generator[None, None, None]:
    outcome = yield
    report = outcome.get_result()
    if report.when != "call":
        return
    stem = Path(str(item.fspath)).stem
    if not stem.startswith("bench_"):
        return
    row: Dict[str, Any] = {
        "test": item.nodeid,
        "outcome": report.outcome,
        "duration_s": round(report.duration, 6),
    }
    marker = item.get_closest_marker("paper_artifact")
    if marker and marker.args:
        row["paper_artifact"] = marker.args[0]
    fixture = item.funcargs.get("benchmark") if hasattr(item, "funcargs") else None
    extra = getattr(fixture, "extra_info", None)
    if extra:
        row["extra_info"] = dict(extra)
    stats = getattr(fixture, "stats", None)
    timing = getattr(stats, "stats", None)
    if timing is not None and getattr(timing, "data", None):
        row["timing_s"] = {
            "min": timing.min,
            "mean": timing.mean,
            "max": timing.max,
            "rounds": timing.rounds,
        }
    _RESULTS.setdefault(stem, []).append(row)


def pytest_sessionfinish(session: Any, exitstatus: int) -> None:
    """Write one ``BENCH_<name>.json`` per bench module that ran."""
    if not _RESULTS:
        return
    default = Path(str(session.config.rootpath)) / "benchmarks" / "artifacts"
    out_dir = Path(os.environ.get(ARTIFACT_DIR_ENV, str(default)))
    out_dir.mkdir(parents=True, exist_ok=True)
    for stem, rows in sorted(_RESULTS.items()):
        document = {
            "version": 1,
            "module": f"benchmarks/{stem}.py",
            "passed": sum(1 for r in rows if r["outcome"] == "passed"),
            "failed": sum(1 for r in rows if r["outcome"] == "failed"),
            "results": rows,
        }
        path = out_dir / _artifact_name(stem)
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
    _RESULTS.clear()


@pytest.fixture
def bench_triangle_n() -> int:
    """Default interleaver size for benchmarks.

    N=256 (~33 k bursts per phase) keeps the full grid under a few
    minutes; the standalone ``run_table1.py`` script regenerates the
    table at N=1024+ for the EXPERIMENTS.md numbers.
    """
    return 256
