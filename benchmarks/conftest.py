"""Shared benchmark configuration.

Benchmarks regenerate the paper's artifacts, so each records its
scientific output (utilizations, gains) in ``benchmark.extra_info`` —
``pytest benchmarks/ --benchmark-only`` both times the harness and
reports the reproduced numbers.

Simulations are deterministic; heavy ones run as a single round via
``benchmark.pedantic`` so the suite stays in minutes.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): benchmark regenerating a paper table/figure"
    )


@pytest.fixture
def bench_triangle_n():
    """Default interleaver size for benchmarks.

    N=256 (~33 k bursts per phase) keeps the full grid under a few
    minutes; the standalone ``run_table1.py`` script regenerates the
    table at N=1024+ for the EXPERIMENTS.md numbers.
    """
    return 256
