"""E9 (extension) — the end-to-end downlink -> DRAM co-simulation.

The paper's core claim joined up: channel-corrupted interleaved frames
drive the DRAM scheduling engine through the
:class:`~repro.system.e2e.FrameStreamSource` bridge, and one run yields
channel failure rates, DRAM utilization, per-frame latency percentiles
and frame energy per cell.  The benchmark times the batched bridge
(``run_batched`` channel + vectorized ``address_arrays`` streams)
against the per-frame scalar reference and keeps the bit-identity
assertion live even under ``--benchmark-disable`` — the CI smoke job
runs it on every push.
"""

import time

import pytest

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import coherence_params
from repro.interleaver.two_stage import TwoStageConfig
from repro.system.e2e import E2ECell, run_e2e, run_e2e_reference
from repro.system.sweep import format_e2e_table, run_e2e_table

CELL = E2ECell(
    channel=coherence_params(60.0, 0.004, p_bad=0.7),
    interleaver=TwoStageConfig(triangle_n=32, symbols_per_element=4,
                               codeword_symbols=24),
    code=CodewordConfig(n_symbols=24, t_correctable=2),
    config_name="DDR4-3200",
    mapping="optimized",
    seed=2024,
    frames=40,
)


@pytest.mark.paper_artifact("end-to-end co-simulation (batched vs reference)")
def test_e2e_batched_vs_reference(benchmark):
    """Batched bridge vs per-frame scalar oracle on one joint cell.

    The DRAM scheduling loop dominates both paths, so the end-to-end
    speedup is modest compared to the channel-only 5x+
    (``bench_campaign.py``) — what this benchmark pins is *exact
    equality* of the two joint results, the live form of the
    differential battery in ``tests/system/test_e2e.py``.
    """
    t0 = time.perf_counter()
    reference = run_e2e_reference(CELL)
    reference_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = run_e2e(CELL)
    batched_s = time.perf_counter() - t0

    # Live even with --benchmark-disable: the batched frame -> address
    # bridge must be bit-identical to the per-frame scalar path.
    assert batched == reference
    assert batched.energy == reference.energy

    benchmark.extra_info["reference_s"] = round(reference_s, 3)
    benchmark.extra_info["batched_s"] = round(batched_s, 3)
    benchmark.extra_info["speedup"] = round(reference_s / batched_s, 2)
    benchmark.extra_info["cwer_baseline"] = batched.cwer_baseline
    benchmark.extra_info["cwer_interleaved"] = batched.cwer_interleaved
    benchmark.extra_info["write_p99_us"] = round(
        batched.write_latency_percentile(99) / 1e6, 3)
    benchmark.pedantic(run_e2e, args=(CELL,), rounds=1, iterations=1)


@pytest.mark.paper_artifact("end-to-end co-simulation table")
def test_e2e_table_small(benchmark):
    """The joint table on two mapping-sensitive configurations.

    Records the headline numbers (utilization floor, p99 latency
    inflation of the collapsed mapping) in ``extra_info`` so the CI
    smoke run regenerates the artifact on every push.
    """
    rows = benchmark.pedantic(
        run_e2e_table,
        kwargs=dict(n=32, config_names=("DDR4-3200", "LPDDR4-4266"),
                    frames=20),
        rounds=1, iterations=1)
    text = format_e2e_table(rows)
    assert "LPDDR4-4266" in text
    by_cell = {(r.config_name, r.mapping_name): r.result for r in rows}
    rm = by_cell[("LPDDR4-4266", "row-major")]
    opt = by_cell[("LPDDR4-4266", "optimized")]
    # The optimized mapping's headline effect survives the joint run:
    # higher utilization floor and no p99 frame-latency inflation.
    assert opt.min_utilization > rm.min_utilization
    assert opt.read_latency_percentile(99) <= rm.read_latency_percentile(99)
    benchmark.extra_info["rm_min_utilization"] = round(rm.min_utilization, 4)
    benchmark.extra_info["opt_min_utilization"] = round(opt.min_utilization, 4)
    benchmark.extra_info["rm_read_p99_us"] = round(
        rm.read_latency_percentile(99) / 1e6, 3)
    benchmark.extra_info["opt_read_p99_us"] = round(
        opt.read_latency_percentile(99) / 1e6, 3)
