"""E8 (extension) — the energy argument of Sec. I.

"This leads to higher costs and additional energy consumption": the
row-major mapping pays the row-activation energy on nearly every read
access, and its longer makespan accrues more background energy.
Quantified as pJ/bit for both mappings on every configuration family.
"""

import time

import pytest

from repro.dram.controller import OP_READ, ControllerConfig
from repro.dram.energy import (
    command_arrays,
    energy_from_commands,
    energy_from_commands_reference,
    energy_from_tally,
    interleaver_energy,
)
from repro.dram.presets import get_config
from repro.dram.simulator import simulate_interleaver, simulate_phase_result
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping

CONFIGS = ("DDR3-1600", "DDR4-3200", "DDR5-6400", "LPDDR4-4266", "LPDDR5-8533")

#: The vectorized command recount must beat the scalar per-command
#: loop by at least this factor on a full recorded phase (measured
#: ~40x; the threshold leaves a wide margin for noisy hosts).
REQUIRED_RECOUNT_SPEEDUP = 2.0


@pytest.mark.paper_artifact("Sec. I energy argument")
@pytest.mark.parametrize("config_name", CONFIGS)
def test_energy_per_bit(benchmark, config_name, bench_triangle_n):
    config = get_config(config_name)
    space = TriangularIndexSpace(bench_triangle_n)

    def run():
        out = {}
        for mapping in (RowMajorMapping(space, config.geometry),
                        OptimizedMapping(space, config.geometry, prefer_tall=False)):
            result = simulate_interleaver(config, mapping)
            out[mapping.name] = interleaver_energy(config, result.write, result.read)
        return out

    energies = benchmark.pedantic(run, rounds=1, iterations=1)
    rm = energies["row-major"]
    opt = energies["optimized"]
    benchmark.extra_info["rm_pj_per_bit"] = round(rm.pj_per_bit, 2)
    benchmark.extra_info["opt_pj_per_bit"] = round(opt.pj_per_bit, 2)
    benchmark.extra_info["rm_activation_share"] = round(rm.activation_share, 3)
    benchmark.extra_info["opt_activation_share"] = round(opt.activation_share, 3)
    # Finding (documented in EXPERIMENTS.md): the optimized mapping
    # saves energy wherever the row-major read collapses (DDR3, DDR4,
    # LPDDR4 — fewer total activations AND a shorter makespan), but on
    # DDR5-class devices its short page runs (bursts_per_page/banks = 2)
    # cost extra activations, bounding the overhead at ~25 %.
    assert opt.pj_per_bit <= rm.pj_per_bit * 1.3
    if config_name in ("DDR3-1600", "LPDDR4-4266"):
        assert opt.pj_per_bit < rm.pj_per_bit


@pytest.mark.paper_artifact("Sec. I energy argument (accounting hot path)")
def test_energy_recount_vectorized_speedup(benchmark):
    """Vectorized command recount vs the scalar per-command oracle.

    One recorded DDR4-3200 read phase (~10k commands) is recounted by
    :func:`energy_from_commands` on prebuilt command arrays and by the
    pure-Python :func:`energy_from_commands_reference`; the reports
    must be exactly equal — to each other and to the engine's zero-cost
    tally — and the vectorized path must hold its pinned speedup.
    Both sides score their best of three rounds, so a background-load
    spike on one side cannot flake the assertion.
    """
    config = get_config("DDR4-3200")
    space = TriangularIndexSpace(128)
    mapping = OptimizedMapping(space, config.geometry, prefer_tall=False)
    result = simulate_phase_result(config, mapping, OP_READ,
                                   ControllerConfig(record_commands=True))
    commands = result.commands
    arrays = command_arrays(commands)

    def vectorized():
        return energy_from_commands(config, arrays)

    # Wall-clock alongside pedantic: benchmark.stats is unavailable
    # under --benchmark-disable (the CI smoke run), a plain timer
    # always is.
    vec_report = benchmark.pedantic(vectorized, rounds=3, iterations=1)
    vec_seconds = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        vectorized()
        vec_seconds = min(vec_seconds, time.perf_counter() - t0)

    scalar_seconds = float("inf")
    for _ in range(3):
        t1 = time.perf_counter()
        scalar_report = energy_from_commands_reference(config, commands)
        scalar_seconds = min(scalar_seconds, time.perf_counter() - t1)

    assert vec_report == scalar_report
    assert vec_report == energy_from_tally(config, result.stats.energy_tally)
    speedup = scalar_seconds / vec_seconds
    benchmark.extra_info["commands"] = len(commands)
    benchmark.extra_info["scalar_ms"] = round(scalar_seconds * 1e3, 3)
    benchmark.extra_info["vectorized_ms"] = round(vec_seconds * 1e3, 3)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup >= REQUIRED_RECOUNT_SPEEDUP, (
        f"vectorized energy recount only {speedup:.2f}x faster than the "
        f"scalar loop (required {REQUIRED_RECOUNT_SPEEDUP}x)"
    )
