"""E8 (extension) — the energy argument of Sec. I.

"This leads to higher costs and additional energy consumption": the
row-major mapping pays the row-activation energy on nearly every read
access, and its longer makespan accrues more background energy.
Quantified as pJ/bit for both mappings on every configuration family.
"""

import pytest

from repro.dram.energy import interleaver_energy
from repro.dram.presets import get_config
from repro.dram.simulator import simulate_interleaver
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping

CONFIGS = ("DDR3-1600", "DDR4-3200", "DDR5-6400", "LPDDR4-4266", "LPDDR5-8533")


@pytest.mark.paper_artifact("Sec. I energy argument")
@pytest.mark.parametrize("config_name", CONFIGS)
def test_energy_per_bit(benchmark, config_name, bench_triangle_n):
    config = get_config(config_name)
    space = TriangularIndexSpace(bench_triangle_n)

    def run():
        out = {}
        for mapping in (RowMajorMapping(space, config.geometry),
                        OptimizedMapping(space, config.geometry, prefer_tall=False)):
            result = simulate_interleaver(config, mapping)
            out[mapping.name] = interleaver_energy(config, result.write, result.read)
        return out

    energies = benchmark.pedantic(run, rounds=1, iterations=1)
    rm = energies["row-major"]
    opt = energies["optimized"]
    benchmark.extra_info["rm_pj_per_bit"] = round(rm.pj_per_bit, 2)
    benchmark.extra_info["opt_pj_per_bit"] = round(opt.pj_per_bit, 2)
    benchmark.extra_info["rm_activation_share"] = round(rm.activation_share, 3)
    benchmark.extra_info["opt_activation_share"] = round(opt.activation_share, 3)
    # Finding (documented in EXPERIMENTS.md): the optimized mapping
    # saves energy wherever the row-major read collapses (DDR3, DDR4,
    # LPDDR4 — fewer total activations AND a shorter makespan), but on
    # DDR5-class devices its short page runs (bursts_per_page/banks = 2)
    # cost extra activations, bounding the overhead at ~25 %.
    assert opt.pj_per_bit <= rm.pj_per_bit * 1.3
    if config_name in ("DDR3-1600", "LPDDR4-4266"):
        assert opt.pj_per_bit < rm.pj_per_bit
