"""Fig. 1 style rendering."""

import pytest

from repro.dram.geometry import Geometry
from repro.interleaver.triangular import RectangularIndexSpace, TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.viz import (
    render_banks,
    render_columns,
    render_figure1,
    render_full,
    render_grid,
    side_by_side,
    utilization_bar,
)


@pytest.fixture
def fig_geometry():
    """Two banks, small pages: the scale of the paper's Fig. 1."""
    return Geometry(bank_groups=2, banks_per_group=1, rows=64, columns=32,
                    bus_width_bits=64, burst_length=8)


@pytest.fixture
def fig_mapping(fig_geometry):
    return OptimizedMapping(RectangularIndexSpace(8, 8), fig_geometry)


class TestRenderGrid:
    def test_triangle_leaves_blanks(self):
        space = TriangularIndexSpace(3)
        text = render_grid(space, lambda i, j: "X")
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].count("X") == 3
        assert lines[2].count("X") == 1

    def test_labels_applied(self):
        space = RectangularIndexSpace(2, 2)
        text = render_grid(space, lambda i, j: f"{i}{j}")
        assert "00 01" in text
        assert "10 11" in text


class TestFigurePanels:
    def test_banks_diagonal(self, fig_mapping):
        """Fig. 1a: the first row alternates B0 B1, the second starts B1."""
        lines = render_banks(fig_mapping).splitlines()
        assert lines[0].split()[:4] == ["B0", "B1", "B0", "B1"]
        assert lines[1].split()[:4] == ["B1", "B0", "B1", "B0"]

    def test_columns_panel_has_column_labels(self, fig_geometry):
        mapping = OptimizedMapping(RectangularIndexSpace(8, 8), fig_geometry,
                                   enable_offset=False)
        text = render_columns(mapping)
        assert "C0" in text

    def test_full_panel_has_bcr_labels(self, fig_mapping):
        text = render_full(fig_mapping)
        assert "B0C0R0" in text

    def test_figure1_contains_four_panels(self, fig_geometry):
        text = render_figure1(RectangularIndexSpace(8, 8), fig_geometry)
        for tag in ("(a)", "(b)", "(c)", "(d)"):
            assert tag in text

    def test_offset_changes_panel_d(self, fig_geometry):
        space = RectangularIndexSpace(8, 8)
        base = render_full(OptimizedMapping(space, fig_geometry, enable_offset=False))
        shifted = render_full(OptimizedMapping(space, fig_geometry))
        assert base != shifted


class TestHelpers:
    def test_utilization_bar_full(self):
        assert utilization_bar(1.0, width=10) == "##########"

    def test_utilization_bar_half(self):
        bar = utilization_bar(0.5, width=10)
        assert bar.count("#") == 5 and len(bar) == 10

    def test_utilization_bar_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            utilization_bar(1.5)

    def test_side_by_side(self):
        joined = side_by_side(["a\nb", "xx"], gap=2)
        lines = joined.splitlines()
        assert lines[0] == "a  xx"
        assert lines[1] == "b"
