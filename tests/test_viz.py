"""Fig. 1 style rendering and campaign charts."""

import pytest

from repro.channel.codeword import CodewordConfig
from repro.channel.gilbert_elliott import GilbertElliottParams
from repro.dram.geometry import Geometry
from repro.interleaver.triangular import RectangularIndexSpace, TriangularIndexSpace
from repro.interleaver.two_stage import TwoStageConfig
from repro.mapping.optimized import OptimizedMapping
from repro.system.campaign import CampaignSummary
from repro.viz import (
    render_banks,
    render_campaign_gains,
    render_columns,
    render_e2e_latency,
    render_energy_pareto,
    render_figure1,
    render_full,
    render_grid,
    side_by_side,
    utilization_bar,
)


@pytest.fixture
def fig_geometry():
    """Two banks, small pages: the scale of the paper's Fig. 1."""
    return Geometry(bank_groups=2, banks_per_group=1, rows=64, columns=32,
                    bus_width_bits=64, burst_length=8)


@pytest.fixture
def fig_mapping(fig_geometry):
    return OptimizedMapping(RectangularIndexSpace(8, 8), fig_geometry)


class TestRenderGrid:
    def test_triangle_leaves_blanks(self):
        space = TriangularIndexSpace(3)
        text = render_grid(space, lambda i, j: "X")
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].count("X") == 3
        assert lines[2].count("X") == 1

    def test_labels_applied(self):
        space = RectangularIndexSpace(2, 2)
        text = render_grid(space, lambda i, j: f"{i}{j}")
        assert "00 01" in text
        assert "10 11" in text


class TestFigurePanels:
    def test_banks_diagonal(self, fig_mapping):
        """Fig. 1a: the first row alternates B0 B1, the second starts B1."""
        lines = render_banks(fig_mapping).splitlines()
        assert lines[0].split()[:4] == ["B0", "B1", "B0", "B1"]
        assert lines[1].split()[:4] == ["B1", "B0", "B1", "B0"]

    def test_columns_panel_has_column_labels(self, fig_geometry):
        mapping = OptimizedMapping(RectangularIndexSpace(8, 8), fig_geometry,
                                   enable_offset=False)
        text = render_columns(mapping)
        assert "C0" in text

    def test_full_panel_has_bcr_labels(self, fig_mapping):
        text = render_full(fig_mapping)
        assert "B0C0R0" in text

    def test_figure1_contains_four_panels(self, fig_geometry):
        text = render_figure1(RectangularIndexSpace(8, 8), fig_geometry)
        for tag in ("(a)", "(b)", "(c)", "(d)"):
            assert tag in text

    def test_offset_changes_panel_d(self, fig_geometry):
        space = RectangularIndexSpace(8, 8)
        base = render_full(OptimizedMapping(space, fig_geometry, enable_offset=False))
        shifted = render_full(OptimizedMapping(space, fig_geometry))
        assert base != shifted


def _summary(fade_symbols, gain_failed_base, gain_failed_int, n=32):
    return CampaignSummary(
        channel=GilbertElliottParams(p_g2b=0.004 / 0.996 / fade_symbols,
                                     p_b2g=1.0 / fade_symbols, p_bad=0.7),
        interleaver=TwoStageConfig(triangle_n=n, symbols_per_element=4,
                                   codeword_symbols=24),
        code=CodewordConfig(n_symbols=24, t_correctable=2),
        cells=3,
        frames=300,
        codewords=26400,
        failed_interleaved=gain_failed_int,
        failed_baseline=gain_failed_base,
        gains=(2.0, 3.0, 4.0),
        max_errors_interleaved=5,
        max_burst=120,
    )


class TestCampaignGains:
    def test_rows_sorted_by_fade_duration(self):
        text = render_campaign_gains([_summary(90.0, 40, 10),
                                      _summary(40.0, 40, 10)])
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert lines[1].split()[0] == "40"
        assert lines[2].split()[0] == "90"

    def test_gain_bar_scales_with_gain(self):
        text = render_campaign_gains([_summary(40.0, 100, 10),
                                      _summary(60.0, 100, 50)], width=20)
        lines = text.splitlines()
        assert lines[1].count("#") > lines[2].count("#")  # 10x vs 2x gain
        assert "10.0x" in lines[1]

    def test_sub_unity_gains_do_not_stretch_the_axis(self):
        # A saturation row (gain < 1, empty bar) must not compress the
        # positive rows: the 10x row still spans the full width.
        text = render_campaign_gains([_summary(40.0, 100, 10),
                                      _summary(60.0, 50, 100)], width=10)
        lines = text.splitlines()
        assert "#" * 10 in lines[1]   # 10x row: full bar
        assert "#" not in lines[2]    # 0.5x row: empty bar

    def test_infinite_gain_fills_bar(self):
        text = render_campaign_gains([_summary(40.0, 25, 0)], width=12)
        assert "#" * 12 in text
        assert "inf" in text

    def test_empty_summaries(self):
        assert "no campaign" in render_campaign_gains([])

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            render_campaign_gains([_summary(40.0, 1, 1)], width=0)


def _pareto_point(name, mapping, channels, sustained, power, frontier):
    from repro.dram.energy import EnergyReport
    from repro.system.throughput import EnergyProvisioningPoint, ThroughputReport

    report = ThroughputReport(config_name=name, mapping_name=mapping,
                              min_utilization=0.5,
                              peak_bandwidth_gbit=2 * sustained,
                              sustained_gbit=sustained)
    return EnergyProvisioningPoint(report=report, channels=channels,
                                   pj_per_bit=10.0, channel_power_mw=power,
                                   on_frontier=frontier)


class TestEnergyPareto:
    def test_marks_frontier_and_scales_bars(self):
        points = [
            _pareto_point("DDR3-800", "row-major", 1, 20.0, 500.0, False),
            _pareto_point("LPDDR4-2133", "optimized", 2, 25.0, 125.0, True),
        ]
        text = render_energy_pareto(points, width=10)
        lines = text.splitlines()
        assert len(lines) == 4  # header + 2 rows + legend
        assert lines[1].startswith("  DDR3-800")     # dominated: unmarked
        assert lines[2].startswith("* LPDDR4-2133")  # frontier: starred
        assert "#" * 10 in lines[1]                  # max power: full bar
        assert lines[2].count("#") == 5              # half the power
        assert "Pareto frontier" in lines[-1]

    def test_empty_points(self):
        assert "no provisioning points" in render_energy_pareto([])

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            render_energy_pareto([_pareto_point("a", "b", 1, 1.0, 1.0, True)],
                                 width=0)


class TestRenderE2ELatency:
    @pytest.fixture
    def e2e_rows(self):
        from repro.channel.gilbert_elliott import coherence_params
        from repro.system.e2e import E2ECell, run_e2e
        from repro.system.sweep import E2ERow

        rows = []
        for mapping in ("row-major", "optimized"):
            cell = E2ECell(
                channel=coherence_params(60.0, 0.004, p_bad=0.7),
                interleaver=TwoStageConfig(triangle_n=15,
                                           symbols_per_element=4,
                                           codeword_symbols=24),
                code=CodewordConfig(n_symbols=24, t_correctable=2),
                config_name="LPDDR4-4266", mapping=mapping,
                seed=5, frames=4)
            rows.append(E2ERow(config_name=cell.config_name,
                               mapping_name=mapping, result=run_e2e(cell)))
        return rows

    def test_two_lines_per_row(self, e2e_rows):
        text = render_e2e_latency(e2e_rows, width=12)
        lines = text.splitlines()
        assert len(lines) == 2 + 2 * len(e2e_rows)  # header + phases + legend
        assert "write" in lines[1] and "read" in lines[2]
        assert "p99us" in lines[0]

    def test_bars_share_the_scale(self, e2e_rows):
        width = 20
        text = render_e2e_latency(e2e_rows, width=width)
        bars = [line.split()[3] for line in text.splitlines()[1:-1]]
        assert all(len(bar) == width for bar in bars)
        # The worst p99 line fills the bar to the right edge.
        assert any(not bar.endswith("-") for bar in bars)

    def test_empty_rows(self):
        assert "no e2e rows" in render_e2e_latency([])

    def test_rejects_bad_width(self, e2e_rows):
        with pytest.raises(ValueError):
            render_e2e_latency(e2e_rows, width=0)


class TestHelpers:
    def test_utilization_bar_full(self):
        assert utilization_bar(1.0, width=10) == "##########"

    def test_utilization_bar_half(self):
        bar = utilization_bar(0.5, width=10)
        assert bar.count("#") == 5 and len(bar) == 10

    def test_utilization_bar_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            utilization_bar(1.5)

    def test_side_by_side(self):
        joined = side_by_side(["a\nb", "xx"], gap=2)
        lines = joined.splitlines()
        assert lines[0] == "a  xx"
        assert lines[1] == "b"
