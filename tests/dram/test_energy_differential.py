"""Differential energy battery: engine tallies vs command recounts.

The scheduling engine fills an :class:`~repro.dram.stats.EnergyTally`
on every run from counters it already keeps.  This battery proves that
tally **exactly** equals an independent recount of the recorded command
list — across ~100 random (configuration/speed grade, refresh mode,
queue depth, stream pattern/mapping) scenarios, homogeneous and mixed,
mirroring the scheduling battery in ``test_engine_differential.py``:

* :func:`~repro.dram.energy.energy_from_tally` (the zero-cost
  production path),
* :func:`~repro.dram.energy.energy_from_commands` (vectorized NumPy
  recount, over both a raw command list and prebuilt
  :func:`~repro.dram.energy.command_arrays`),
* :func:`~repro.dram.energy.energy_from_commands_reference` (the
  scalar per-command oracle)

must all return identical — not approximately equal — reports.

Scenario construction is deterministic per index, so a failure names a
reproducible case.
"""

import random
from dataclasses import replace

import pytest

from repro.dram.controller import (
    OP_READ,
    OP_WRITE,
    ControllerConfig,
    MemoryController,
)
from repro.dram.energy import (
    command_arrays,
    energy_from_commands,
    energy_from_commands_reference,
    energy_from_tally,
)
from repro.dram.mixed import run_mixed_phase
from repro.dram.presets import REFRESH_ALL_BANK, TABLE1_CONFIG_NAMES, get_config
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping

N_SCENARIOS = 100


def _scenario_rng(index: int) -> random.Random:
    return random.Random(0xE4E6 * 1000 + index)


def _pick_config(rng: random.Random):
    """A speed grade, sometimes with its refresh mode swapped.

    Per-bank-native grades (DDR5/LPDDR) can legally run all-bank
    refresh; the swap exercises the REFab-vs-REFpb energy distinction.
    """
    config = get_config(rng.choice(TABLE1_CONFIG_NAMES))
    if config.timing.trfc_pb > 0 and rng.random() < 0.3:
        config = replace(config, refresh_mode=REFRESH_ALL_BANK)
    return config


def _pick_policy(rng: random.Random) -> ControllerConfig:
    return ControllerConfig(
        queue_depth=rng.choice([1, 4, 16, 64, 128]),
        per_bank_depth=rng.choice([1, 4, 16]),
        refresh_enabled=rng.random() < 0.7,
        record_commands=True,
    )


def _random_stream(rng: random.Random, n_banks: int):
    count = rng.choice([0, 3, 40, 200, 600])
    rows = rng.choice([2, 16, 256])
    return [(rng.randrange(n_banks), rng.randrange(rows), rng.randrange(16))
            for _ in range(count)]


def _mapping_stream(rng: random.Random, config):
    """A real interleaver address stream at small triangle size."""
    space = TriangularIndexSpace(rng.choice([8, 16, 24]))
    if rng.random() < 0.5:
        mapping = RowMajorMapping(space, config.geometry)
    else:
        mapping = OptimizedMapping(space, config.geometry, prefer_tall=False)
    addresses = (mapping.write_addresses() if rng.random() < 0.5
                 else mapping.read_addresses())
    return list(addresses)


def _assert_energy_consistent(config, stats, commands):
    tally = stats.energy_tally
    assert tally is not None
    from_tally = energy_from_tally(config, tally)
    vectorized = energy_from_commands(config, commands)
    from_arrays = energy_from_commands(config, command_arrays(commands))
    scalar = energy_from_commands_reference(config, commands)
    # Exact equality: all paths count commands and multiply once.
    assert from_tally == vectorized
    assert from_tally == from_arrays
    assert from_tally == scalar
    # The tally must agree with the scheduling statistics it rode in on.
    assert tally.act_pre == stats.activates
    assert tally.ref == stats.refreshes
    assert tally.rd + tally.wr == stats.requests
    assert tally.makespan_ps == stats.makespan_ps


@pytest.mark.parametrize("index", range(N_SCENARIOS))
def test_energy_battery(index):
    rng = _scenario_rng(index)
    config = _pick_config(rng)
    policy = _pick_policy(rng)
    if rng.random() < 0.3:
        base = _mapping_stream(rng, config)
    else:
        base = _random_stream(rng, config.geometry.banks)

    if rng.random() < 0.4:  # mixed-direction stream
        read_fraction = rng.choice([0.0, 0.3, 0.7, 1.0])
        requests = [(rng.random() < read_fraction, b, r, c)
                    for b, r, c in base]
        result = run_mixed_phase(config, requests, policy)
        _assert_energy_consistent(config, result.stats, result.commands)
    else:
        op = rng.choice([OP_READ, OP_WRITE])
        result = MemoryController(config, policy).run_phase(iter(base), op)
        _assert_energy_consistent(config, result.stats, result.commands)
