"""Cross-scheduler pinning: mixed and homogeneous paths must agree.

Before the unified engine, ``run_mixed_phase`` was a fork of
``MemoryController.run_phase``; the two could drift silently.  Now both
are adapters over one core, and this suite pins the contract directly:
a single-direction ``MixedRequest`` stream scheduled by the mixed path
(turnaround rules armed but vacuously inactive) must produce
:class:`~repro.dram.stats.PhaseStats` *identical* to the homogeneous
scheduler on the same addresses — across every Table I
(configuration, mapping) pair and both phases.

The one divergence the fork had accumulated — mixed results carried an
empty ``command_counts`` — is fixed by the engine, which is why plain
``==`` on the full stats object holds below.
"""

import pytest

from repro.dram.controller import (
    OP_READ,
    OP_WRITE,
    ControllerConfig,
    MemoryController,
)
from repro.dram.mixed import run_mixed_phase
from repro.dram.presets import TABLE1_CONFIG_NAMES, get_config
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping

N = 48


def _mapping(name, space, geometry):
    if name == "row-major":
        return RowMajorMapping(space, geometry)
    return OptimizedMapping(space, geometry, prefer_tall=False)


@pytest.mark.parametrize("config_name", TABLE1_CONFIG_NAMES)
@pytest.mark.parametrize("mapping_name", ["row-major", "optimized"])
@pytest.mark.parametrize("op", [OP_WRITE, OP_READ])
def test_single_direction_mixed_equals_homogeneous(config_name, mapping_name, op):
    config = get_config(config_name)
    space = TriangularIndexSpace(N)
    mapping = _mapping(mapping_name, space, config.geometry)
    addresses = list(mapping.write_addresses() if op == OP_WRITE
                     else mapping.read_addresses())
    is_read = op == OP_READ

    homogeneous = MemoryController(config, ControllerConfig()).run_phase(
        list(addresses), op).stats
    mixed = run_mixed_phase(
        config, [(is_read, bank, row, col) for bank, row, col in addresses],
        ControllerConfig()).stats

    assert mixed == homogeneous


@pytest.mark.parametrize("op", [OP_WRITE, OP_READ])
def test_single_direction_commands_identical(ddr4, op):
    """Not just the stats: the full command schedules must coincide."""
    space = TriangularIndexSpace(N)
    mapping = _mapping("optimized", space, ddr4.geometry)
    addresses = list(mapping.write_addresses() if op == OP_WRITE
                     else mapping.read_addresses())
    policy = ControllerConfig(record_commands=True)
    is_read = op == OP_READ

    homogeneous = MemoryController(ddr4, policy).run_phase(list(addresses), op)
    mixed = run_mixed_phase(
        ddr4, [(is_read, bank, row, col) for bank, row, col in addresses], policy)

    assert mixed.commands == homogeneous.commands
    assert (mixed.reads if is_read else mixed.writes) == len(addresses)
    assert mixed.turnarounds == 0


def test_direction_split_accounting(ddr4):
    """Sanity on genuinely mixed streams: counters split by direction."""
    requests = [(k % 3 == 0, k % ddr4.geometry.banks, 0, k % 8)
                for k in range(120)]
    result = run_mixed_phase(ddr4, requests, ControllerConfig())
    assert result.reads == 40
    assert result.writes == 80
    assert result.reads + result.writes == result.stats.requests
    counts = result.stats.command_counts
    assert counts["RD"] == result.reads
    assert counts["WR"] == result.writes
