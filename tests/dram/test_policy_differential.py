"""Cross-policy differential battery: every discipline vs its reference.

Two layers of proof for the scheduling-policy zoo
(:mod:`repro.dram.policy`):

* **Open-page is the pre-policy engine, bit for bit.**  Across the full
  Table I (configuration, mapping) grid, both phases, an explicit
  ``discipline="open-page"`` run through the engine *and* the
  batch-advance kernel must equal the frozen seed oracle
  (:func:`repro.dram._reference.reference_run_phase`) —
  :class:`~repro.dram.stats.PhaseStats`, ``command_counts``, the
  :class:`~repro.dram.stats.EnergyTally` and the full recorded command
  list — with the ``kernel_fallback`` flag unset.
* **Each new discipline equals its scalar reference.**  100 seeded
  random (configuration, queue-shape, stream-locality, op, cap)
  scenarios per discipline through ``MemoryController.run_phase`` vs
  :func:`repro.dram._policy_reference.reference_policy_run_phase`
  (a verbatim port of the frozen oracle plus the auto-close additions,
  or the frozen oracle on the partition-remapped stream), plus mixed
  batteries against ``reference_policy_run_mixed_phase``.

Scenario construction is deterministic per index, so a failure names a
reproducible case.
"""

import random

import pytest

from repro.dram._policy_reference import (
    reference_policy_run_mixed_phase,
    reference_policy_run_phase,
)
from repro.dram._reference import reference_run_phase
from repro.dram.controller import (
    ENGINE_GENERAL,
    ENGINE_KERNEL,
    OP_READ,
    OP_WRITE,
    ControllerConfig,
    MemoryController,
)
from repro.dram.mixed import run_mixed_phase
from repro.dram.policy import (
    POLICY_BANK_PARTITION,
    POLICY_CLOSED_PAGE,
    POLICY_FRFCFS_CAP,
    POLICY_NAMES,
    POLICY_OPEN_PAGE,
)
from repro.dram.presets import TABLE1_CONFIG_NAMES, get_config
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.row_major import RowMajorMapping

N = 32

#: Disciplines that did not exist before this PR.
NEW_DISCIPLINES = (POLICY_CLOSED_PAGE, POLICY_FRFCFS_CAP,
                   POLICY_BANK_PARTITION)

#: Seeded scenarios per new discipline (homogeneous battery).
N_PER_POLICY = 100

#: Seeded mixed scenarios per new discipline.
N_MIXED_PER_POLICY = 40

#: PhaseStats fields the mixed reference exposes (no recording there).
SCHEDULE_FIELDS = (
    "requests", "page_hits", "page_misses", "page_empties",
    "activates", "precharges", "refreshes", "data_time_ps", "makespan_ps",
)

MAPPING_FACTORIES = {
    "row-major": lambda space, geometry: RowMajorMapping(space, geometry),
    "optimized": lambda space, geometry: OptimizedMapping(
        space, geometry, prefer_tall=False),
}

TABLE1_PAIRS = [(c, m) for c in TABLE1_CONFIG_NAMES
                for m in MAPPING_FACTORIES]
PAIR_IDS = [f"{c}-{m}" for c, m in TABLE1_PAIRS]


def _scenario_rng(salt: int, index: int) -> random.Random:
    return random.Random(0x90CC * 100_000 + salt * 1_000 + index)


def _pick_policy(rng: random.Random, discipline: str) -> ControllerConfig:
    return ControllerConfig(
        queue_depth=rng.choice([1, 2, 8, 16, 64, 128]),
        per_bank_depth=rng.choice([1, 2, 4, 16]),
        refresh_enabled=rng.random() < 0.6,
        record_commands=True,
        discipline=discipline,
        cap=rng.choice([1, 2, 3, 4, 8]),
    )


def _pick_stream(rng: random.Random, n_banks: int):
    """A request stream with a randomly chosen locality pattern."""
    count = rng.choice([0, 1, 7, 60, 250, 800])
    pattern = rng.choice(["uniform", "thrash", "hot-bank", "runs", "rotate"])
    rows = rng.choice([2, 8, 128])
    requests = []
    if pattern == "uniform":
        for _ in range(count):
            requests.append((rng.randrange(n_banks), rng.randrange(rows),
                             rng.randrange(16)))
    elif pattern == "thrash":
        for k in range(count):
            requests.append((k % n_banks, k % rows, 0))
    elif pattern == "hot-bank":
        hot = rng.randrange(n_banks)
        for _ in range(count):
            bank = hot if rng.random() < 0.8 else rng.randrange(n_banks)
            requests.append((bank, rng.randrange(rows), rng.randrange(16)))
    elif pattern == "runs":
        k = 0
        while k < count:
            bank = rng.randrange(n_banks)
            row = rng.randrange(rows)
            for _ in range(min(rng.randrange(1, 12), count - k)):
                requests.append((bank, row, rng.randrange(16)))
                k += 1
    else:  # rotate: bank rotation with occasional row switches
        row = 0
        for k in range(count):
            if rng.random() < 0.05:
                row = rng.randrange(rows)
            requests.append((k % n_banks, row, k % 16))
    return requests


def _assert_matches_oracle(result, oracle):
    """Schedule bit-identity vs a scalar oracle (which tallies no
    energy — ``energy_tally`` is ``compare=False`` and engine-only)."""
    assert result.stats == oracle.stats
    assert result.stats.command_counts == oracle.stats.command_counts
    assert result.commands == oracle.commands


def _assert_identical(result, expected):
    """Full engine-to-engine bit-identity, energy tally included."""
    _assert_matches_oracle(result, expected)
    assert result.stats.energy_tally == expected.stats.energy_tally


class TestOpenPageIsThePrePolicyEngine:
    """Explicit open-page == frozen seed oracle on the Table I grid."""

    @pytest.mark.parametrize("op", (OP_WRITE, OP_READ))
    @pytest.mark.parametrize("config_name,mapping_name", TABLE1_PAIRS,
                             ids=PAIR_IDS)
    def test_grid_cell_bit_identical(self, config_name, mapping_name, op):
        config = get_config(config_name)
        space = TriangularIndexSpace(N)
        mapping = MAPPING_FACTORIES[mapping_name](space, config.geometry)
        policy = ControllerConfig(record_commands=True,
                                  discipline=POLICY_OPEN_PAGE)

        def chunks():
            return (mapping.write_addresses_array() if op == OP_WRITE
                    else mapping.read_addresses_array())

        general = MemoryController(config, policy,
                                   engine=ENGINE_GENERAL).run_phase(
            chunks(), op)
        kernel = MemoryController(config, policy,
                                  engine=ENGINE_KERNEL).run_phase(
            chunks(), op)
        oracle = reference_run_phase(config, chunks(), op, policy)

        _assert_matches_oracle(general, oracle)
        _assert_identical(kernel, general)
        assert general.stats.kernel_fallback is False
        assert kernel.stats.kernel_fallback is False


class TestNewPolicyHomogeneousBattery:
    """Engine == scalar policy reference, 100 scenarios per discipline."""

    @pytest.mark.parametrize("index", range(N_PER_POLICY))
    @pytest.mark.parametrize("discipline", NEW_DISCIPLINES)
    def test_engine_matches_reference(self, discipline, index):
        salt = NEW_DISCIPLINES.index(discipline)
        rng = _scenario_rng(salt, index)
        config = get_config(rng.choice(TABLE1_CONFIG_NAMES))
        policy = _pick_policy(rng, discipline)
        requests = _pick_stream(rng, config.geometry.banks)
        op = rng.choice([OP_READ, OP_WRITE])

        engine_result = MemoryController(config, policy).run_phase(
            iter(requests), op)
        reference_result = reference_policy_run_phase(
            config, list(requests), op, policy)

        _assert_matches_oracle(engine_result, reference_result)

    @pytest.mark.parametrize("index", range(0, N_PER_POLICY, 4))
    @pytest.mark.parametrize("discipline", NEW_DISCIPLINES)
    def test_kernel_route_matches_reference(self, discipline, index):
        """The ``engine="kernel"`` route — native for bank partitioning,
        visible fallback for the auto-close disciplines — must land on
        the same schedule as the scalar reference."""
        salt = NEW_DISCIPLINES.index(discipline)
        rng = _scenario_rng(salt, index)
        config = get_config(rng.choice(TABLE1_CONFIG_NAMES))
        policy = _pick_policy(rng, discipline)
        requests = _pick_stream(rng, config.geometry.banks)
        op = rng.choice([OP_READ, OP_WRITE])

        kernel_result = MemoryController(config, policy,
                                         engine=ENGINE_KERNEL).run_phase(
            iter(requests), op)
        general_result = MemoryController(config, policy,
                                          engine=ENGINE_GENERAL).run_phase(
            iter(requests), op)
        reference_result = reference_policy_run_phase(
            config, list(requests), op, policy)

        _assert_matches_oracle(kernel_result, reference_result)
        _assert_identical(kernel_result, general_result)
        expects_fallback = discipline in (POLICY_CLOSED_PAGE,
                                          POLICY_FRFCFS_CAP)
        assert kernel_result.stats.kernel_fallback is expects_fallback


class TestNewPolicyMixedBattery:
    """Mixed engine == scalar policy reference per discipline."""

    @pytest.mark.parametrize("index", range(N_MIXED_PER_POLICY))
    @pytest.mark.parametrize("discipline", NEW_DISCIPLINES)
    def test_mixed_matches_reference(self, discipline, index):
        salt = 50 + NEW_DISCIPLINES.index(discipline)
        rng = _scenario_rng(salt, index)
        config = get_config(rng.choice(TABLE1_CONFIG_NAMES))
        loud = _pick_policy(rng, discipline)
        # The reference records nothing for mixed runs.
        policy = ControllerConfig(queue_depth=loud.queue_depth,
                                  per_bank_depth=loud.per_bank_depth,
                                  refresh_enabled=loud.refresh_enabled,
                                  discipline=discipline, cap=loud.cap)
        read_fraction = rng.choice([0.0, 0.2, 0.5, 0.8, 1.0])
        base = _pick_stream(rng, config.geometry.banks)
        requests = [(rng.random() < read_fraction, b, r, c)
                    for b, r, c in base]

        engine_result = run_mixed_phase(config, list(requests), policy)
        reference_result = reference_policy_run_mixed_phase(
            config, list(requests), policy)

        for field in SCHEDULE_FIELDS:
            assert getattr(engine_result.stats, field) == \
                getattr(reference_result.stats, field), field
        assert engine_result.reads == reference_result.reads
        assert engine_result.writes == reference_result.writes
        assert engine_result.turnarounds == reference_result.turnarounds


class TestPolicyAlgebra:
    """Structural identities between disciplines."""

    def test_closed_page_is_cap_one(self, ddr4):
        rng = _scenario_rng(99, 0)
        requests = _pick_stream(rng, ddr4.geometry.banks)
        results = [
            MemoryController(ddr4, ControllerConfig(
                record_commands=True, discipline=discipline,
                cap=cap)).run_phase(iter(requests), OP_READ)
            for discipline, cap in ((POLICY_CLOSED_PAGE, 4),
                                    (POLICY_FRFCFS_CAP, 1))
        ]
        _assert_identical(results[0], results[1])

    def test_huge_cap_converges_to_open_page(self, ddr4):
        rng = _scenario_rng(99, 1)
        requests = _pick_stream(rng, ddr4.geometry.banks)
        capped = MemoryController(ddr4, ControllerConfig(
            record_commands=True, discipline=POLICY_FRFCFS_CAP,
            cap=10**9)).run_phase(iter(requests), OP_READ)
        open_page = MemoryController(ddr4, ControllerConfig(
            record_commands=True)).run_phase(iter(requests), OP_READ)
        _assert_identical(capped, open_page)

    def test_partition_remap_is_idempotent(self, ddr4):
        """Re-running an already-partitioned stream schedules it
        identically: remapped banks stay inside their partition."""
        from repro.dram._policy_reference import partition_tuple_stream
        rng = _scenario_rng(99, 2)
        requests = _pick_stream(rng, ddr4.geometry.banks)
        once = partition_tuple_stream(requests, ddr4.geometry.banks, True)
        twice = partition_tuple_stream(once, ddr4.geometry.banks, True)
        assert once == twice


class TestOracleIsolation:
    """The policy oracle must stay test-only, like the seed oracle."""

    def test_policy_reference_not_imported_by_production_code(self):
        import repro.dram as dram_pkg
        import repro.dram.controller as controller
        import repro.dram.engine as engine
        import repro.dram.mixed as mixed
        import repro.dram.policy as policy_module
        assert not hasattr(dram_pkg, "reference_policy_run_phase")
        for module in (dram_pkg, controller, engine, mixed, policy_module):
            source = open(module.__file__).read()
            assert "import" + " _policy_reference" not in source
            assert "from repro.dram import _policy_reference" not in source
            assert "from repro.dram._policy_reference import" not in source

    def test_isolation_rule_registers_the_policy_oracle(self):
        from repro.analysis.rules_isolation import ORACLE_MODULES
        assert "_policy_reference" in ORACLE_MODULES
        assert "_reference" in ORACLE_MODULES


def test_policy_names_are_the_four_disciplines():
    assert POLICY_NAMES == (POLICY_OPEN_PAGE, POLICY_CLOSED_PAGE,
                            POLICY_FRFCFS_CAP, POLICY_BANK_PARTITION)
