"""The ten Table I configurations."""

import pytest

from repro.dram.presets import (
    REFRESH_ALL_BANK,
    REFRESH_PER_BANK,
    TABLE1_CONFIG_NAMES,
    all_configs,
    get_config,
)
from repro.units import gbit_per_s


class TestRegistry:
    def test_ten_configs(self):
        assert len(TABLE1_CONFIG_NAMES) == 10

    def test_paper_order(self):
        assert TABLE1_CONFIG_NAMES == (
            "DDR3-800", "DDR3-1600", "DDR4-1600", "DDR4-3200",
            "DDR5-3200", "DDR5-6400", "LPDDR4-2133", "LPDDR4-4266",
            "LPDDR5-4267", "LPDDR5-8533",
        )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown DRAM configuration"):
            get_config("DDR2-400")

    def test_all_configs_match_names(self):
        assert tuple(c.name for c in all_configs()) == TABLE1_CONFIG_NAMES


class TestPerConfigSanity:
    def test_name_embeds_rate(self, any_config):
        assert str(any_config.data_rate_mtps) in any_config.name

    def test_family_prefix(self, any_config):
        assert any_config.name.startswith(any_config.family)

    def test_timing_positive(self, any_config):
        timing = any_config.timing
        assert timing.trcd > 0 and timing.trp > 0 and timing.tras > 0

    def test_trc_realistic(self, any_config):
        # All JEDEC row cycles are in the 40-70 ns range.
        assert 40_000 <= any_config.timing.trc <= 70_000

    def test_refresh_interval_realistic(self, any_config):
        assert 100_000 < any_config.timing.trefi <= 8_000_000

    def test_burst_duration_matches_rate(self, any_config):
        geometry = any_config.geometry
        expected = round(geometry.burst_length * 1e6 / any_config.data_rate_mtps)
        assert abs(any_config.burst_duration_ps - expected) <= 1

    def test_capacity_fits_paper_scale(self, any_config):
        # 12.5 M burst elements must fit each channel (paper scale).
        assert any_config.geometry.total_bursts >= 12_502_500

    def test_per_bank_refresh_has_trfc_pb(self, any_config):
        if any_config.refresh_mode == REFRESH_PER_BANK:
            assert any_config.timing.trfc_pb > 0


class TestBankGroupArchitecture:
    def test_ddr3_has_no_groups(self):
        assert get_config("DDR3-800").geometry.bank_groups == 1

    def test_ddr4_has_four_groups(self):
        geometry = get_config("DDR4-3200").geometry
        assert geometry.bank_groups == 4
        assert geometry.banks == 16

    def test_ddr5_has_eight_groups(self):
        geometry = get_config("DDR5-3200").geometry
        assert geometry.bank_groups == 8
        assert geometry.banks == 32

    def test_lpddr4_has_no_groups(self):
        assert get_config("LPDDR4-2133").geometry.bank_groups == 1

    def test_lpddr5_bank_group_mode(self):
        geometry = get_config("LPDDR5-8533").geometry
        assert geometry.bank_groups == 4
        assert geometry.banks == 16

    def test_bank_group_standards_penalize_same_group(self):
        for name in ("DDR4-3200", "DDR5-6400", "LPDDR5-8533"):
            timing = get_config(name).timing
            assert timing.tccd_l > timing.tccd_s, name

    def test_no_group_standards_are_seamless(self):
        for name in ("DDR3-800", "DDR3-1600", "LPDDR4-2133", "LPDDR4-4266"):
            timing = get_config(name).timing
            assert timing.tccd_l == timing.tccd_s, name


class TestRefreshModes:
    def test_ddr3_ddr4_all_bank(self):
        for name in ("DDR3-800", "DDR3-1600", "DDR4-1600", "DDR4-3200"):
            assert get_config(name).refresh_mode == REFRESH_ALL_BANK

    def test_modern_standards_per_bank(self):
        for name in ("DDR5-3200", "DDR5-6400", "LPDDR4-2133", "LPDDR5-8533"):
            assert get_config(name).refresh_mode == REFRESH_PER_BANK


class TestSpeedGradePairs:
    @pytest.mark.parametrize("slow,fast", [
        ("DDR3-800", "DDR3-1600"),
        ("DDR4-1600", "DDR4-3200"),
        ("DDR5-3200", "DDR5-6400"),
        ("LPDDR4-2133", "LPDDR4-4266"),
        ("LPDDR5-4267", "LPDDR5-8533"),
    ])
    def test_fast_grade_doubles_bandwidth(self, slow, fast):
        a, b = get_config(slow), get_config(fast)
        ratio = b.peak_bandwidth_bytes_per_s / a.peak_bandwidth_bytes_per_s
        assert 1.9 < ratio < 2.1

    @pytest.mark.parametrize("slow,fast", [
        ("DDR3-800", "DDR3-1600"),
        ("DDR4-1600", "DDR4-3200"),
        ("DDR5-3200", "DDR5-6400"),
        ("LPDDR4-2133", "LPDDR4-4266"),
        ("LPDDR5-4267", "LPDDR5-8533"),
    ])
    def test_analog_timings_stay_constant(self, slow, fast):
        """tRCD/tRP are analog: (roughly) invariant across grades."""
        a, b = get_config(slow), get_config(fast)
        assert abs(a.timing.trcd - b.timing.trcd) <= 3000
        assert abs(a.timing.trp - b.timing.trp) <= 3000

    def test_peak_bandwidth_values(self):
        # DDR4-3200 x64 = 25.6 GB/s = 204.8 Gbit/s
        assert gbit_per_s(get_config("DDR4-3200").peak_bandwidth_bytes_per_s) == pytest.approx(204.8)
        # LPDDR4-4266 x16 = 8.5 GB/s
        assert gbit_per_s(get_config("LPDDR4-4266").peak_bandwidth_bytes_per_s) == pytest.approx(68.256)
