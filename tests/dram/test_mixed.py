"""Mixed read/write traffic and the steady-state interleaver mode."""

import pytest

from repro.dram.controller import ControllerConfig
from repro.dram.mixed import (
    RowShiftedMapping,
    interleaved_stream,
    run_mixed_phase,
    steady_state_interleaver,
)
from repro.dram.presets import get_config
from repro.dram.simulator import simulate_interleaver
from repro.interleaver.triangular import TriangularIndexSpace
from repro.mapping.optimized import OptimizedMapping
from repro.mapping.validate import assert_valid


@pytest.fixture
def ddr4_mapping(ddr4):
    return OptimizedMapping(TriangularIndexSpace(96), ddr4.geometry,
                            prefer_tall=False)


class TestRunMixedPhase:
    def test_counts_directions(self, ddr4):
        requests = [(k % 2 == 0, k % 4, 0, k % 8) for k in range(40)]
        result = run_mixed_phase(ddr4, requests)
        assert result.reads == 20
        assert result.writes == 20
        assert result.stats.requests == 40

    def test_turnarounds_counted(self, ddr4):
        # The stream alternates direction every request, but the arbiter
        # batches same-direction heads inside its queue window (as real
        # controllers' read/write grouping does), so far fewer — yet at
        # least one — turnarounds occur.
        requests = [(k % 2 == 0, k % 4, 0, k % 8) for k in range(40)]
        result = run_mixed_phase(ddr4, requests)
        assert 1 <= result.turnarounds < 39

    def test_turnarounds_forced_by_long_alternation(self, ddr4):
        """With blocks longer than the queue, switches cannot be batched
        away: one turnaround per direction block."""
        block = 200
        requests = []
        for block_index in range(6):
            is_read = block_index % 2 == 0
            for k in range(block):
                requests.append((is_read, k % 16, 0, (k // 16) % 64))
        result = run_mixed_phase(ddr4, requests)
        assert result.turnarounds >= 5

    def test_homogeneous_stream_has_no_turnarounds(self, ddr4):
        requests = [(True, k % 4, 0, k % 8) for k in range(40)]
        result = run_mixed_phase(ddr4, requests)
        assert result.turnarounds == 0

    def test_turnaround_costs_bandwidth(self, ddr4):
        alternating = [(k % 2 == 0, k % 16, 0, (k // 16) % 64) for k in range(4000)]
        blocked = sorted(alternating, key=lambda r: not r[0])
        fine = run_mixed_phase(ddr4, alternating)
        coarse = run_mixed_phase(ddr4, blocked)
        assert fine.utilization < coarse.utilization

    def test_empty_stream(self, ddr4):
        result = run_mixed_phase(ddr4, [])
        assert result.stats.requests == 0


class TestRowShiftedMapping:
    def test_shifts_rows_only(self, ddr4, ddr4_mapping):
        shifted = RowShiftedMapping(ddr4_mapping, 100)
        bank, row, col = ddr4_mapping.address_tuple(3, 5)
        assert shifted.address_tuple(3, 5) == (bank, row + 100, col)

    def test_still_injective(self, ddr4, ddr4_mapping):
        assert_valid(RowShiftedMapping(ddr4_mapping, ddr4_mapping.rows_used()))

    def test_rejects_overflow(self, ddr4, ddr4_mapping):
        with pytest.raises(ValueError, match="rows"):
            RowShiftedMapping(ddr4_mapping, ddr4.geometry.rows)

    def test_rejects_negative(self, ddr4_mapping):
        with pytest.raises(ValueError):
            RowShiftedMapping(ddr4_mapping, -1)


class TestInterleavedStream:
    def test_alternates_directions(self, ddr4_mapping):
        stream = list(interleaved_stream(ddr4_mapping, ddr4_mapping, group=1))
        assert stream[0][0] is False     # write first
        assert stream[1][0] is True
        assert len(stream) == 2 * ddr4_mapping.space.num_elements

    def test_grouping(self, ddr4_mapping):
        stream = list(interleaved_stream(ddr4_mapping, ddr4_mapping, group=4))
        directions = [r[0] for r in stream[:8]]
        assert directions == [False] * 4 + [True] * 4

    def test_rejects_bad_group(self, ddr4_mapping):
        with pytest.raises(ValueError):
            list(interleaved_stream(ddr4_mapping, ddr4_mapping, group=0))


class TestSteadyState:
    def test_runs_both_frames(self, ddr4, ddr4_mapping):
        result = steady_state_interleaver(ddr4, ddr4_mapping, group=16)
        elements = ddr4_mapping.space.num_elements
        assert result.reads == elements
        assert result.writes == elements

    def test_coarse_blocks_approach_phase_separated(self, ddr4, ddr4_mapping):
        """Large direction blocks amortize turnaround: utilization climbs
        toward the per-phase value, validating the paper's methodology."""
        fine = steady_state_interleaver(ddr4, ddr4_mapping, group=1)
        coarse = steady_state_interleaver(ddr4, ddr4_mapping, group=256)
        reference = simulate_interleaver(ddr4, ddr4_mapping)
        assert fine.utilization < coarse.utilization
        assert coarse.utilization > 0.7 * reference.min_utilization

    def test_policy_passthrough(self, ddr4, ddr4_mapping):
        result = steady_state_interleaver(
            ddr4, ddr4_mapping, group=32,
            policy=ControllerConfig(refresh_enabled=False))
        assert result.stats.refreshes == 0


class TestAcrossConfigs:
    @pytest.mark.parametrize("name", ["DDR3-1600", "LPDDR4-4266", "DDR5-6400"])
    def test_steady_state_positive_utilization(self, name):
        config = get_config(name)
        mapping = OptimizedMapping(TriangularIndexSpace(64), config.geometry,
                                   prefer_tall=False)
        result = steady_state_interleaver(config, mapping, group=32)
        assert 0.2 < result.utilization <= 1.0
